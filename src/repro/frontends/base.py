"""The frontend plug-in protocol.

The enumeration core (:mod:`repro.core`) is language-independent -- it only
sees scope trees and holes -- and the campaign stack (harness, oracle,
executors, reducer, CLI) is written against the :class:`Frontend` protocol
defined here, so adding a language to the whole pipeline is one registration
(:func:`repro.frontends.register_frontend`), not a rewrite.

A frontend packages everything the pipeline needs from a language:

* **parse + skeleton extraction** -- source text to a
  :class:`~repro.core.holes.Skeleton` (holes + scope tree + parse-once
  binder), with :attr:`Frontend.parse_error_types` naming the exceptions
  that mean "this seed/variant is rejected by the language frontend";
* **reference interpretation** -- ground-truth observable behaviour as
  :class:`~repro.core.execution.ExecutionResult`, both from source text
  (the legacy render+reparse path) and from a bound variant's AST (the
  parse-once fast path);
* **the executor pair** -- :meth:`Frontend.executor` builds the simulated
  compiler-under-test for one ``(version, opt level, machine bits)``
  configuration; the fault-free :attr:`Frontend.reference_version` of the
  same executor is the oracle's performance baseline.  Executors follow the
  :class:`repro.compiler.driver.Compiler` surface: ``compile_source``,
  ``compile_variant``, ``run`` and ``vm_max_steps``;
* **reduction** -- shrink a bug-triggering program while a predicate holds.
  Frontends additionally opt into the triage engine's chunked ddmin reducer
  (:mod:`repro.triage.reduce`) through the *deletion-candidate hooks*:
  :meth:`Frontend.deletion_candidates` counts the independently deletable
  elements of a program and :meth:`Frontend.delete_candidates` renders the
  program with a chosen subset of them removed (``None`` when the result is
  not a valid program).  The defaults opt out, in which case triage falls
  back to the frontend's own :meth:`Frontend.reduce`;
* **a corpus** -- the language's default seed programs for campaigns.

:attr:`default_versions` x :attr:`default_opt_levels` is the language's
default differential-testing configuration matrix (the versions must be
registered with :func:`repro.compiler.versions.register_lineage` so bug
classification and affected-version queries work).
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

from repro.compiler.pipeline import OptimizationLevel
from repro.core.execution import ExecutionResult
from repro.core.holes import BoundVariant, Skeleton


class Frontend(abc.ABC):
    """One pluggable language: parse, enumerate, interpret, compile, reduce."""

    #: Registry key and the CLI's ``--lang`` value.
    name: str = ""
    #: Exceptions meaning "the language frontend rejects this source".  The
    #: campaign planner treats exactly these as "skip the seed file"; the
    #: empty default means an unconfigured frontend's bugs surface as
    #: tracebacks instead of being silently counted as rejected files.
    parse_error_types: tuple[type[BaseException], ...] = ()
    #: Default compiler-under-test versions for a campaign matrix.
    default_versions: tuple[str, ...] = ()
    #: Default optimization levels for a campaign matrix.
    default_opt_levels: tuple[OptimizationLevel, ...] = (
        OptimizationLevel.O0,
        OptimizationLevel.O3,
    )
    #: The fault-free executor version (the oracle's performance baseline).
    reference_version: str = "reference"

    # -- parsing + skeletons ------------------------------------------------

    @abc.abstractmethod
    def extract_skeleton(self, source: str, name: str = "<program>") -> Skeleton:
        """Parse ``source`` once and build its skeleton (holes + scope tree).

        Raises one of :attr:`parse_error_types` when the frontend rejects the
        program.  The returned skeleton carries ``realize``/``bind``/
        ``order_clean`` closures, so the campaign harness can use the
        parse-once AST fast path whenever ``skeleton.supports_binding``.
        """

    # -- reference interpretation ------------------------------------------

    @abc.abstractmethod
    def run_reference_source(self, source: str, max_steps: int = 200_000) -> ExecutionResult:
        """Parse and interpret ``source``; raises on frontend rejection."""

    @abc.abstractmethod
    def run_reference_variant(
        self, variant: BoundVariant, max_steps: int = 200_000
    ) -> ExecutionResult:
        """Interpret a bound variant's AST directly (no render, no re-parse)."""

    def run_reference_batch(
        self, variants: Sequence[BoundVariant], max_steps: int = 200_000
    ) -> list[ExecutionResult]:
        """Interpret a batch of bound variants of the *same* skeleton.

        The default delegates to :meth:`run_reference_variant` per variant;
        frontends with a batched execution tier (a per-skeleton compiled
        body shared by every characteristic vector, e.g.
        :mod:`repro.minic.codegen`) override this so the whole batch runs
        without re-entering per-node interpretation -- the campaign
        harness's ``batch_size`` knob feeds variants through here.
        Results must be byte-identical to the per-variant path.
        """
        return [
            self.run_reference_variant(variant, max_steps=max_steps) for variant in variants
        ]

    def try_run_reference_source(
        self, source: str, max_steps: int = 200_000
    ) -> ExecutionResult | None:
        """Like :meth:`run_reference_source`, but ``None`` on rejection."""
        try:
            return self.run_reference_source(source, max_steps=max_steps)
        except self.parse_error_types:
            return None

    # -- the executor pair --------------------------------------------------

    @abc.abstractmethod
    def executor(
        self,
        version: str,
        opt_level: OptimizationLevel | int,
        machine_bits: int = 64,
    ):
        """Build the simulated compiler for one configuration.

        The returned object follows the :class:`repro.compiler.driver.
        Compiler` surface (``compile_source`` / ``compile_variant`` / ``run``
        / ``vm_max_steps``); passing :attr:`reference_version` yields the
        fault-free reference member of the executor pair.
        """

    # -- reduction ----------------------------------------------------------

    @abc.abstractmethod
    def reduce(self, source: str, predicate: Callable[[str], bool]) -> str:
        """Shrink ``source`` while ``predicate`` keeps holding."""

    def deletion_candidates(self, source: str) -> int:
        """How many independently deletable elements ``source`` has.

        The contract the ddmin reducer relies on: enumerating the candidates
        of the *same* source twice yields the same count in the same order,
        and index ``i`` names the same element in every
        :meth:`delete_candidates` call for that source.  Returning ``0``
        (the default) opts the frontend out of chunked ddmin; triage then
        falls back to :meth:`reduce`.
        """
        return 0

    def delete_candidates(self, source: str, indices: Sequence[int]) -> str | None:
        """Render ``source`` with the indexed deletable elements removed.

        Returns ``None`` when the deletion does not produce a valid program
        (fails to parse/resolve) or removes nothing -- the reducer treats
        such candidates as free failures, never spending a predicate
        evaluation on them.
        """
        return None

    # -- static sanitization ------------------------------------------------

    def sanitize_variant(self, variant: BoundVariant) -> list:
        """Static UB findings for a bound variant's AST (empty = clean).

        The campaign harness's ``sanitize`` gate calls this before the
        oracle matrix runs and skips tainted variants (see
        :mod:`repro.compiler.sanitize` for the taint rules).  The default
        opts out: every variant is clean.
        """
        return []

    def sanitize_source(self, source: str) -> list:
        """Static UB findings for source text (the ``repro lint`` path).

        Raises one of :attr:`parse_error_types` when the frontend rejects
        the program.  The default opts out: every program is clean.
        """
        return []

    # -- corpus -------------------------------------------------------------

    @abc.abstractmethod
    def build_corpus(self, files: int = 25, seed: int = 2017) -> dict[str, str]:
        """The language's default campaign corpus (name -> source)."""

    # -- conveniences -------------------------------------------------------

    def render_vector(self, skeleton: Skeleton, vector: Sequence[str]) -> str:
        """Realize one characteristic vector to source text."""
        return skeleton.realize(vector)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


__all__ = ["Frontend"]
