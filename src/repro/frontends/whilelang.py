"""The WHILE frontend plug-in.

Gives the paper's Figure 4/5 teaching language a *real* differential
oracle: the reference member of the executor pair is the direct interpreter
(:mod:`repro.lang.interp`) and the compiler under test is the optimizing
evaluator with seeded ``wc-*`` versions (:mod:`repro.lang.compile`).  With
the parse-once binder of :mod:`repro.lang.skeleton` and the seed corpus of
:mod:`repro.corpus.while_seeds`, ``repro campaign --lang while`` runs the
identical plan/execute/merge pipeline as mini-C.
"""

from __future__ import annotations

from typing import Callable

from repro.compiler.pipeline import OptimizationLevel
from repro.core.execution import ExecutionResult
from repro.core.holes import BoundVariant, Skeleton
from repro.frontends.base import Frontend
from repro.lang.compile import WhileCompiler, execute_while
from repro.lang.lexer import LexerError
from repro.lang.parser import ParseError, parse_program
from repro.lang.reduce import (
    delete_candidates as while_delete_candidates,
    deletion_candidates as while_deletion_candidates,
    reduce_while_program,
)
from repro.lang.skeleton import SkeletonExtractionError, extract_skeleton


class WhileFrontend(Frontend):
    """The unscoped WHILE language with the ``wc`` compiler lineage."""

    name = "while"
    parse_error_types = (ParseError, LexerError, SkeletonExtractionError)
    default_versions = ("wc-trunk", "wc-2.0")
    default_opt_levels = (OptimizationLevel.O0, OptimizationLevel.O2)

    def extract_skeleton(self, source: str, name: str = "<while-program>") -> Skeleton:
        return extract_skeleton(source, name=name)

    def run_reference_source(self, source: str, max_steps: int = 200_000) -> ExecutionResult:
        return execute_while(parse_program(source), max_steps=max_steps)

    def run_reference_variant(
        self, variant: BoundVariant, max_steps: int = 200_000
    ) -> ExecutionResult:
        return execute_while(variant.program, max_steps=max_steps)

    def run_reference_batch(self, variants, max_steps: int = 200_000):
        # The batched tier compiles the whole skeleton into one generated
        # Python function (repro.lang.codegen); each vector then costs one
        # call instead of a tree-walk.  Results are byte-identical to
        # execute_while on the rebound AST.
        from repro.lang.codegen import runner_for_skeleton

        results = []
        index = 0
        total = len(variants)
        while index < total:
            skeleton = variants[index].skeleton
            group_end = index
            while group_end < total and variants[group_end].skeleton is skeleton:
                group_end += 1
            runner = runner_for_skeleton(skeleton)
            if runner is not None:
                results.extend(
                    runner.run_batch(
                        [variant.vector for variant in variants[index:group_end]],
                        max_steps=max_steps,
                    )
                )
            else:
                results.extend(
                    self.run_reference_variant(variant, max_steps=max_steps)
                    for variant in variants[index:group_end]
                )
            index = group_end
        return results

    def executor(
        self,
        version: str,
        opt_level: OptimizationLevel | int,
        machine_bits: int = 64,
    ) -> WhileCompiler:
        return WhileCompiler(version, opt_level, machine_bits=machine_bits)

    def reduce(self, source: str, predicate: Callable[[str], bool]) -> str:
        return reduce_while_program(source, predicate)

    def deletion_candidates(self, source: str) -> int:
        return while_deletion_candidates(source)

    def delete_candidates(self, source: str, indices) -> str | None:
        return while_delete_candidates(source, indices)

    def sanitize_variant(self, variant: BoundVariant) -> list:
        from repro.compiler.sanitize import sanitize_while_program

        return sanitize_while_program(variant.program)

    def sanitize_source(self, source: str) -> list:
        from repro.compiler.sanitize import sanitize_while_program

        return sanitize_while_program(parse_program(source))

    def build_corpus(self, files: int = 25, seed: int = 2017) -> dict[str, str]:
        from repro.corpus.while_seeds import build_while_corpus

        return build_while_corpus(files=files, seed=seed)


__all__ = ["WhileFrontend"]
