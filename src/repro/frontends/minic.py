"""The mini-C frontend plug-in.

Thin adapter binding the existing mini-C stack -- skeleton extraction
(:mod:`repro.minic.skeleton`), the UB-detecting reference interpreter
(:mod:`repro.minic.interp`), the simulated scc/lcc compilers
(:mod:`repro.compiler.driver`), the delta-debugging reducer and the
c-torture-like corpus -- to the :class:`~repro.frontends.base.Frontend`
protocol.  All behaviour is delegated; this module adds none of its own.
"""

from __future__ import annotations

from typing import Callable

from repro.compiler.driver import Compiler
from repro.compiler.pipeline import OptimizationLevel
from repro.core.execution import ExecutionResult
from repro.core.holes import BoundVariant, Skeleton
from repro.frontends.base import Frontend
from repro.minic.errors import MiniCError
from repro.minic.interp import run_source, run_unit
from repro.minic.skeleton import extract_skeleton


class MiniCFrontend(Frontend):
    """The paper's evaluation language: the C subset with scoped, typed holes."""

    name = "minic"
    parse_error_types = (MiniCError,)
    default_versions = ("scc-trunk", "lcc-trunk")
    default_opt_levels = (OptimizationLevel.O0, OptimizationLevel.O3)

    def extract_skeleton(self, source: str, name: str = "<minic>") -> Skeleton:
        return extract_skeleton(source, name=name)

    def run_reference_source(self, source: str, max_steps: int = 200_000) -> ExecutionResult:
        return run_source(source, max_steps=max_steps)

    def run_reference_variant(
        self, variant: BoundVariant, max_steps: int = 200_000
    ) -> ExecutionResult:
        # The interpreter's closure-compiled function bodies are memoised per
        # skeleton (they read identifier bindings at execution time), so the
        # whole file's variant stream shares one translation.
        compiled = variant.skeleton.metadata.setdefault("interp_compiled", {})
        return run_unit(variant.program, max_steps=max_steps, compiled=compiled)

    def run_reference_batch(self, variants, max_steps: int = 200_000):
        # The batched tier translates the whole skeleton into one generated
        # Python function (repro.minic.codegen); each vector then costs a
        # slot-table lookup plus one call.  Skeletons outside the raw-int
        # subset get no runner and fall back to the per-variant interpreter.
        from repro.minic.codegen import runner_for_skeleton

        results = []
        index = 0
        total = len(variants)
        while index < total:
            skeleton = variants[index].skeleton
            group_end = index
            while group_end < total and variants[group_end].skeleton is skeleton:
                group_end += 1
            runner = runner_for_skeleton(skeleton)
            if runner is not None:
                results.extend(
                    runner.run_batch(
                        [variant.vector for variant in variants[index:group_end]],
                        max_steps=max_steps,
                    )
                )
            else:
                results.extend(
                    self.run_reference_variant(variant, max_steps=max_steps)
                    for variant in variants[index:group_end]
                )
            index = group_end
        return results

    def executor(
        self,
        version: str,
        opt_level: OptimizationLevel | int,
        machine_bits: int = 64,
    ) -> Compiler:
        return Compiler(version, opt_level, machine_bits=machine_bits)

    def reduce(self, source: str, predicate: Callable[[str], bool]) -> str:
        # Imported lazily: repro.testing imports the frontends package back
        # through the oracle, so a module-level import here would cycle.
        from repro.testing.reducer import reduce_program

        return reduce_program(source, predicate)

    def deletion_candidates(self, source: str) -> int:
        from repro.testing.reducer import deletion_candidates

        return deletion_candidates(source)

    def delete_candidates(self, source: str, indices) -> str | None:
        from repro.testing.reducer import delete_candidates

        return delete_candidates(source, indices)

    def sanitize_variant(self, variant: BoundVariant) -> list:
        from repro.compiler.sanitize import sanitize_minic_unit

        return sanitize_minic_unit(variant.program)

    def sanitize_source(self, source: str) -> list:
        from repro.compiler.sanitize import sanitize_minic_unit
        from repro.minic.parser import parse
        from repro.minic.symbols import resolve

        unit = parse(source)
        resolve(unit)
        return sanitize_minic_unit(unit)

    def build_corpus(self, files: int = 25, seed: int = 2017) -> dict[str, str]:
        from repro.experiments.table1 import build_corpus

        return build_corpus(files=files, seed=seed)


__all__ = ["MiniCFrontend"]
