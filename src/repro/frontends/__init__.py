"""Frontend registry: one entry point per supported language.

The campaign stack resolves languages by name through this registry --
``CampaignConfig(frontend="while")``, ``DifferentialOracle(frontend=...)``
and the CLI's ``--lang`` flag all call :func:`get_frontend`.  Frontends
carry no per-campaign state, so one shared instance per language is
registered at import time; third-party frontends can call
:func:`register_frontend` themselves (see :mod:`repro.frontends.base` for
the protocol and ``docs/ARCHITECTURE.md`` section 5 for the how-to).
"""

from __future__ import annotations

from repro.frontends.base import Frontend


_REGISTRY: dict[str, Frontend] = {}


def register_frontend(frontend: Frontend, replace: bool = False) -> Frontend:
    """Register a frontend under its ``name``; returns it for chaining."""
    if not frontend.name:
        raise ValueError(f"frontend {frontend!r} has no name")
    existing = _REGISTRY.get(frontend.name)
    if existing is not None and existing is not frontend and not replace:
        raise ValueError(f"frontend {frontend.name!r} is already registered")
    _REGISTRY[frontend.name] = frontend
    return frontend


def get_frontend(name: "str | Frontend") -> Frontend:
    """Look up a frontend by name (a Frontend instance passes through)."""
    if isinstance(name, Frontend):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown frontend {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def available_frontends() -> list[str]:
    """Names of all registered language frontends, sorted."""
    return sorted(_REGISTRY)


# Built-in frontends.  Imported after the registry functions exist: the
# plug-in modules pull in packages (repro.testing via the reducer) that
# import this module back for name resolution.
from repro.frontends.minic import MiniCFrontend  # noqa: E402
from repro.frontends.whilelang import WhileFrontend  # noqa: E402

register_frontend(MiniCFrontend())
register_frontend(WhileFrontend())

__all__ = [
    "Frontend",
    "MiniCFrontend",
    "WhileFrontend",
    "available_frontends",
    "get_frontend",
    "register_frontend",
]
