"""Command-line interface: ``spe`` (or ``python -m repro``).

Subcommands (all program-level commands take ``--lang`` to select a
registered language frontend; the default is mini-C):

* ``count FILE``       -- naive vs SPE solution sizes for one seed file;
* ``enumerate FILE``   -- print canonical variants of a file: a prefix, an
  arbitrary ``--start`` slice (reached by unranking), or a uniform ``--sample``;
* ``test FILE``        -- differential-test one file against the language's
  trunk compilers;
* ``campaign``         -- run a bug-hunting campaign over the language's
  built-in corpus; supports ``--lang {minic,while,...}``, ``--jobs N``
  (process-parallel shards), ``--sample K`` (uniform per-file sampling),
  ``--shard I/N`` (distributed partial runs), the persistent campaign
  store: ``--state-dir DIR`` journals per-unit outcomes durably,
  ``--resume`` replays them after a crash, ``--incremental`` re-tests only
  compiler versions not yet covered, ``--fresh`` discards an existing
  journal (a non-resume run refuses to overwrite one); static analysis:
  ``--verify-ir {off,bugs,always}`` runs the between-pass IR verifier and
  files violations as ``ill-formed-ir`` bugs, ``--sanitize`` gates the
  oracle behind the static UB sanitizer; and in-flight
  triage: ``--reduce {off,crash,all}`` minimises bug triggers as they are
  filed and ``--bisect`` attributes each bug to the compiler version that
  introduced it;
* ``lint``             -- run the static UB sanitizer standalone over seed
  files (and/or the built-in corpus via ``--corpus N``), printing one
  machine-readable ``file:function:kind:detail`` line per finding plus a
  greppable ``# lint:`` summary; parse rejections are reported as
  ``parse-error`` findings, and the exit status is 0 either way;
* ``triage``           -- reduce and bisect the bugs journaled in an
  existing campaign ``--state-dir`` after the fact, appending the reduced
  programs and version attributions to the journal as ``triage`` records;
* ``db``               -- the indexed bug database: ``db compact`` builds
  the SQLite derived view from a campaign journal, ``db status`` reads
  progress from it, ``db bugs`` runs ad-hoc filtered queries (``--kind
  wrong-code --introduced-in scc-2.0``, ``--format json|table``),
  ``db export`` writes the imported records back out as a byte-identical
  journal, and ``db merge`` attaches several campaigns' journals into one
  cross-campaign database;
* ``experiment NAME``  -- regenerate a table/figure (table1, table2, table3,
  table4, fig8, fig9, fig10, or ``all``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.spe import SkeletonEnumerator
from repro.frontends import available_frontends, get_frontend


def _cmd_count(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    skeleton = get_frontend(args.lang).extract_skeleton(source, name=args.file)
    enumerator = SkeletonEnumerator(skeleton)
    print(f"file           : {args.file}")
    print(f"language       : {args.lang}")
    print(f"holes          : {skeleton.num_holes}")
    print(f"naive variants : {enumerator.naive_count()}")
    print(f"SPE variants   : {enumerator.count()}")
    return 0


def _cmd_enumerate(args: argparse.Namespace) -> int:
    source = Path(args.file).read_text()
    skeleton = get_frontend(args.lang).extract_skeleton(source, name=args.file)
    enumerator = SkeletonEnumerator(skeleton)
    if args.sample is not None:
        if args.start is not None:
            print("error: --sample and --start are mutually exclusive", file=sys.stderr)
            return 2
        indices = enumerator.sample_indices(args.sample, seed=args.seed)
        for variant in enumerator.programs_at(indices):
            print(f"// variant {variant.index}: {variant.vector}")
            print(variant.source)
        return 0
    start = args.start or 0
    for variant in enumerator.indexed_programs(start=start, stop=start + args.limit):
        print(f"// variant {variant.index}: {variant.vector}")
        print(variant.source)
    return 0


def _cmd_test(args: argparse.Namespace) -> int:
    from repro.testing.harness import test_program

    source = Path(args.file).read_text()
    observations = test_program(source, name=args.file, frontend=args.lang)
    failures = 0
    for observation in observations:
        status = observation.kind.value
        line = f"{observation.compiler} {observation.opt_level}: {status}"
        if observation.is_bug:
            failures += 1
            line += f" -- {observation.signature}"
        print(line)
    return 1 if failures else 0


def _positive_int(text: str) -> int:
    """Argparse type for arguments that must be integers >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    """Argparse type for arguments that must be integers >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {value}")
    return value


def _ordinal_list(text: str) -> tuple[int, ...]:
    """Argparse type for comma-separated unit ordinals (``1,4,7``)."""
    if not text.strip():
        return ()
    try:
        values = tuple(int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers (e.g. 1,4,7), got {text!r}"
        )
    if any(value < 0 for value in values):
        raise argparse.ArgumentTypeError(f"unit ordinals must be >= 0, got {text!r}")
    return values


def _version_list(text: str) -> list[str]:
    """Argparse type for comma-separated compiler versions (``scc-5.4,scc-trunk``)."""
    versions = [part.strip() for part in text.split(",") if part.strip()]
    if not versions:
        raise argparse.ArgumentTypeError(f"expected comma-separated versions, got {text!r}")
    return versions


def _parse_shard(spec: str) -> tuple[int, int]:
    """Parse ``I/N`` (0-based shard I of N), e.g. ``--shard 2/4``."""
    try:
        index_text, count_text = spec.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected I/N (e.g. 0/4), got {spec!r}")
    if count <= 0:
        raise argparse.ArgumentTypeError(f"shard count must be positive, got {count}")
    if not 0 <= index < count:
        raise argparse.ArgumentTypeError(f"shard index {index} out of range for {count} shards")
    return index, count


def _stats_ratio(label: str, hits: int, total: int) -> str | None:
    """One ``label hits/total (pct%)`` telemetry cell, or ``None``.

    The zero-total guard lives here so every stderr stats line shares it: a
    campaign that never exercised a cache (or a gate) must print nothing for
    it rather than divide by zero.
    """
    if total <= 0:
        return None
    return f"{label} {hits}/{total} ({100.0 * hits / total:.1f}%)"


def cache_stats_line(cache_stats: dict[str, int]) -> str | None:
    """The ``# cache:`` stderr line for a campaign result, or ``None``.

    Byte-identical to the historical inline format: one cell per cache that
    saw any traffic, ``None`` when none did.
    """
    parts = []
    for label in ("module", "pipeline", "reference"):
        hits = cache_stats.get(f"{label}_hits", 0)
        misses = cache_stats.get(f"{label}_misses", 0)
        part = _stats_ratio(label, hits, hits + misses)
        if part is not None:
            parts.append(part)
    if not parts:
        return None
    return f"# cache: {'  '.join(parts)}"


def sanitizer_stats_line(cache_stats: dict[str, int]) -> str | None:
    """The ``# sanitizer:`` stderr line for a campaign result, or ``None``.

    ``cache`` is the verdict-cache hit rate, ``tainted`` the gate's filter
    rate over all gated variants.  ``None`` whenever the sanitizer never ran
    (the gate off), keeping gate-off output byte-identical.
    """
    hits = cache_stats.get("sanitizer_hits", 0)
    misses = cache_stats.get("sanitizer_misses", 0)
    tainted = cache_stats.get("sanitizer_tainted", 0)
    clean = cache_stats.get("sanitizer_clean", 0)
    parts = []
    for part in (
        _stats_ratio("cache", hits, hits + misses),
        _stats_ratio("tainted", tainted, tainted + clean),
    ):
        if part is not None:
            parts.append(part)
    if not parts:
        return None
    return f"# sanitizer: {'  '.join(parts)}"


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.store import CampaignStore, StoreMismatchError
    from repro.testing.harness import Campaign, CampaignConfig, UnitExecutionError

    if (args.resume or args.incremental) and args.state_dir is None:
        print("error: --resume/--incremental require --state-dir", file=sys.stderr)
        return 2
    resume, incremental = args.resume, args.incremental
    if args.state_dir is not None and (resume or incremental):
        # First run against an empty state dir: fall back to a fresh run that
        # creates the store, so `--resume` is safe to pass unconditionally in
        # scripts and cron jobs.
        if not CampaignStore(args.state_dir).manifest_path.exists():
            print(f"# no journal in {args.state_dir} yet; starting a fresh campaign")
            resume = incremental = False
    if (
        args.state_dir is not None
        and not (resume or incremental or args.fresh)
        and args.shard is None  # distributed shard runs append, never truncate
    ):
        journal = CampaignStore(args.state_dir).journal_path
        if journal.exists() and journal.stat().st_size > 0:
            # Guard the destructive direction: a fresh run truncates the
            # journal, so an operator re-running the command from history
            # after a crash must opt in explicitly.
            print(
                f"error: {args.state_dir} already holds a campaign journal; "
                "pass --resume/--incremental to continue it, or --fresh to discard it",
                file=sys.stderr,
            )
            return 2

    corpus = get_frontend(args.lang).build_corpus(files=args.files, seed=args.seed)
    chaos = None
    if args.chaos_crash_at or args.chaos_hang_at or args.chaos_raise_at:
        from repro.testing.harness import ChaosSpec

        chaos = ChaosSpec(
            crash_at=args.chaos_crash_at,
            hang_at=args.chaos_hang_at,
            raise_at=args.chaos_raise_at,
            hang_seconds=args.chaos_hang_seconds,
        )
    config = CampaignConfig(
        frontend=args.lang,
        versions=args.versions,
        max_variants_per_file=args.variants,
        sample_per_file=args.sample,
        sample_seed=args.seed,
        jobs=args.jobs,
        state_dir=args.state_dir,
        reduce_bugs=args.reduce,
        bisect_bugs=args.bisect,
        batch_size=max(0, args.batch_size),
        persistent_workers=not args.no_persistent_workers,
        cache_module_results=not args.no_module_cache,
        cache_pipeline_results=not args.no_pipeline_cache,
        shared_memory=not args.no_shared_memory,
        unit_timeout=args.unit_timeout,
        max_retries=args.max_retries,
        on_fault=args.on_fault,
        chaos=chaos,
        fsync_journal=args.fsync_journal,
        verify_ir=args.verify_ir,
        sanitize=args.sanitize,
    )
    campaign = Campaign(config)
    try:
        if args.shard is not None:
            shard_index, shard_count = args.shard
            result = campaign.run_sources(
                corpus,
                shard_count=shard_count,
                shard_index=shard_index,
                resume=resume,
                incremental=incremental,
            )
            print(f"# shard {shard_index}/{shard_count} (merge partial results with CampaignResult.merge)")
        else:
            result = campaign.run_sources(corpus, resume=resume, incremental=incremental)
    except StoreMismatchError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except UnitExecutionError as error:
        print(f"error: campaign aborted on a poison unit: {error}", file=sys.stderr)
        print("hint: re-run with --on-fault quarantine to degrade and continue", file=sys.stderr)
        return 3
    print(result.summary())
    # Cache + sanitizer telemetry goes to stderr: CI smoke legs diff stdout
    # byte-for-byte between serial and pooled runs, and hit counts are
    # legitimately run-shape-dependent.
    for line in (
        cache_stats_line(result.cache_stats),
        sanitizer_stats_line(result.cache_stats),
    ):
        if line is not None:
            print(line, file=sys.stderr)
    for record in sorted(result.quarantined, key=lambda r: (r.name, r.key)):
        # One greppable line per quarantined unit (the chaos-smoke CI job
        # matches on '# quarantined:'); printed only when any exist, so
        # fault-free reports stay byte-identical to the historical format.
        print(
            f"# quarantined: {record.name} {record.span} kind={record.kind} "
            f"attempts={record.attempts} key={record.key}"
        )
    print()
    for report in result.bugs.reports:
        print(report.summary_line())
    return 0


def lint_source(frontend, source: str):
    """Sanitizer findings for one source file, parse rejections included.

    A program the frontend rejects is itself a (machine-readable) finding
    rather than an error: ``repro lint`` over a seed corpus must keep going
    and exit 0, so CI can grep a stable finding count.
    """
    from repro.compiler.sanitize import Finding

    try:
        return frontend.sanitize_source(source)
    except frontend.parse_error_types as error:
        return [Finding("parse-error", "<file>", "", str(error))]


def _cmd_lint(args: argparse.Namespace) -> int:
    frontend = get_frontend(args.lang)
    sources: dict[str, str] = {}
    if args.corpus is not None:
        sources.update(frontend.build_corpus(files=args.corpus, seed=args.seed))
    for path in args.files:
        sources[path] = Path(path).read_text()
    if not sources:
        print("error: nothing to lint; pass FILES and/or --corpus N", file=sys.stderr)
        return 2
    total = 0
    for name, source in sources.items():
        for finding in lint_source(frontend, source):
            print(f"{name}:{finding.render()}")
            total += 1
    print(f"# lint: {total} findings in {len(sources)} files")
    return 0


def _cmd_triage(args: argparse.Namespace) -> int:
    from repro.store import CampaignStore
    from repro.testing.executor import default_executor
    from repro.triage import TriageEngine

    store = CampaignStore(args.state_dir)
    manifest = store.read_manifest()
    if manifest is None:
        print(
            f"error: no campaign manifest in {args.state_dir}; "
            "run a campaign with --state-dir first",
            file=sys.stderr,
        )
        return 2
    frontend = (manifest.get("fingerprint") or {}).get("frontend")
    if not frontend:
        print(f"error: manifest in {args.state_dir} names no frontend", file=sys.stderr)
        return 2
    result = store.merged_result()
    if not result.bugs.reports:
        print(f"# no bugs journaled in {args.state_dir}; nothing to triage")
        return 0
    # Each run is a pure function of the unit records (so identical
    # invocations print identical output); knowledge from earlier passes is
    # protected at the journal layer instead -- load_triage_records merges
    # field-wise, so a weaker re-run (--no-bisect, --reduce off) can never
    # erase a journaled attribution or reduced program.
    engine = TriageEngine(
        frontend,
        reduce_policy=args.reduce,
        bisect=args.bisect,
        executor=default_executor(args.jobs),
    )
    outcomes = engine.triage_database(result.bugs)
    store.append_triage_outcomes(outcomes)
    store.close()
    reduced = sum(1 for outcome in outcomes if outcome.reduced)
    attributed = sum(1 for outcome in outcomes if outcome.introduced_in)
    evaluations = sum(outcome.predicate_evaluations for outcome in outcomes)
    print(
        f"# triaged {len(outcomes)} bugs ({frontend}): {reduced} reduced, "
        f"{attributed} attributed, {evaluations} predicate evaluations"
    )
    for outcome in outcomes:
        print(outcome.summary_line())
    return 0


#: CLI spelling -> stored BugKind value (enum values contain a space).
_DB_KIND_MAP = {"crash": "crash", "wrong-code": "wrong code", "performance": "performance"}


def _open_query_db(args: argparse.Namespace):
    """The database a ``repro db`` query runs against, or an error string.

    ``--state-dir`` compacts first, so queries always reflect the journal
    of record (a deleted or stale view is rebuilt transparently);
    ``--db`` opens an existing database file directly (cross-campaign
    merges have no single owning state dir).
    """
    from repro.store import CampaignDatabase, CampaignStore

    if args.state_dir is not None:
        store = CampaignStore(args.state_dir)
        store.compact()
        return CampaignDatabase.open(store.db_path)
    return CampaignDatabase.open(args.db)


def _cmd_db_compact(args: argparse.Namespace) -> int:
    from repro.store import CampaignStore

    store = CampaignStore(args.state_dir)
    stats = store.compact()
    print(f"# compacted {store.journal_path} -> {store.db_path}")
    print(
        f"records: {stats['records']} ({stats['records_imported']} imported)  "
        f"sources: {stats['sources']}  bugs: {stats['bugs']}  "
        f"triage: {stats['triage']}  quarantine: {stats['quarantine']}"
    )
    ratio = stats["compaction_ratio"]
    print(
        f"journal: {stats['journal_bytes']} bytes  db: {stats['db_bytes']} bytes"
        + (f"  ratio: {ratio:.2f}" if ratio is not None else "")
    )
    return 0


def _cmd_db_status(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.store import CampaignStore

    status = CampaignStore(args.state_dir).status()
    if args.format == "json":
        print(json_module.dumps(status, indent=2, sort_keys=True))
        return 0
    for key in ("units_journaled", "distinct_units", "quarantined_units"):
        print(f"{key}: {status[key]}")
    checkpoint = status["last_checkpoint"]
    if checkpoint is not None:
        print(f"last_checkpoint: units_seen={checkpoint.get('units_seen')}")
    return 0


def _cmd_db_bugs(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.store import bug_report_to_json

    with _open_query_db(args) as db:
        pairs = db.query_bugs(
            kind=_DB_KIND_MAP[args.kind] if args.kind else None,
            lineage=args.lineage,
            introduced_in=args.introduced_in,
            frontend=args.frontend,
            label=args.label,
        )
        multi = len(db.journals()) > 1
    if args.format == "json":
        payload = [
            {"journal": label, **bug_report_to_json(report)} for label, report in pairs
        ]
        print(json_module.dumps(payload, indent=2))
        return 0
    for label, report in pairs:
        line = report.summary_line()
        print(f"[{label}] {line}" if multi else line)
    return 0


def _cmd_db_export(args: argparse.Namespace) -> int:
    with _open_query_db(args) as db:
        written = db.export_journal(args.output, label=args.label)
    print(f"# exported {written} records to {args.output}")
    return 0


def _cmd_db_merge(args: argparse.Namespace) -> int:
    from pathlib import Path as PathType

    from repro.store import CampaignDatabase, CampaignStore, StoreMismatchError

    labels = [PathType(state_dir).resolve().name for state_dir in args.state_dirs]
    if len(set(labels)) != len(labels):
        print(
            "error: merged state directories must have distinct names "
            f"(got {', '.join(labels)})",
            file=sys.stderr,
        )
        return 2
    db = CampaignDatabase.create(args.out)
    try:
        for label, state_dir in zip(labels, args.state_dirs):
            store = CampaignStore(state_dir)
            manifest = store.read_manifest()
            if manifest is None:
                print(f"error: no campaign manifest in {state_dir}", file=sys.stderr)
                return 2
            imported = db.attach_journal(
                store.journal_path, manifest.get("fingerprint") or {}, label=label
            )
            print(f"# attached {label}: {imported.records_imported} records imported")
        db.refresh_views()
        db.vacuum()
        stats = db.stats()
    finally:
        db.close()
    print(
        f"# merged {len(labels)} campaigns into {args.out}: "
        f"{stats['records']} records, {stats['bugs']} bugs, {stats['sources']} sources"
    )
    return 0


def _cmd_db(args: argparse.Namespace) -> int:
    from repro.store import StoreError

    try:
        return args.db_func(args)
    except StoreError as error:  # includes StoreMismatchError
        print(f"error: {error}", file=sys.stderr)
        return 2


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    names = list(ALL_EXPERIMENTS) if args.name == "all" else [args.name]
    for name in names:
        module = ALL_EXPERIMENTS.get(name)
        if module is None:
            print(f"unknown experiment {name!r}; choose from {', '.join(ALL_EXPERIMENTS)} or 'all'")
            return 2
        print(f"=== {name} ===")
        result = module.run()
        print(module.render(result))
        print()
    return 0


def _add_lang_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lang", choices=available_frontends(), default="minic",
        help="language frontend to use (default: minic)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="spe", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    count = subparsers.add_parser("count", help="count naive vs SPE variants of a seed file")
    count.add_argument("file")
    _add_lang_argument(count)
    count.set_defaults(func=_cmd_count)

    enumerate_cmd = subparsers.add_parser("enumerate", help="print canonical variants of a seed file")
    enumerate_cmd.add_argument("file")
    _add_lang_argument(enumerate_cmd)
    enumerate_cmd.add_argument("--limit", type=_positive_int, default=10)
    enumerate_cmd.add_argument(
        "--start", type=_non_negative_int, default=None,
        help="first variant index to print (reached by unranking, not enumeration)",
    )
    enumerate_cmd.add_argument(
        "--sample", type=_positive_int, default=None, metavar="K",
        help="print K uniformly sampled variants instead of a prefix",
    )
    enumerate_cmd.add_argument("--seed", type=int, default=2017, help="sampling seed")
    enumerate_cmd.set_defaults(func=_cmd_enumerate)

    test = subparsers.add_parser("test", help="differential-test one seed file")
    test.add_argument("file")
    _add_lang_argument(test)
    test.set_defaults(func=_cmd_test)

    campaign = subparsers.add_parser("campaign", help="run a small bug-hunting campaign")
    _add_lang_argument(campaign)
    campaign.add_argument("--files", type=_positive_int, default=25)
    campaign.add_argument("--variants", type=_positive_int, default=40)
    campaign.add_argument("--seed", type=int, default=2017)
    campaign.add_argument(
        "--sample", type=_positive_int, default=None, metavar="K",
        help="test K uniformly sampled variants per file instead of the first K",
    )
    campaign.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="run the campaign across N worker processes (N >= 1)",
    )
    campaign.add_argument(
        "--shard", type=_parse_shard, default=None, metavar="I/N",
        help="run only shard I of N (0-based) and print its mergeable partial summary",
    )
    campaign.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="persist per-unit outcomes to DIR (append-only journal + manifest) "
             "so an interrupted campaign can be resumed",
    )
    campaign.add_argument(
        "--resume", action="store_true",
        help="replay units already journaled in --state-dir instead of re-testing "
             "them (falls back to a fresh run when the journal does not exist yet)",
    )
    campaign.add_argument(
        "--incremental", action="store_true",
        help="like --resume, but re-test journaled units against compiler versions "
             "they have not covered yet (new versions re-run only the new oracle column)",
    )
    campaign.add_argument(
        "--fresh", action="store_true",
        help="discard an existing journal in --state-dir and start over "
             "(without this, a non-resume run refuses to overwrite one)",
    )
    campaign.add_argument(
        "--batch-size", type=int, default=32, metavar="K",
        help="evaluate reference results K variants at a time through the "
             "frontend's batched execution tier (0 or 1 disables batching; "
             "observable results are identical either way)",
    )
    campaign.add_argument(
        "--no-persistent-workers", action="store_true",
        help="ship full source text in every shard payload instead of "
             "preloading the corpus into the worker pool once (the legacy "
             "payload protocol)",
    )
    campaign.add_argument(
        "--no-module-cache", action="store_true",
        help="disable the campaign-scoped VM-result cache keyed by "
             "optimized-module content hash (each variant keeps a private "
             "per-variant cache, the legacy behaviour)",
    )
    campaign.add_argument(
        "--no-pipeline-cache", action="store_true",
        help="disable the campaign-scoped pass-pipeline outcome cache keyed "
             "by pre-optimization module content hash (every variant re-runs "
             "the full pass pipeline, the legacy behaviour)",
    )
    campaign.add_argument(
        "--no-shared-memory", action="store_true",
        help="ship the preloaded corpus to pooled workers over pickled "
             "initargs instead of one shared-memory segment (the legacy "
             "fan-out protocol; observable results are identical either way)",
    )
    campaign.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-clock deadline (engages the campaign supervisor: "
             "worker-side alarm plus a parent watchdog that kills and "
             "respawns a pool stuck past the deadline)",
    )
    campaign.add_argument(
        "--max-retries", type=_non_negative_int, default=2, metavar="N",
        help="retry a failed or timed-out unit up to N times (degrading down "
             "the execution tiers) before quarantining or aborting it",
    )
    campaign.add_argument(
        "--on-fault", choices=["abort", "quarantine"], default="abort",
        help="what to do with a unit that exhausts its retries: abort the "
             "campaign (legacy fail-fast), or journal a quarantine record, "
             "report it, and keep going; quarantined units are skipped on "
             "--resume instead of re-crashing forever",
    )
    campaign.add_argument(
        "--fsync-journal", action="store_true",
        help="fsync the journal after every appended record (machine-crash "
             "durability) instead of once on close; costs per-unit throughput",
    )
    campaign.add_argument(
        "--chaos-crash-at", type=_ordinal_list, default=(), metavar="I,J,...",
        help="fault injection: SIGKILL the worker at these planned unit "
             "ordinals (supervision testing; fires on every attempt)",
    )
    campaign.add_argument(
        "--chaos-hang-at", type=_ordinal_list, default=(), metavar="I,J,...",
        help="fault injection: sleep --chaos-hang-seconds at these planned "
             "unit ordinals",
    )
    campaign.add_argument(
        "--chaos-raise-at", type=_ordinal_list, default=(), metavar="I,J,...",
        help="fault injection: raise a deterministic exception at these "
             "planned unit ordinals",
    )
    campaign.add_argument(
        "--chaos-hang-seconds", type=float, default=60.0, metavar="S",
        help="duration of injected hangs (default 60; pick it above "
             "--unit-timeout so the deadline machinery engages)",
    )
    campaign.add_argument(
        "--versions", type=_version_list, default=None, metavar="V1,V2,...",
        help="comma-separated compiler-under-test versions (default: the "
             "frontend's version matrix, e.g. scc-trunk,lcc-trunk for mini-C)",
    )
    campaign.add_argument(
        "--verify-ir", choices=["off", "bugs", "always"], default="off",
        dest="verify_ir",
        help="run the IR well-formedness verifier between pipeline passes: "
             "'bugs' verifies the compiler under test and files violations "
             "as ill-formed-ir bugs naming the offending pass, 'always' "
             "additionally verifies the fault-free reference compiles "
             "(default: off, byte-identical journals)",
    )
    campaign.add_argument(
        "--sanitize", action="store_true",
        help="classify variants with the static UB sanitizer before the "
             "oracle matrix and skip tainted ones (use-before-init, constant "
             "division by zero, out-of-range shift/index); skips are counted "
             "as observations[sanitized] with a '# sanitizer:' stderr line",
    )
    campaign.add_argument(
        "--reduce", choices=["off", "crash", "all"], default="off",
        help="minimise bug triggers as they are filed: crash bugs only, or "
             "all bug kinds (wrong code and performance included); the "
             "reduced program always reproduces the same bug id",
    )
    campaign.add_argument(
        "--bisect", action="store_true",
        help="attribute every filed bug to the compiler version that "
             "introduced it (reported as 'introduced in ...')",
    )
    campaign.set_defaults(func=_cmd_campaign)

    lint = subparsers.add_parser(
        "lint", help="static UB sanitizer findings for seed files (machine-readable)"
    )
    _add_lang_argument(lint)
    lint.add_argument("files", nargs="*", metavar="FILE", help="source files to lint")
    lint.add_argument(
        "--corpus", type=_positive_int, default=None, metavar="N",
        help="additionally lint the frontend's built-in N-file corpus",
    )
    lint.add_argument("--seed", type=int, default=2017, help="corpus generation seed")
    lint.set_defaults(func=_cmd_lint)

    triage = subparsers.add_parser(
        "triage",
        help="reduce + bisect the bugs journaled in an existing campaign state dir",
    )
    triage.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="campaign state directory (journal + manifest) to triage",
    )
    triage.add_argument(
        "--reduce", choices=["off", "crash", "all"], default="all",
        help="which bug kinds to minimise (default: all)",
    )
    triage.add_argument(
        "--bisect", action=argparse.BooleanOptionalAction, default=True,
        help="attribute each bug to the lineage version that introduced it "
             "(default: on; --no-bisect disables)",
    )
    triage.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="evaluate reduction candidate batches on N worker processes",
    )
    triage.set_defaults(func=_cmd_triage)

    db = subparsers.add_parser(
        "db", help="query the indexed bug database (SQLite view of campaign journals)"
    )
    db_subparsers = db.add_subparsers(dest="db_command", required=True)

    def _add_query_source(parser: argparse.ArgumentParser) -> None:
        source = parser.add_mutually_exclusive_group(required=True)
        source.add_argument(
            "--state-dir", default=None, metavar="DIR",
            help="campaign state directory; its journal is compacted into the "
                 "view first, so queries always reflect the journal of record",
        )
        source.add_argument(
            "--db", default=None, metavar="FILE",
            help="an existing database file (e.g. a cross-campaign merge)",
        )

    db_compact = db_subparsers.add_parser(
        "compact", help="build/refresh the SQLite view from the campaign journal"
    )
    db_compact.add_argument("--state-dir", required=True, metavar="DIR")
    db_compact.set_defaults(func=_cmd_db, db_func=_cmd_db_compact)

    db_status = db_subparsers.add_parser(
        "status", help="campaign progress without replaying the journal"
    )
    db_status.add_argument("--state-dir", required=True, metavar="DIR")
    db_status.add_argument("--format", choices=["table", "json"], default="table")
    db_status.set_defaults(func=_cmd_db, db_func=_cmd_db_status)

    db_bugs = db_subparsers.add_parser(
        "bugs", help="ad-hoc filtered bug queries over the indexed view"
    )
    _add_query_source(db_bugs)
    db_bugs.add_argument(
        "--kind", choices=sorted(_DB_KIND_MAP), default=None,
        help="filter by bug kind",
    )
    db_bugs.add_argument("--lineage", default=None, help="filter by compiler lineage")
    db_bugs.add_argument(
        "--introduced-in", default=None, metavar="VERSION",
        help="filter by the version that introduced the bug (campaign bisection "
             "or journaled triage attribution, whichever is known)",
    )
    db_bugs.add_argument("--frontend", default=None, help="filter by language frontend")
    db_bugs.add_argument(
        "--label", default=None,
        help="restrict to one attached journal of a merged database",
    )
    db_bugs.add_argument("--format", choices=["table", "json"], default="table")
    db_bugs.set_defaults(func=_cmd_db, db_func=_cmd_db_bugs)

    db_export = db_subparsers.add_parser(
        "export", help="write the imported records back out as a JSONL journal"
    )
    _add_query_source(db_export)
    db_export.add_argument("--output", required=True, metavar="FILE")
    db_export.add_argument(
        "--label", default=None,
        help="export one attached journal of a merged database",
    )
    db_export.set_defaults(func=_cmd_db, db_func=_cmd_db_export)

    db_merge = db_subparsers.add_parser(
        "merge", help="attach several campaigns' journals into one database"
    )
    db_merge.add_argument("--out", required=True, metavar="FILE", help="database file to build")
    db_merge.add_argument(
        "state_dirs", nargs="+", metavar="STATE_DIR",
        help="campaign state directories to attach (directory name becomes the label)",
    )
    db_merge.set_defaults(func=_cmd_db, db_func=_cmd_db_merge)

    experiment = subparsers.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument("name", help="table1|table2|table3|table4|fig8|fig9|fig10|all")
    experiment.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
