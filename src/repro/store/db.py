"""The indexed bug database: a SQLite derived view of the campaign journal.

The JSONL journal (:mod:`repro.store.journal`) is the campaign's write-ahead
log: append-only, crash-safe, and the single source of truth.  It is also
*replay-only* -- every status check, resume lookup or cross-campaign query
re-parses the whole log and materializes every unit result in memory, which
collapses at the "weeks of continuous campaigns" scale the roadmap targets.

:class:`CampaignDatabase` is the queryable half of that contract, modeled on
diopter's content-hash-keyed compressed blob columns:

* ``sources`` -- every distinct program text exactly once, keyed by its
  SHA-256 and stored zlib-compressed (journals repeat trigger programs
  across bug reports, units and generations; the database never does);
* ``records`` -- the imported journal lines themselves, one row per parsed
  record in journal order, with program texts swapped for source references
  (:func:`~repro.store.serialize.externalize_programs`) and the remaining
  JSON zlib-compressed.  Indexed by unit key, so a resume status check is
  one index probe instead of a full replay.  The import is *exact*:
  restoring a row and re-encoding it reproduces the journal line
  byte-for-byte, which is what makes export a true inverse;
* ``bugs`` / ``triage`` / ``quarantine`` -- derived query tables rebuilt on
  every :meth:`refresh_views`, mirroring the schema-2 journal records: the
  deduplicated merged bug database with indexed (kind, lineage,
  ``introduced_in``, frontend, campaign-fingerprint) columns, the
  field-wise-merged triage outcomes, and the last-wins quarantine
  decisions.

The database is a **derived view, never the truth**: it can be deleted at
any time and rebuilt from the journal with :meth:`attach_journal` (the
``CampaignStore.compact()`` entry point does exactly that on a corrupt or
missing file).  Import is incremental -- each journal row remembers the
byte offset and content hash of its imported prefix, so compacting a grown
journal parses only the tail, and compacting an unchanged one is a no-op --
and idempotent: importing the same journal twice leaves the database
identical.  Several journals (distinct campaigns included) can be attached
into one database under distinct labels for cross-campaign queries; the
merge algebra is only ever applied *within* one journal, exactly as an
in-memory replay would.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.store.journal import (
    QuarantineRecord,
    TriageRecord,
    UnitRecord,
    complete_prefix_length,
    fold_quarantine_records,
    fold_triage_records,
    fold_unit_records,
)
from repro.store.serialize import (
    StoreFormatError,
    bug_report_from_json,
    encode_key,
    externalize_programs,
    fingerprint_sha,
    internalize_programs,
)
from repro.store.store import (
    StoreError,
    StoreMismatchError,
    merged_result_from_records,
)

#: Database schema version; bumped on incompatible table-shape changes.
#: A mismatching file is treated like a corrupt one: delete and rebuild
#: from the journal (the database holds no information the journal lacks).
DB_SCHEMA = 1

#: zlib level for payloads and sources: written once, read many.
_COMPRESSION_LEVEL = 9

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS journals (
    id              INTEGER PRIMARY KEY,
    label           TEXT NOT NULL UNIQUE,
    fingerprint     TEXT NOT NULL,
    fingerprint_sha TEXT NOT NULL,
    offset          INTEGER NOT NULL DEFAULT 0,
    prefix_sha      TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS sources (
    sha  TEXT PRIMARY KEY,
    data BLOB NOT NULL,
    size INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    journal_id INTEGER NOT NULL REFERENCES journals(id),
    seq        INTEGER NOT NULL,
    type       TEXT NOT NULL,
    ukey       TEXT,
    name       TEXT,
    versions   TEXT,
    payload    BLOB NOT NULL,
    PRIMARY KEY (journal_id, seq)
);
CREATE INDEX IF NOT EXISTS idx_records_unit ON records(journal_id, type, ukey);
CREATE TABLE IF NOT EXISTS bugs (
    journal_id        INTEGER NOT NULL REFERENCES journals(id),
    bug_id            TEXT NOT NULL,
    kind              TEXT NOT NULL,
    compiler          TEXT NOT NULL,
    lineage           TEXT NOT NULL,
    opt_level         INTEGER NOT NULL,
    signature         TEXT NOT NULL,
    source_name       TEXT NOT NULL,
    component         TEXT NOT NULL,
    priority          TEXT NOT NULL,
    introduced_in     TEXT,
    frontend          TEXT NOT NULL,
    fingerprint_sha   TEXT NOT NULL,
    duplicate_count   INTEGER NOT NULL,
    fault_ids         TEXT NOT NULL,
    affected_versions TEXT NOT NULL,
    dedup_key         TEXT,
    test_program_sha  TEXT NOT NULL REFERENCES sources(sha),
    sort_rank         INTEGER NOT NULL,
    PRIMARY KEY (journal_id, bug_id)
);
CREATE INDEX IF NOT EXISTS idx_bugs_kind ON bugs(kind);
CREATE INDEX IF NOT EXISTS idx_bugs_lineage ON bugs(lineage);
CREATE INDEX IF NOT EXISTS idx_bugs_introduced ON bugs(introduced_in);
CREATE INDEX IF NOT EXISTS idx_bugs_frontend ON bugs(frontend);
CREATE INDEX IF NOT EXISTS idx_bugs_fingerprint ON bugs(fingerprint_sha);
CREATE INDEX IF NOT EXISTS idx_bugs_id ON bugs(bug_id);
CREATE TABLE IF NOT EXISTS triage (
    journal_id    INTEGER NOT NULL REFERENCES journals(id),
    bug_id        TEXT NOT NULL,
    kind          TEXT NOT NULL,
    reduced_sha   TEXT REFERENCES sources(sha),
    introduced_in TEXT,
    stats         TEXT NOT NULL,
    PRIMARY KEY (journal_id, bug_id)
);
CREATE TABLE IF NOT EXISTS quarantine (
    journal_id INTEGER NOT NULL REFERENCES journals(id),
    ukey       TEXT NOT NULL,
    name       TEXT NOT NULL,
    start      INTEGER NOT NULL,
    stop       INTEGER NOT NULL,
    indices    TEXT,
    "primary"  INTEGER NOT NULL,
    kind       TEXT NOT NULL,
    attempts   INTEGER NOT NULL,
    detail     TEXT NOT NULL,
    PRIMARY KEY (journal_id, ukey)
);
"""


@dataclass(frozen=True)
class ImportStats:
    """What one :meth:`CampaignDatabase.attach_journal` call did."""

    label: str
    rebuilt: bool
    records_imported: int
    records_total: int
    sources_added: int


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class CampaignDatabase:
    """One SQLite file holding the indexed view of one or more journals."""

    def __init__(self, path: str | Path, *, create: bool = False) -> None:
        self.path = Path(path)
        if not create and not self.path.exists():
            raise StoreError(f"no campaign database at {self.path} (run compact first)")
        self._conn = sqlite3.connect(self.path)
        self._conn.row_factory = sqlite3.Row
        self._known_sources: set[str] = set()
        try:
            if create:
                # Small pages: the view must beat the journal on disk even
                # for modest campaigns, and 4 KiB pages waste most of their
                # space on zlib-compressed rows a few hundred bytes long.
                self._conn.execute("PRAGMA page_size = 512")
                self._conn.executescript(_SCHEMA_SQL)
                self._conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES ('schema', ?)",
                    (str(DB_SCHEMA),),
                )
                self._conn.commit()
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema'"
            ).fetchone()
            if row is None or row["value"] != str(DB_SCHEMA):
                raise StoreError(
                    f"{self.path} is not a schema-{DB_SCHEMA} campaign database; "
                    "delete it and rebuild from the journal"
                )
        except sqlite3.Error as error:
            self._conn.close()
            raise StoreError(f"unreadable campaign database {self.path}: {error}") from error
        except StoreError:
            self._conn.close()
            raise

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path) -> "CampaignDatabase":
        """Open an existing database, validating its schema."""
        return cls(path)

    @classmethod
    def create(cls, path: str | Path) -> "CampaignDatabase":
        """Create (or open) a database, laying down the schema."""
        return cls(path, create=True)

    @classmethod
    def open_or_rebuild(cls, path: str | Path) -> tuple["CampaignDatabase", bool]:
        """Open the database, deleting and recreating it when unusable.

        The recovery semantics of a derived view: a missing, truncated,
        garbage or foreign-schema file costs nothing but the rebuild --
        the journal holds everything.  Returns ``(database, rebuilt)``.
        """
        path = Path(path)
        if path.exists():
            try:
                return cls(path), False
            except StoreError:
                path.unlink()
        return cls(path, create=True), True

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- journals ----------------------------------------------------------

    def journals(self) -> list[sqlite3.Row]:
        return list(self._conn.execute("SELECT * FROM journals ORDER BY id"))

    def journal_id(self, label: str) -> int | None:
        row = self._conn.execute(
            "SELECT id FROM journals WHERE label = ?", (label,)
        ).fetchone()
        return None if row is None else row["id"]

    def journal_fingerprint(self, journal_id: int) -> dict[str, Any]:
        row = self._conn.execute(
            "SELECT fingerprint FROM journals WHERE id = ?", (journal_id,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no journal {journal_id} in {self.path}")
        return json.loads(row["fingerprint"])

    def is_fresh(self, journal_path: str | Path, journal_id: int) -> bool:
        """Is this journal's imported prefix exactly the journal on disk?

        True when every complete line of the journal has been imported and
        the imported bytes still match (an append-only journal only ever
        grows; a truncation or rewrite fails the prefix hash).  A fresh
        database answers lookups *for* the journal; a stale one falls back
        to replay until the next compact.
        """
        row = self._conn.execute(
            "SELECT offset, prefix_sha FROM journals WHERE id = ?", (journal_id,)
        ).fetchone()
        if row is None:
            return False
        prefix = complete_prefix_length(journal_path)
        if prefix != row["offset"]:
            return False
        path = Path(journal_path)
        data = path.read_bytes()[:prefix] if path.exists() else b""
        return _sha256(data) == row["prefix_sha"]

    # -- import ------------------------------------------------------------

    def attach_journal(
        self, journal_path: str | Path, fingerprint: dict[str, Any], *, label: str
    ) -> ImportStats:
        """Import (the new tail of) one journal under ``label``.

        Idempotent and incremental: the journal row tracks the byte offset
        and hash of its imported, newline-terminated prefix, so an
        unchanged journal imports nothing, a grown one imports only the
        appended lines, and a truncated/rewritten one (hash mismatch) is
        re-imported from scratch.  Lines are parsed exactly as
        :func:`~repro.store.journal.read_journal` parses them -- torn or
        corrupt lines are skipped, never stored.

        Attaching a journal whose fingerprint differs from the one stored
        under the same label raises :class:`StoreMismatchError`: the
        database was compacted from a *different* campaign, and silently
        mixing the two would corrupt every cross-record invariant.  Delete
        the database to rebuild it from the journal of record.
        """
        fp_json = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
        row = self._conn.execute(
            "SELECT id, fingerprint, offset, prefix_sha FROM journals WHERE label = ?",
            (label,),
        ).fetchone()
        if row is not None and row["fingerprint"] != fp_json:
            raise StoreMismatchError(
                f"database {self.path} was compacted from a different campaign "
                f"(journal {label!r} fingerprint differs); delete the database "
                "to rebuild it from the journal"
            )
        if row is None:
            cursor = self._conn.execute(
                "INSERT INTO journals (label, fingerprint, fingerprint_sha, offset, prefix_sha)"
                " VALUES (?, ?, ?, 0, ?)",
                (label, fp_json, fingerprint_sha(fingerprint), _sha256(b"")),
            )
            journal_id, offset, prefix_sha = cursor.lastrowid, 0, _sha256(b"")
        else:
            journal_id, offset, prefix_sha = row["id"], row["offset"], row["prefix_sha"]

        path = Path(journal_path)
        data = path.read_bytes() if path.exists() else b""
        prefix = complete_prefix_length(journal_path)
        rebuilt = False
        if offset > len(data) or _sha256(data[:offset]) != prefix_sha:
            # The journal shrank or was rewritten under the same label
            # (e.g. a --fresh run): the imported rows describe bytes that
            # no longer exist, so this journal's slice is rebuilt whole.
            for table in ("records", "bugs", "triage", "quarantine"):
                self._conn.execute(
                    f"DELETE FROM {table} WHERE journal_id = ?", (journal_id,)
                )
            offset = 0
            rebuilt = True
        seq_row = self._conn.execute(
            "SELECT COALESCE(MAX(seq) + 1, 0) AS next FROM records WHERE journal_id = ?",
            (journal_id,),
        ).fetchone()
        seq = seq_row["next"]
        imported = 0
        sources_before = self._source_count()
        for payload in _parse_lines(data[offset:prefix]):
            self._insert_record(journal_id, seq, payload)
            seq += 1
            imported += 1
        self._conn.execute(
            "UPDATE journals SET offset = ?, prefix_sha = ? WHERE id = ?",
            (prefix, _sha256(data[:prefix]), journal_id),
        )
        self._conn.commit()
        total_row = self._conn.execute(
            "SELECT COUNT(*) AS n FROM records WHERE journal_id = ?", (journal_id,)
        ).fetchone()
        return ImportStats(
            label=label,
            rebuilt=rebuilt,
            records_imported=imported,
            records_total=total_row["n"],
            sources_added=self._source_count() - sources_before,
        )

    def _insert_record(self, journal_id: int, seq: int, payload: dict[str, Any]) -> None:
        rtype = payload.get("type")
        rtype = rtype if isinstance(rtype, str) else ""
        ukey = name = versions = None
        if rtype == "unit":
            ukey = payload.get("key")
            name = payload.get("name")
            raw_versions = payload.get("versions")
            if isinstance(raw_versions, list):
                versions = json.dumps(raw_versions, separators=(",", ":"))
        elif rtype == "quarantine":
            ukey = payload.get("key")
            name = payload.get("name")
        elif rtype == "triage":
            ukey = payload.get("bug_id")
        externalized = externalize_programs(payload, self._put_source)
        blob = zlib.compress(
            json.dumps(externalized, separators=(",", ":")).encode(), _COMPRESSION_LEVEL
        )
        self._conn.execute(
            "INSERT INTO records (journal_id, seq, type, ukey, name, versions, payload)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                journal_id,
                seq,
                rtype,
                ukey if isinstance(ukey, str) else None,
                name if isinstance(name, str) else None,
                versions,
                blob,
            ),
        )

    # -- sources -----------------------------------------------------------

    def _put_source(self, text: str) -> str:
        raw = text.encode()
        sha = _sha256(raw)
        if sha in self._known_sources:
            return sha
        exists = self._conn.execute(
            "SELECT 1 FROM sources WHERE sha = ?", (sha,)
        ).fetchone()
        if exists is None:
            self._conn.execute(
                "INSERT INTO sources (sha, data, size) VALUES (?, ?, ?)",
                (sha, zlib.compress(raw, _COMPRESSION_LEVEL), len(raw)),
            )
        self._known_sources.add(sha)
        return sha

    def source_text(self, sha: str) -> str:
        row = self._conn.execute(
            "SELECT data FROM sources WHERE sha = ?", (sha,)
        ).fetchone()
        if row is None:
            raise StoreError(f"no source {sha} in {self.path}")
        return zlib.decompress(row["data"]).decode()

    def _source_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) AS n FROM sources").fetchone()["n"]

    def _restore_payload(self, blob: bytes) -> dict[str, Any]:
        return internalize_programs(
            json.loads(zlib.decompress(blob).decode()), self.source_text
        )

    # -- derived views -------------------------------------------------------

    def refresh_views(self) -> None:
        """Rebuild the ``bugs`` / ``triage`` / ``quarantine`` query tables.

        Derived from the imported records through exactly the journal's own
        fold/merge functions, one journal at a time -- the merge algebra is
        never applied across journals, so a database holding several
        campaigns answers per-campaign queries identically to replaying
        each journal alone.  ``bugs.sort_rank`` pins each journal's
        canonical report order (the order an in-memory replay reports).
        """
        for journal in self.journals():
            journal_id = journal["id"]
            for table in ("bugs", "triage", "quarantine"):
                self._conn.execute(
                    f"DELETE FROM {table} WHERE journal_id = ?", (journal_id,)
                )
            payloads = list(self._payloads(journal_id))
            merged = merged_result_from_records(
                fold_unit_records(payloads), fold_quarantine_records(payloads)
            )
            fingerprint = json.loads(journal["fingerprint"])
            frontend = str(fingerprint.get("frontend", ""))
            for rank, report in enumerate(merged.bugs.reports):
                self._conn.execute(
                    "INSERT INTO bugs (journal_id, bug_id, kind, compiler, lineage,"
                    " opt_level, signature, source_name, component, priority,"
                    " introduced_in, frontend, fingerprint_sha, duplicate_count,"
                    " fault_ids, affected_versions, dedup_key, test_program_sha, sort_rank)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        journal_id,
                        report.id,
                        report.kind.value,
                        report.compiler,
                        report.lineage,
                        int(report.opt_level),
                        report.signature,
                        report.source_name,
                        report.component,
                        report.priority,
                        report.introduced_in,
                        frontend,
                        journal["fingerprint_sha"],
                        report.duplicate_count,
                        json.dumps(list(report.fault_ids), separators=(",", ":")),
                        json.dumps(list(report.affected_versions), separators=(",", ":")),
                        json.dumps(encode_key(report.dedup_key), separators=(",", ":")),
                        self._put_source(report.test_program),
                        rank,
                    ),
                )
            for bug_id, record in sorted(fold_triage_records(payloads).items()):
                self._conn.execute(
                    "INSERT INTO triage (journal_id, bug_id, kind, reduced_sha,"
                    " introduced_in, stats) VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        journal_id,
                        bug_id,
                        record.kind,
                        (
                            self._put_source(record.reduced_program)
                            if record.reduced_program is not None
                            else None
                        ),
                        record.introduced_in,
                        json.dumps(record.stats, separators=(",", ":")),
                    ),
                )
            for key, record in sorted(fold_quarantine_records(payloads).items()):
                self._conn.execute(
                    'INSERT INTO quarantine (journal_id, ukey, name, start, stop,'
                    ' indices, "primary", kind, attempts, detail)'
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        journal_id,
                        key,
                        record.name,
                        record.start,
                        record.stop,
                        (
                            json.dumps(list(record.indices), separators=(",", ":"))
                            if record.indices is not None
                            else None
                        ),
                        int(record.primary),
                        record.kind,
                        record.attempts,
                        record.detail,
                    ),
                )
        self._conn.commit()

    def _payloads(self, journal_id: int) -> Iterator[dict[str, Any]]:
        for row in self._conn.execute(
            "SELECT payload FROM records WHERE journal_id = ? ORDER BY seq",
            (journal_id,),
        ):
            yield self._restore_payload(row["payload"])

    # -- lookups -------------------------------------------------------------

    def unit_records_for(self, journal_id: int, key: str) -> list[UnitRecord]:
        """One unit key's journaled records: an index probe, not a replay."""
        records = []
        for row in self._conn.execute(
            "SELECT payload FROM records"
            " WHERE journal_id = ? AND type = 'unit' AND ukey = ? ORDER BY seq",
            (journal_id, key),
        ):
            try:
                records.append(UnitRecord.from_json(self._restore_payload(row["payload"])))
            except StoreFormatError:
                continue
        return records

    def quarantine_map(self, journal_id: int) -> dict[str, QuarantineRecord]:
        """The effective quarantine record per unit key, from the derived table."""
        records: dict[str, QuarantineRecord] = {}
        for row in self._conn.execute(
            "SELECT * FROM quarantine WHERE journal_id = ?", (journal_id,)
        ):
            indices = row["indices"]
            records[row["ukey"]] = QuarantineRecord(
                key=row["ukey"],
                name=row["name"],
                start=row["start"],
                stop=row["stop"],
                indices=tuple(json.loads(indices)) if indices is not None else None,
                primary=bool(row["primary"]),
                kind=row["kind"],
                attempts=row["attempts"],
                detail=row["detail"],
            )
        return records

    def triage_map(self, journal_id: int) -> dict[str, TriageRecord]:
        """The effective triage record per bug id, from the derived table."""
        records: dict[str, TriageRecord] = {}
        for row in self._conn.execute(
            "SELECT * FROM triage WHERE journal_id = ?", (journal_id,)
        ):
            records[row["bug_id"]] = TriageRecord(
                bug_id=row["bug_id"],
                kind=row["kind"],
                reduced_program=(
                    self.source_text(row["reduced_sha"])
                    if row["reduced_sha"] is not None
                    else None
                ),
                introduced_in=row["introduced_in"],
                stats=json.loads(row["stats"]),
            )
        return records

    def load_unit_records(self, journal_id: int) -> dict[str, list[UnitRecord]]:
        """Every unit record of one journal, grouped by key (full decode)."""
        return fold_unit_records(self._payloads(journal_id))

    def merged_result(self, journal_id: int):
        """Replay one journal's records from the database.

        Field-for-field identical to ``CampaignStore.merged_result()`` over
        the journal file: both sides fold the same payload stream through
        the same merge algebra.
        """
        payloads = list(self._payloads(journal_id))
        return merged_result_from_records(
            fold_unit_records(payloads), fold_quarantine_records(payloads)
        )

    def status(self, journal_id: int) -> dict[str, Any]:
        """The journal's progress summary, answered from indexes."""
        units = self._conn.execute(
            "SELECT COUNT(*) AS n, COUNT(DISTINCT ukey) AS distinct_n"
            " FROM records WHERE journal_id = ? AND type = 'unit'",
            (journal_id,),
        ).fetchone()
        quarantined = self._conn.execute(
            "SELECT COUNT(*) AS n FROM quarantine WHERE journal_id = ?", (journal_id,)
        ).fetchone()
        checkpoint_row = self._conn.execute(
            "SELECT payload FROM records"
            " WHERE journal_id = ? AND type = 'checkpoint' ORDER BY seq DESC LIMIT 1",
            (journal_id,),
        ).fetchone()
        return {
            "units_journaled": units["n"],
            "distinct_units": units["distinct_n"],
            "quarantined_units": quarantined["n"],
            "last_checkpoint": (
                self._restore_payload(checkpoint_row["payload"])
                if checkpoint_row is not None
                else None
            ),
        }

    # -- queries -------------------------------------------------------------

    def query_bugs(
        self,
        *,
        kind: str | None = None,
        lineage: str | None = None,
        introduced_in: str | None = None,
        frontend: str | None = None,
        fingerprint: str | None = None,
        label: str | None = None,
    ) -> list[tuple[str, Any]]:
        """Filtered bug reports as ``(journal label, BugReport)`` pairs.

        ``introduced_in`` matches the *effective* attribution: the merged
        unit-record attribution when present, else the journaled triage
        attribution -- knowledge is coalesced exactly as
        ``load_triage_records`` merges it, never overridden.  Results come
        back in each journal's canonical replay order (``sort_rank``),
        journals in attach-independent label order, so the listing for any
        single journal is exactly what an in-memory replay reports.
        """
        sql = (
            "SELECT b.*, j.label AS journal_label,"
            " COALESCE(b.introduced_in, t.introduced_in) AS effective_introduced_in"
            " FROM bugs b"
            " JOIN journals j ON j.id = b.journal_id"
            " LEFT JOIN triage t ON t.journal_id = b.journal_id AND t.bug_id = b.bug_id"
        )
        clauses, params = [], []
        for column, value in (
            ("b.kind", kind),
            ("b.lineage", lineage),
            ("b.frontend", frontend),
            ("b.fingerprint_sha", fingerprint),
            ("j.label", label),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if introduced_in is not None:
            clauses.append("COALESCE(b.introduced_in, t.introduced_in) = ?")
            params.append(introduced_in)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY j.label, b.sort_rank"
        results = []
        for row in self._conn.execute(sql, params):
            payload = {
                "id": row["bug_id"],
                "kind": row["kind"],
                "compiler": row["compiler"],
                "lineage": row["lineage"],
                "opt_level": row["opt_level"],
                "signature": row["signature"],
                "test_program": self.source_text(row["test_program_sha"]),
                "source_name": row["source_name"],
                "component": row["component"],
                "priority": row["priority"],
                "fault_ids": json.loads(row["fault_ids"]),
                "affected_versions": json.loads(row["affected_versions"]),
                "duplicate_count": row["duplicate_count"],
                "introduced_in": row["effective_introduced_in"],
                "dedup_key": json.loads(row["dedup_key"]),
            }
            results.append((row["journal_label"], bug_report_from_json(payload)))
        return results

    # -- export --------------------------------------------------------------

    def export_journal(self, out_path: str | Path, *, label: str | None = None) -> int:
        """Write the imported records back out as a JSONL journal.

        The inverse of :meth:`attach_journal`: records come out in import
        order with their program texts re-inlined, each line byte-identical
        to the journal line it was parsed from.  With ``label`` the export
        covers one journal; otherwise every attached journal in label
        order.  Returns the number of records written.
        """
        if label is not None:
            journal_ids = [self.journal_id(label)]
            if journal_ids[0] is None:
                raise StoreError(f"no journal {label!r} in {self.path}")
        else:
            journal_ids = [
                row["id"]
                for row in self._conn.execute("SELECT id FROM journals ORDER BY label")
            ]
        written = 0
        with open(out_path, "wb") as handle:
            for journal_id in journal_ids:
                for payload in self._payloads(journal_id):
                    handle.write(
                        json.dumps(payload, separators=(",", ":")).encode() + b"\n"
                    )
                    written += 1
        return written

    def vacuum(self) -> None:
        """Reclaim pages freed by view refreshes (compaction's last step)."""
        self._conn.commit()
        self._conn.execute("VACUUM")

    # -- observability -------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Size and dedup accounting (the compaction-ratio numbers)."""
        counts = {
            table: self._conn.execute(f"SELECT COUNT(*) AS n FROM {table}").fetchone()["n"]
            for table in ("records", "sources", "bugs", "triage", "quarantine")
        }
        source_row = self._conn.execute(
            "SELECT COALESCE(SUM(size), 0) AS raw,"
            " COALESCE(SUM(LENGTH(data)), 0) AS stored FROM sources"
        ).fetchone()
        return {
            "db_bytes": self.path.stat().st_size if self.path.exists() else 0,
            "records": counts["records"],
            "sources": counts["sources"],
            "bugs": counts["bugs"],
            "triage": counts["triage"],
            "quarantine": counts["quarantine"],
            "source_bytes_raw": source_row["raw"],
            "source_bytes_stored": source_row["stored"],
        }

    def explain(self, sql: str, params: tuple = ()) -> list[str]:
        """EXPLAIN QUERY PLAN detail lines (index-usage assertions in tests)."""
        return [
            row["detail"]
            for row in self._conn.execute(f"EXPLAIN QUERY PLAN {sql}", params)
        ]


def _parse_lines(data: bytes) -> Iterator[dict[str, Any]]:
    """Parse journal bytes exactly as :func:`read_journal` parses the file."""
    for raw in data.split(b"\n"):
        line = raw.decode("utf-8", errors="replace").strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(payload, dict):
            yield payload


__all__ = ["DB_SCHEMA", "CampaignDatabase", "ImportStats"]
