"""Persistent campaign store: crash-safe resume and incremental re-runs.

The paper's campaigns run for months against evolving compiler trunks; this
package makes the reproduction's campaigns survive the same regime.  It
provides:

* JSON serialization for everything a campaign produces
  (:mod:`repro.store.serialize`);
* an append-only, crash-tolerant JSONL journal of per-unit outcomes with
  periodic checkpoints (:mod:`repro.store.journal`);
* the :class:`~repro.store.store.CampaignStore` coordinator -- manifest
  fingerprinting, unit-record replay, and the associative merge algebra
  that makes resumed, incremental and shuffled replays produce results
  identical to an uninterrupted run (:mod:`repro.store.store`);
* the indexed SQLite derived view (:mod:`repro.store.db`): compressed,
  content-hash-deduplicated, queryable across campaigns, rebuilt from the
  journal on demand by :meth:`~repro.store.store.CampaignStore.compact`.

The harness wires it up through ``CampaignConfig.state_dir`` and
``Campaign.run_sources(resume=..., incremental=...)``; the CLI exposes
``--state-dir`` / ``--resume`` / ``--incremental`` and the ``repro db``
query subcommands.  See ``docs/ARCHITECTURE.md`` sections 6 and 11.
"""

from repro.store.db import CampaignDatabase
from repro.store.journal import (
    JOURNAL_FORMAT,
    JournalWriter,
    QuarantineRecord,
    TriageRecord,
    UnitRecord,
    journal_stats,
    load_quarantine_records,
    load_triage_records,
    load_unit_records,
    read_journal,
    source_sha,
    unit_key_for,
)
from repro.store.serialize import (
    StoreFormatError,
    bug_database_from_json,
    bug_database_to_json,
    bug_report_from_json,
    bug_report_to_json,
    campaign_result_from_json,
    campaign_result_to_json,
)
from repro.store.store import (
    CampaignStore,
    StoreError,
    StoreMismatchError,
    config_fingerprint,
    merge_unit_records,
    merged_result_from_records,
    select_records,
)

__all__ = [
    "JOURNAL_FORMAT",
    "CampaignDatabase",
    "CampaignStore",
    "JournalWriter",
    "StoreError",
    "StoreFormatError",
    "StoreMismatchError",
    "QuarantineRecord",
    "TriageRecord",
    "UnitRecord",
    "bug_database_from_json",
    "bug_database_to_json",
    "bug_report_from_json",
    "bug_report_to_json",
    "campaign_result_from_json",
    "campaign_result_to_json",
    "config_fingerprint",
    "journal_stats",
    "load_quarantine_records",
    "load_triage_records",
    "load_unit_records",
    "merge_unit_records",
    "merged_result_from_records",
    "read_journal",
    "select_records",
    "source_sha",
    "unit_key_for",
]
