"""JSON codecs for campaign state: bug reports, databases, results.

The persistent campaign store (:mod:`repro.store.journal`) is a plain-text
JSONL journal, so everything a campaign produces must round-trip through
JSON without losing the structure the merge layer depends on:

* :class:`~repro.testing.bugs.BugReport` dedup keys are (possibly nested)
  tuples -- they are encoded as nested lists and *re-tupled* on load, so a
  reloaded database deduplicates against live observations exactly;
* enum-valued fields (:class:`~repro.testing.bugs.BugKind`,
  :class:`~repro.compiler.pipeline.OptimizationLevel`) are stored by value;
* :class:`~repro.testing.harness.CampaignResult` counters and observation
  histograms are plain dictionaries already.

All codecs are pure functions (``x == from_json(to_json(x))`` up to dataclass
equality) and raise :class:`StoreFormatError` on malformed input rather than
surfacing ``KeyError``/``TypeError`` from deep inside the loader.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.testing.bugs import BugDatabase, BugReport

# The testing layer imports this package back (the harness persists through
# the store), so the codecs resolve their repro.testing/... names lazily at
# call time instead of at import time.


class StoreFormatError(ValueError):
    """A journal/manifest payload does not match the store format."""


#: Bug-report record schema.  Version 2 added the triage fields
#: (``introduced_in``); the loader accepts records without a schema marker
#: (= version 1) by defaulting every newer field, so journals written before
#: the triage engine still load and replay exactly.
BUG_REPORT_SCHEMA = 2


def encode_key(key: tuple | None) -> list | None:
    """Encode a (nested) dedup-key tuple as nested JSON lists."""
    if key is None:
        return None
    return [encode_key(item) if isinstance(item, tuple) else item for item in key]


def decode_key(key: list | None) -> tuple | None:
    """Invert :func:`encode_key`: nested lists back to nested tuples."""
    if key is None:
        return None
    return tuple(decode_key(item) if isinstance(item, list) else item for item in key)


def fingerprint_sha(fingerprint: dict[str, Any]) -> str:
    """Content identity of a campaign fingerprint (canonical-JSON sha)."""
    canonical = json.dumps(fingerprint, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# -- program-text externalization -----------------------------------------------

#: Record keys whose string values are whole program texts.  The SQLite
#: derived view (:mod:`repro.store.db`) swaps them for content-hash
#: references into its deduplicated ``sources`` table; the JSONL journal
#: always keeps them inline.
PROGRAM_TEXT_KEYS = frozenset({"test_program", "reduced_program"})

#: The reference marker: a program-text value becomes ``{"$src": <sha>}``.
SOURCE_REF_KEY = "$src"


def externalize_programs(value: Any, sink: Callable[[str], str]) -> Any:
    """Copy ``value`` with program texts swapped for content-hash references.

    ``sink(text)`` stores one program text and returns its content hash;
    every string found under a :data:`PROGRAM_TEXT_KEYS` key becomes
    ``{"$src": sha}``.  Exactly inverted by :func:`internalize_programs`
    (the transform never fires on non-string values, so ``None`` reduced
    programs survive untouched).
    """
    if isinstance(value, dict):
        result = {}
        for key, item in value.items():
            if key in PROGRAM_TEXT_KEYS and isinstance(item, str):
                result[key] = {SOURCE_REF_KEY: sink(item)}
            else:
                result[key] = externalize_programs(item, sink)
        return result
    if isinstance(value, list):
        return [externalize_programs(item, sink) for item in value]
    return value


def internalize_programs(value: Any, resolve: Callable[[str], str]) -> Any:
    """Invert :func:`externalize_programs`: references back to program text."""
    if isinstance(value, dict):
        result = {}
        for key, item in value.items():
            if (
                key in PROGRAM_TEXT_KEYS
                and isinstance(item, dict)
                and set(item) == {SOURCE_REF_KEY}
            ):
                result[key] = resolve(item[SOURCE_REF_KEY])
            else:
                result[key] = internalize_programs(item, resolve)
        return result
    if isinstance(value, list):
        return [internalize_programs(item, resolve) for item in value]
    return value


# -- bug reports ----------------------------------------------------------------


def bug_report_to_json(report: BugReport) -> dict[str, Any]:
    return {
        "schema": BUG_REPORT_SCHEMA,
        "id": report.id,
        "kind": report.kind.value,
        "compiler": report.compiler,
        "lineage": report.lineage,
        "opt_level": int(report.opt_level),
        "signature": report.signature,
        "test_program": report.test_program,
        "source_name": report.source_name,
        "component": report.component,
        "priority": report.priority,
        "fault_ids": list(report.fault_ids),
        "affected_versions": list(report.affected_versions),
        "duplicate_count": report.duplicate_count,
        "introduced_in": report.introduced_in,
        "dedup_key": encode_key(report.dedup_key),
    }


def bug_report_from_json(payload: dict[str, Any]) -> "BugReport":
    from repro.compiler.pipeline import OptimizationLevel
    from repro.testing.bugs import BugKind, BugReport

    try:
        return BugReport(
            id=payload["id"],
            kind=BugKind(payload["kind"]),
            compiler=payload["compiler"],
            lineage=payload["lineage"],
            opt_level=OptimizationLevel(payload["opt_level"]),
            signature=payload["signature"],
            test_program=payload["test_program"],
            source_name=payload["source_name"],
            component=payload.get("component", "unknown"),
            priority=payload.get("priority", "P3"),
            fault_ids=list(payload.get("fault_ids", [])),
            affected_versions=list(payload.get("affected_versions", [])),
            duplicate_count=int(payload.get("duplicate_count", 0)),
            # Schema 1 records (pre-triage journals) have no attribution.
            introduced_in=payload.get("introduced_in"),
            dedup_key=decode_key(payload.get("dedup_key")),
        )
    except (KeyError, ValueError, TypeError) as error:
        raise StoreFormatError(f"malformed bug report record: {error}") from error


# -- bug databases --------------------------------------------------------------


def bug_database_to_json(database: "BugDatabase") -> dict[str, Any]:
    return {"reports": [bug_report_to_json(report) for report in database.reports]}


def bug_database_from_json(payload: dict[str, Any]) -> "BugDatabase":
    from repro.testing.bugs import BugDatabase

    database = BugDatabase()
    try:
        reports = payload["reports"]
    except (KeyError, TypeError) as error:
        raise StoreFormatError(f"malformed bug database record: {error}") from error
    for entry in reports:
        report = bug_report_from_json(entry)
        # ``insert`` (not ``absorb``): loading must reproduce the serialized
        # database exactly, duplicate counts included.
        database.insert(report)
    return database


# -- campaign results ------------------------------------------------------------


def campaign_result_to_json(result) -> dict[str, Any]:
    payload = {
        "bugs": bug_database_to_json(result.bugs),
        "files_processed": result.files_processed,
        "files_skipped_budget": result.files_skipped_budget,
        "files_skipped_error": result.files_skipped_error,
        "variants_tested": result.variants_tested,
        "observations": dict(result.observations),
        "wall_seconds": result.wall_seconds,
    }
    if result.quarantined:
        # Emitted only when non-empty: a fault-free supervised run's records
        # stay byte-identical to pre-supervision journals (the equivalence
        # contract), and old loaders never see the key.
        payload["quarantined"] = [record.to_json() for record in result.quarantined]
    if result.cache_stats:
        # Same only-when-non-empty rule: per-unit journal records never carry
        # cache counters (the harness attaches them at shard granularity),
        # so unit records stay byte-identical whatever the cache knobs.
        payload["cache_stats"] = dict(result.cache_stats)
    return payload


def campaign_result_from_json(payload: dict[str, Any]):
    from repro.store.journal import QuarantineRecord
    from repro.testing.harness import CampaignResult

    try:
        return CampaignResult(
            bugs=bug_database_from_json(payload["bugs"]),
            files_processed=int(payload["files_processed"]),
            files_skipped_budget=int(payload["files_skipped_budget"]),
            files_skipped_error=int(payload["files_skipped_error"]),
            variants_tested=int(payload["variants_tested"]),
            observations={str(k): int(v) for k, v in payload["observations"].items()},
            wall_seconds=float(payload.get("wall_seconds", 0.0)),
            quarantined=[
                QuarantineRecord.from_json(entry)
                for entry in payload.get("quarantined", [])
            ],
            cache_stats={
                str(k): int(v) for k, v in payload.get("cache_stats", {}).items()
            },
        )
    except (KeyError, ValueError, TypeError) as error:
        raise StoreFormatError(f"malformed campaign result record: {error}") from error


__all__ = [
    "BUG_REPORT_SCHEMA",
    "PROGRAM_TEXT_KEYS",
    "SOURCE_REF_KEY",
    "StoreFormatError",
    "bug_database_from_json",
    "bug_database_to_json",
    "bug_report_from_json",
    "bug_report_to_json",
    "campaign_result_from_json",
    "campaign_result_to_json",
    "decode_key",
    "encode_key",
    "externalize_programs",
    "fingerprint_sha",
    "internalize_programs",
]
