"""The campaign store: manifest + journal + the unit-record merge algebra.

:class:`CampaignStore` owns one campaign *state directory*:

* ``manifest.json`` -- the campaign **fingerprint**: every config knob that
  changes what a unit record *means* (frontend, opt levels, machine bits,
  sampling, budget, granularity...).  A journal is only replayed into a
  campaign with a matching fingerprint; anything else raises
  :class:`StoreMismatchError` instead of silently merging apples into
  oranges.  Compiler ``versions`` are deliberately *not* part of the
  fingerprint -- each unit record carries the version set it covered, which
  is what makes incremental re-runs (new compiler version => run only the
  new column of the oracle matrix) possible.  ``use_ast_rebinding`` and
  ``jobs`` are also excluded: the equivalence suite proves the pipelines
  and shardings observationally identical, so records are interchangeable
  across them.
* ``journal.jsonl`` -- the append-only unit log (:mod:`repro.store.journal`).

The merge algebra (:func:`merge_unit_records`) is what keeps resume and
incremental runs exact.  Records for *different* units merge like shard
results (counters sum).  Records for the *same* unit cover disjoint version
sets, so their observation histograms and bug databases union -- but the
unit's variants were walked once per record, so the per-variant counters
(``variants_tested``, ``files_processed``...) take the **max**, not the sum.
Both operations are associative and commutative, which is why a journal can
be replayed in any order (shuffled, interleaved with live shards, across
incremental generations) and produce one identical campaign result.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.store.journal import (
    JOURNAL_FORMAT,
    JournalWriter,
    QuarantineRecord,
    TriageRecord,
    UnitRecord,
    journal_stats,
    load_quarantine_records,
    load_triage_records,
    load_unit_records,
)

# repro.store.db imports this module (errors + merge helper), so the store
# resolves its CampaignDatabase lazily inside the methods that need it.


class StoreError(RuntimeError):
    """Base class for campaign-store failures."""


class StoreMismatchError(StoreError):
    """The state directory belongs to an incompatible campaign."""


def config_fingerprint(config) -> dict[str, Any]:
    """The store identity of a campaign configuration.

    Two configs with equal fingerprints produce interchangeable unit
    records.  See the module docstring for what is deliberately excluded
    (``versions``, ``use_ast_rebinding``, ``jobs``).
    """
    return {
        "format": JOURNAL_FORMAT,
        "frontend": config.frontend,
        "opt_levels": [int(level) for level in config.opt_levels],
        "machine_bits": list(config.machine_bits),
        "granularity": config.granularity.value,
        "budget": {
            "max_variants": config.budget.max_variants,
            "truncate": config.budget.truncate,
        },
        "use_naive_enumeration": config.use_naive_enumeration,
        "unit_variants": config.unit_variants,
        "max_variants_per_file": config.max_variants_per_file,
        "sample_per_file": config.sample_per_file,
        "sample_seed": config.sample_seed,
        "stop_after_bugs": config.stop_after_bugs,
        # The reduction policy predates its string form ("off"/"crash"/"all"):
        # it was a bool, and manifests written then must keep matching, so
        # the two historical values are encoded as the booleans they were.
        # (Reduction changes the representative programs a unit records, so
        # it stays part of the fingerprint; bisection only annotates reports
        # and deliberately does not.)
        "reduce_bugs": {"off": False, "crash": True}.get(config.reduce_bugs, config.reduce_bugs),
    }


def select_records(
    records: Sequence[UnitRecord], needed: set[str]
) -> tuple[list[UnitRecord], set[str]]:
    """Deterministically choose replayable records for one unit.

    A record is usable when its version set is contained in ``needed`` (a
    record covering foreign versions cannot be decomposed) and disjoint from
    the versions already selected (overlapping records would double-count
    observations).  Greedy **widest-first** (then lexicographic), so every
    run of every process picks the same records, a record covering the full
    needed set always wins over a partial one it overlaps (a journal holding
    both ``(v1,)`` and ``(v1, v2)`` generations converges instead of
    re-running forever), and the *coverage* reported here is exactly what
    :func:`merge_unit_records` will replay, never more.
    """
    usable: list[UnitRecord] = []
    covered: set[str] = set()
    for record in sorted(records, key=lambda record: (-len(record.versions), record.versions)):
        versions = set(record.versions)
        if versions <= needed and not (versions & covered):
            usable.append(record)
            covered |= versions
    return usable, covered


def merge_unit_records(records: Sequence[UnitRecord]):
    """Merge the records of ONE unit key into one unit result.

    The records cover disjoint version sets of the same index slice:
    observations sum and bugs union (each version column contributed its
    own), while the walk counters take the max -- every record walked the
    same variants, so summing them would double-count.  Associative and
    commutative, hence order-independent.
    """
    from repro.testing.harness import CampaignResult

    merged = CampaignResult()
    for record in sorted(records, key=lambda record: record.versions):
        result = record.result
        for key, count in result.observations.items():
            merged.observations[key] = merged.observations.get(key, 0) + count
        merged.bugs = merged.bugs.merge(result.bugs)
        merged.files_processed = max(merged.files_processed, result.files_processed)
        merged.files_skipped_budget = max(
            merged.files_skipped_budget, result.files_skipped_budget
        )
        merged.files_skipped_error = max(
            merged.files_skipped_error, result.files_skipped_error
        )
        merged.variants_tested = max(merged.variants_tested, result.variants_tested)
        merged.wall_seconds = max(merged.wall_seconds, result.wall_seconds)
    return merged


def merged_result_from_records(
    records: dict[str, list[UnitRecord]],
    quarantines: dict[str, QuarantineRecord],
):
    """Fold loaded records into one campaign result (the replay semantics).

    The single definition of "replay a journal": sorted unit keys merged
    through :func:`merge_unit_records`, then sorted quarantine notes.  Both
    the journal path (:meth:`CampaignStore.merged_result`) and the SQLite
    view (:meth:`repro.store.db.CampaignDatabase.merged_result`) call this
    one function, which is what makes their results equal by construction
    rather than by parallel maintenance.
    """
    from repro.testing.harness import CampaignResult

    merged = CampaignResult()
    for key in sorted(records):
        merged = merged.merge(merge_unit_records(records[key]))
    for key in sorted(quarantines):
        merged.note_quarantine(quarantines[key])
    return merged


class CampaignStore:
    """One campaign's durable state directory (manifest + journal + DB).

    The JSONL journal is the write-ahead log and the only source of truth;
    ``campaign.db`` (when present) is the indexed derived view built by
    :meth:`compact`.  Reads prefer the view when it is *fresh* -- its
    imported prefix still hash-matches the journal on disk -- and silently
    fall back to journal replay otherwise, so a stale or deleted view is
    never wrong, only slower.
    """

    MANIFEST_NAME = "manifest.json"
    JOURNAL_NAME = "journal.jsonl"
    DB_NAME = "campaign.db"
    #: The label a campaign's own journal is attached under in its DB.
    DB_LABEL = "campaign"

    def __init__(self, state_dir: str | Path, *, fsync: bool = False) -> None:
        self.state_dir = Path(state_dir)
        self._fsync = fsync
        self._writer: JournalWriter | None = None
        self._records: dict[str, list[UnitRecord]] = {}
        self._quarantines: dict[str, QuarantineRecord] = {}
        self._db = None  # CampaignDatabase when resuming through the view
        self._db_journal_id: int | None = None

    # -- paths -------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.state_dir / self.MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.state_dir / self.JOURNAL_NAME

    @property
    def db_path(self) -> Path:
        return self.state_dir / self.DB_NAME

    # -- lifecycle ---------------------------------------------------------

    def begin(
        self, fingerprint: dict[str, Any], *, resume: bool, preserve: bool = False
    ) -> None:
        """Open the store for one campaign run.

        ``resume=False`` starts fresh: the manifest is (re)written and any
        existing journal truncated.  ``resume=True`` validates the manifest
        against ``fingerprint`` and loads the journaled unit records for
        replay; a missing or mismatching manifest raises
        :class:`StoreMismatchError` -- replaying records that mean something
        else would corrupt the campaign silently.

        ``preserve=True`` (distributed ``--shard i/n`` runs appending into a
        shared state directory) keeps an existing journal whose manifest
        matches ``fingerprint`` instead of truncating it, so each machine's
        partial run adds its units to the common log.
        """
        self.state_dir.mkdir(parents=True, exist_ok=True)
        if resume:
            manifest = self.read_manifest()
            if manifest is None:
                raise StoreMismatchError(
                    f"cannot resume: no manifest in {self.state_dir} "
                    "(run once without resume to create the store)"
                )
            stored = manifest.get("fingerprint")
            if stored != fingerprint:
                differing = sorted(
                    key
                    for key in set(stored or {}) | set(fingerprint)
                    if (stored or {}).get(key) != fingerprint.get(key)
                )
                raise StoreMismatchError(
                    f"state directory {self.state_dir} belongs to a different campaign "
                    f"(fingerprint differs in: {', '.join(differing)})"
                )
            db = self._open_fresh_db(fingerprint)
            if db is not None:
                # Lazy resume: unit records are fetched per key through the
                # view's (journal, type, key) index as the harness partitions
                # each unit, instead of materializing the whole journal here.
                self._db, self._db_journal_id = db
                self._records = {}
                self._quarantines = self._db.quarantine_map(self._db_journal_id)
            else:
                self._records = load_unit_records(self.journal_path)
                self._quarantines = load_quarantine_records(self.journal_path)
        else:
            if preserve:
                # Distributed shard runs append into a shared directory and
                # may start concurrently on several machines, so this path
                # must never truncate: records already appended by a sibling
                # shard (even one that raced past us before the manifest was
                # visible) stay intact.
                manifest = self.read_manifest()
                if manifest is not None and manifest.get("fingerprint") != fingerprint:
                    # Never truncate someone else's journal: a shared state
                    # directory holding another campaign's records is an
                    # operator error, not ours to destroy.
                    raise StoreMismatchError(
                        f"state directory {self.state_dir} already belongs to a "
                        "different campaign; use a fresh directory for this "
                        "distributed run"
                    )
                if manifest is None:
                    self.write_manifest(fingerprint)
                open(self.journal_path, "ab").close()
                self._records = {}
                self._quarantines = {}
                return
            self.write_manifest(fingerprint)
            open(self.journal_path, "wb").close()
            self._records = {}
            self._quarantines = {}

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._db is not None:
            self._db.close()
            self._db = None
            self._db_journal_id = None

    # -- manifest ----------------------------------------------------------

    def read_manifest(self) -> dict[str, Any] | None:
        if not self.manifest_path.exists():
            return None
        try:
            payload = json.loads(self.manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise StoreError(f"unreadable manifest {self.manifest_path}: {error}") from error
        if not isinstance(payload, dict):
            raise StoreError(f"malformed manifest {self.manifest_path}")
        return payload

    def write_manifest(self, fingerprint: dict[str, Any]) -> None:
        """Atomically replace the manifest (write-to-temp + rename)."""
        payload = {"format": JOURNAL_FORMAT, "fingerprint": fingerprint}
        temp = self.manifest_path.with_suffix(".json.tmp")
        temp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(temp, self.manifest_path)

    # -- records -----------------------------------------------------------

    def records_for(self, key: str) -> list[UnitRecord]:
        if self._db is not None and key not in self._records:
            self._records[key] = self._db.unit_records_for(self._db_journal_id, key)
        return self._records.get(key, [])

    def select(self, key: str, needed: Iterable[str]) -> tuple[list[UnitRecord], set[str]]:
        """Replayable records and the versions they cover for one unit."""
        return select_records(self.records_for(key), set(needed))

    def quarantine_for(self, key: str) -> QuarantineRecord | None:
        """The effective quarantine decision for one unit key, if any.

        Loaded at ``begin(resume=True)``; a quarantined unit is never
        re-executed on resume (that would be the deterministic-crash
        livelock this record exists to break).
        """
        return self._quarantines.get(key)

    def quarantine_records(self) -> dict[str, QuarantineRecord]:
        """The latest journaled quarantine record per unit key."""
        return load_quarantine_records(self.journal_path)

    # -- writing -----------------------------------------------------------

    def writer(self) -> JournalWriter:
        if self._writer is None:
            self._writer = JournalWriter(self.journal_path, fsync=self._fsync)
        return self._writer

    def checkpoint(self, units_seen: int, result) -> None:
        """Append a periodic progress checkpoint (merged counters so far)."""
        summary = {
            "files_processed": result.files_processed,
            "variants_tested": result.variants_tested,
            "distinct_bugs": len(result.bugs),
            "observations": dict(result.observations),
        }
        self.writer().append_checkpoint(units_seen, summary)

    # -- after-the-fact triage ---------------------------------------------

    def merged_result(self, *, backing: str = "auto"):
        """Merge every journaled unit record into one campaign result.

        The after-the-fact entry point the ``repro triage`` CLI uses: no
        ``begin()``/fingerprint handshake is needed because nothing is
        replayed into a live campaign -- the merge algebra alone
        reconstructs the deduplicated bug database (and the counters) from
        the journal, in any record order.

        ``backing`` picks the reconstruction source: ``"journal"`` replays
        the JSONL log, ``"db"`` requires a fresh compacted view (raising
        :class:`StoreError` otherwise), and ``"auto"`` (default) uses the
        view when fresh and replays the journal when not.  Both paths fold
        through :func:`merged_result_from_records`, so they agree
        field-for-field by construction.
        """
        if backing not in ("auto", "journal", "db"):
            raise ValueError(f"unknown merged_result backing: {backing!r}")
        if backing != "journal":
            opened = self._open_fresh_db()
            if opened is not None:
                db, journal_id = opened
                try:
                    return db.merged_result(journal_id)
                finally:
                    db.close()
            if backing == "db":
                raise StoreError(
                    f"no fresh campaign database in {self.state_dir}; "
                    "run `repro db compact` first"
                )
        return merged_result_from_records(
            load_unit_records(self.journal_path),
            load_quarantine_records(self.journal_path),
        )

    def triage_records(self) -> dict[str, TriageRecord]:
        """The latest journaled triage outcome per bug id."""
        return load_triage_records(self.journal_path)

    def append_triage_outcomes(self, outcomes: Iterable) -> int:
        """Journal :class:`~repro.triage.engine.TriageOutcome` values; returns the count."""
        written = 0
        writer = self.writer()
        for outcome in outcomes:
            writer.append_triage(
                TriageRecord(
                    bug_id=outcome.bug_id,
                    kind=outcome.kind,
                    reduced_program=outcome.reduced_program,
                    introduced_in=outcome.introduced_in,
                    stats={
                        "predicate_evaluations": outcome.predicate_evaluations,
                        "cache_hits": outcome.cache_hits,
                        "original_bytes": outcome.original_bytes,
                        "reduced_bytes": outcome.reduced_bytes,
                    },
                )
            )
            written += 1
        return written

    # -- the indexed view --------------------------------------------------

    def compact(self) -> dict[str, Any]:
        """(Re)build the SQLite view from the journal; returns its stats.

        Opens ``campaign.db`` -- deleting and recreating it when missing,
        truncated, or garbage; the view holds nothing the journal lacks --
        imports the journal's new complete lines under :data:`DB_LABEL`
        (idempotent: an unchanged journal imports zero records), and
        refreshes the derived query tables.  A view compacted from a
        *different* campaign raises :class:`StoreMismatchError` instead of
        silently mixing fingerprints.
        """
        from repro.store.db import CampaignDatabase

        manifest = self.read_manifest()
        if manifest is None:
            raise StoreMismatchError(
                f"cannot compact: no manifest in {self.state_dir} "
                "(run a campaign with --state-dir first)"
            )
        fingerprint = manifest.get("fingerprint") or {}
        db, rebuilt = CampaignDatabase.open_or_rebuild(self.db_path)
        try:
            imported = db.attach_journal(
                self.journal_path, fingerprint, label=self.DB_LABEL
            )
            db.refresh_views()
            db.vacuum()
            stats = db.stats()
        finally:
            db.close()
        journal_bytes = (
            self.journal_path.stat().st_size if self.journal_path.exists() else 0
        )
        stats.update(
            {
                "journal_bytes": journal_bytes,
                "compaction_ratio": (
                    round(stats["db_bytes"] / journal_bytes, 4) if journal_bytes else None
                ),
                "records_imported": imported.records_imported,
                "db_rebuilt": rebuilt or imported.rebuilt,
            }
        )
        return stats

    def _open_fresh_db(self, fingerprint: dict[str, Any] | None = None):
        """Open the view iff it exactly mirrors the journal on disk.

        Returns ``(CampaignDatabase, journal_id)`` or ``None``.  Freshness
        means the view's imported prefix is byte-identical to the journal's
        complete lines; with ``fingerprint`` the view's stored campaign
        identity must match too.  Any failure -- absent file, foreign
        schema, stale prefix -- degrades to the journal path, never to an
        error: the view is an accelerator, not a dependency.
        """
        from repro.store.db import CampaignDatabase

        if not self.db_path.exists():
            return None
        try:
            db = CampaignDatabase.open(self.db_path)
        except StoreError:
            return None
        try:
            journal_id = db.journal_id(self.DB_LABEL)
            if journal_id is None or not db.is_fresh(self.journal_path, journal_id):
                db.close()
                return None
            if (
                fingerprint is not None
                and db.journal_fingerprint(journal_id) != fingerprint
            ):
                db.close()
                return None
        except StoreError:
            db.close()
            return None
        return db, journal_id

    # -- observability -----------------------------------------------------

    def status(self) -> dict[str, Any]:
        """Cheap progress summary: unit count and the latest checkpoint.

        Status must stay cheap at journal scale, so neither path
        materializes unit results: a fresh compacted view answers from SQL
        counts; otherwise :func:`~repro.store.journal.journal_stats` scans
        record envelopes without decoding any
        :class:`~repro.testing.harness.CampaignResult`.
        """
        opened = self._open_fresh_db()
        if opened is not None:
            db, journal_id = opened
            try:
                return db.status(journal_id)
            finally:
                db.close()
        return journal_stats(self.journal_path)


__all__ = [
    "CampaignStore",
    "StoreError",
    "StoreMismatchError",
    "config_fingerprint",
    "merge_unit_records",
    "merged_result_from_records",
    "select_records",
]
