"""The append-only campaign journal.

One campaign state directory contains two files:

* ``journal.jsonl`` -- an append-only log, one JSON record per line.  The
  load-bearing record type is ``unit``: the complete, mergeable
  :class:`~repro.testing.harness.CampaignResult` of one
  :class:`~repro.testing.harness.ShardUnit` (a file's variant-index slice)
  under one set of compiler versions.  ``checkpoint`` records interleave
  periodically with progress counters and a merged summary so an operator
  (or the CLI) can read campaign progress without replaying the log.
* ``manifest.json`` -- the campaign fingerprint and format version
  (:mod:`repro.store.store`), rewritten atomically.

Durability and concurrency model:

* every record is one line, written with a single unbuffered ``write`` call
  on an ``O_APPEND`` file descriptor -- shard *worker processes* append
  their own unit records directly, so once the write returns the record
  lives in the kernel, surviving the worker, the pool and the parent all
  dying right after the unit completes.  ``fsync=True`` additionally syncs
  every record to stable storage (machine-crash durability) at a measurable
  per-unit cost; by default the journal is fsync'd once on close;
* the reader (:func:`read_journal`) tolerates a torn final line (the
  classic crash artifact of an interrupted append) and skips unparsable
  lines instead of failing the whole resume;
* records are only ever appended for work actually executed, and the
  harness plans disjoint units per run, so concurrent writers never
  produce conflicting records for one unit key.

Unit keys are content-derived (:func:`unit_key`): the seed name, the
SHA-256 of its source text, and the exact index slice.  Editing a seed file
or changing the plan shape therefore *misses* the old records and re-runs
the unit -- stale records are simply never replayed.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.store.serialize import (
    StoreFormatError,
    campaign_result_from_json,
    campaign_result_to_json,
)

#: Journal format version; bumped on incompatible record-shape changes.
JOURNAL_FORMAT = 1


def source_sha(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()[:16]


def unit_key(
    name: str,
    source_digest: str,
    start: int,
    stop: int,
    indices: tuple[int, ...] | None,
    primary: bool,
) -> str:
    """Content-derived identity of one shard unit's work."""
    payload = json.dumps(
        [name, source_digest, start, stop, list(indices) if indices is not None else None, primary],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def unit_key_for(unit) -> str:
    """The journal key of a :class:`~repro.testing.harness.ShardUnit`."""
    return unit_key(
        unit.name, source_sha(unit.source), unit.start, unit.stop, unit.indices, unit.primary
    )


@dataclass(frozen=True)
class TriageRecord:
    """One journaled triage outcome for one deduplicated bug.

    Appended by the ``repro triage`` CLI (and available to any tool reading
    the journal): the reduced trigger program, the attributed introducing
    version, and the predicate-evaluation stats.  ``bug_id`` is the stable
    content-derived id, so records match their bugs across resumes, merges
    and re-runs; when a bug is triaged more than once the *last* record wins
    (append-only log, latest knowledge).  Schema-versioned independently of
    unit records so old journals -- which simply contain no ``triage``
    records -- still load unchanged.
    """

    SCHEMA = 1

    bug_id: str
    kind: str
    reduced_program: str | None
    introduced_in: str | None
    stats: dict[str, Any]

    def to_json(self) -> dict[str, Any]:
        return {
            "type": "triage",
            "format": JOURNAL_FORMAT,
            "schema": self.SCHEMA,
            "bug_id": self.bug_id,
            "kind": self.kind,
            "reduced_program": self.reduced_program,
            "introduced_in": self.introduced_in,
            "stats": dict(self.stats),
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "TriageRecord":
        try:
            return TriageRecord(
                bug_id=payload["bug_id"],
                kind=payload.get("kind", ""),
                reduced_program=payload.get("reduced_program"),
                introduced_in=payload.get("introduced_in"),
                stats=dict(payload.get("stats", {})),
            )
        except (KeyError, TypeError) as error:
            raise StoreFormatError(f"malformed triage record: {error}") from error


@dataclass(frozen=True)
class QuarantineRecord:
    """One journaled poison-unit quarantine decision.

    Appended by the campaign supervisor when a unit exhausts its retry
    budget (``--max-retries``) under ``--on-fault quarantine``: the unit's
    content-derived key plus enough identity to report it (seed name, index
    slice), the failure taxonomy ``kind`` (``exception`` / ``hang`` /
    ``crash``), the attempt count, and the last traceback or signal detail.
    Resume treats a quarantined key as *covered-by-decision*: the unit is
    excluded from replay re-execution (breaking the deterministic-crash
    livelock) and surfaced in ``CampaignResult.quarantined`` instead.
    Schema-versioned independently of unit records, exactly like
    :class:`TriageRecord` -- old journals simply contain no ``quarantine``
    records and load unchanged.  When a key is quarantined more than once
    (e.g. a re-run after widening the retry budget) the *last* record wins.
    """

    SCHEMA = 1

    key: str
    name: str
    start: int
    stop: int
    indices: tuple[int, ...] | None
    primary: bool
    kind: str
    attempts: int
    detail: str

    @property
    def span(self) -> str:
        if self.indices is not None:
            return f"indices[{len(self.indices)}]"
        return f"[{self.start}:{self.stop})"

    def to_json(self) -> dict[str, Any]:
        return {
            "type": "quarantine",
            "format": JOURNAL_FORMAT,
            "schema": self.SCHEMA,
            "key": self.key,
            "name": self.name,
            "start": self.start,
            "stop": self.stop,
            "indices": list(self.indices) if self.indices is not None else None,
            "primary": self.primary,
            "kind": self.kind,
            "attempts": self.attempts,
            "detail": self.detail,
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "QuarantineRecord":
        try:
            indices = payload.get("indices")
            return QuarantineRecord(
                key=payload["key"],
                name=payload.get("name", ""),
                start=int(payload.get("start", 0)),
                stop=int(payload.get("stop", 0)),
                indices=tuple(indices) if indices is not None else None,
                primary=bool(payload.get("primary", False)),
                kind=payload.get("kind", "exception"),
                attempts=int(payload.get("attempts", 0)),
                detail=payload.get("detail", ""),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreFormatError(f"malformed quarantine record: {error}") from error


@dataclass(frozen=True)
class UnitRecord:
    """One journaled unit outcome: a unit key, the versions it covered, and
    the unit's complete mergeable result."""

    key: str
    name: str
    versions: tuple[str, ...]
    result: Any  # CampaignResult (typed loosely to avoid an import cycle)

    def to_json(self) -> dict[str, Any]:
        return {
            "type": "unit",
            "format": JOURNAL_FORMAT,
            "key": self.key,
            "name": self.name,
            "versions": list(self.versions),
            "result": campaign_result_to_json(self.result),
        }

    @staticmethod
    def from_json(payload: dict[str, Any]) -> "UnitRecord":
        try:
            return UnitRecord(
                key=payload["key"],
                name=payload.get("name", ""),
                versions=tuple(sorted(payload["versions"])),
                result=campaign_result_from_json(payload["result"]),
            )
        except (KeyError, TypeError) as error:
            raise StoreFormatError(f"malformed unit record: {error}") from error


class JournalWriter:
    """Appends records to ``journal.jsonl`` durably.

    Safe to instantiate independently in every shard worker process: each
    record is one unbuffered O_APPEND write of a full line, so concurrent
    appends from multiple workers interleave at line granularity and every
    acknowledged record survives a crash of any process involved (the data
    is in the kernel once the write returns).  ``fsync=True`` adds a sync
    per record for machine-crash durability; otherwise the file is fsync'd
    once on close.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self._fsync = fsync
        self._file: io.FileIO | None = None

    def _handle(self) -> io.FileIO:
        if self._file is None or self._file.closed:
            # Unbuffered binary append: one line per write() call.
            self._file = open(self.path, "ab", buffering=0)
        return self._file

    def _append(self, payload: dict[str, Any]) -> None:
        line = (json.dumps(payload, separators=(",", ":")) + "\n").encode()
        handle = self._handle()
        handle.write(line)
        if self._fsync:
            os.fsync(handle.fileno())

    def append_unit(self, unit, versions, result) -> UnitRecord:
        """Journal one completed unit's result under the versions it covered."""
        record = UnitRecord(
            key=unit_key_for(unit),
            name=unit.name,
            versions=tuple(sorted(versions)),
            result=result,
        )
        self._append(record.to_json())
        return record

    def append_triage(self, record: TriageRecord) -> TriageRecord:
        """Journal one bug's triage outcome (reduced program + attribution)."""
        self._append(record.to_json())
        return record

    def append_quarantine(self, record: QuarantineRecord) -> QuarantineRecord:
        """Journal one poison unit's quarantine decision (see :class:`QuarantineRecord`)."""
        self._append(record.to_json())
        return record

    def append_checkpoint(self, units_seen: int, summary: dict[str, Any]) -> None:
        """Journal a progress checkpoint (merged counters so far).

        Checkpoints are observability, not recovery state: resume replays
        unit records (whose merge is associative and order-independent), so
        a missing or torn checkpoint costs nothing.
        """
        self._append(
            {
                "type": "checkpoint",
                "format": JOURNAL_FORMAT,
                "units_seen": units_seen,
                "summary": summary,
            }
        )

    def close(self) -> None:
        if self._file is not None and not self._file.closed:
            try:
                os.fsync(self._file.fileno())
            except OSError:  # pragma: no cover - exotic filesystems
                pass
            self._file.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_journal(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield parsed journal records, tolerating crash-torn or corrupt lines.

    A process killed mid-append leaves a truncated final line; a disk-full
    write can corrupt one in the middle.  Neither should cost the rest of
    the log, so unparsable lines are skipped rather than raised.
    """
    path = Path(path)
    if not path.exists():
        return
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict):
                yield payload


def fold_unit_records(payloads: Iterable[dict[str, Any]]) -> dict[str, list[UnitRecord]]:
    """Group a stream of journal payloads into unit records by unit key.

    The single definition of unit-record loading semantics: both the JSONL
    journal reader and the SQLite derived view (:mod:`repro.store.db`) fold
    their payload streams through here, so the two backings can never
    disagree on what a journal *means*.
    """
    records: dict[str, list[UnitRecord]] = {}
    for payload in payloads:
        if payload.get("type") != "unit":
            continue
        try:
            record = UnitRecord.from_json(payload)
        except StoreFormatError:
            continue
        records.setdefault(record.key, []).append(record)
    return records


def fold_triage_records(payloads: Iterable[dict[str, Any]]) -> dict[str, TriageRecord]:
    """The effective triage record per bug id from a payload stream.

    Records merge *field-wise*, latest knowledge winning per field: a later
    record's ``None`` (e.g. a ``--no-bisect`` or ``--reduce off`` pass that
    simply did not look) never erases an earlier record's attribution or
    reduced program -- absence of knowledge does not overwrite knowledge,
    mirroring how ``BugDatabase`` merges ``introduced_in``.  ``stats``
    always reflect the most recent pass.
    """
    records: dict[str, TriageRecord] = {}
    for payload in payloads:
        if payload.get("type") != "triage":
            continue
        try:
            record = TriageRecord.from_json(payload)
        except StoreFormatError:
            continue
        prior = records.get(record.bug_id)
        if prior is not None:
            record = TriageRecord(
                bug_id=record.bug_id,
                kind=record.kind or prior.kind,
                reduced_program=(
                    record.reduced_program
                    if record.reduced_program is not None
                    else prior.reduced_program
                ),
                introduced_in=(
                    record.introduced_in
                    if record.introduced_in is not None
                    else prior.introduced_in
                ),
                stats=record.stats,
            )
        records[record.bug_id] = record
    return records


def fold_quarantine_records(payloads: Iterable[dict[str, Any]]) -> dict[str, QuarantineRecord]:
    """The effective quarantine record per unit key (last record wins)."""
    records: dict[str, QuarantineRecord] = {}
    for payload in payloads:
        if payload.get("type") != "quarantine":
            continue
        try:
            record = QuarantineRecord.from_json(payload)
        except StoreFormatError:
            continue
        records[record.key] = record
    return records


def load_unit_records(path: str | Path) -> dict[str, list[UnitRecord]]:
    """All well-formed unit records in the journal, grouped by unit key."""
    return fold_unit_records(read_journal(path))


def load_triage_records(path: str | Path) -> dict[str, TriageRecord]:
    """The effective triage record per bug id (see :func:`fold_triage_records`)."""
    return fold_triage_records(read_journal(path))


def load_quarantine_records(path: str | Path) -> dict[str, QuarantineRecord]:
    """The effective quarantine record per unit key (last record wins)."""
    return fold_quarantine_records(read_journal(path))


def complete_prefix_length(path: str | Path) -> int:
    """Byte length of the journal's newline-terminated prefix.

    The derived database only ever imports whole lines: a crash-torn tail
    (bytes past the final newline) is left for a later append to complete
    or corrupt -- exactly the bytes :func:`read_journal` would merge into
    the next appended line -- so import offsets always sit on a record
    boundary and an import never disagrees with a journal replay about
    which lines exist.
    """
    path = Path(path)
    if not path.exists():
        return 0
    block = 1 << 16
    with open(path, "rb") as handle:
        handle.seek(0, os.SEEK_END)
        position = handle.tell()
        while position > 0:
            step = min(block, position)
            handle.seek(position - step)
            chunk = handle.read(step)
            newline = chunk.rfind(b"\n")
            if newline != -1:
                return position - step + newline + 1
            position -= step
    return 0


def journal_stats(path: str | Path) -> dict[str, Any]:
    """Cheap status scan: record counts and the latest checkpoint.

    Parses only each line's JSON envelope -- no :class:`UnitRecord` (and in
    particular no ``CampaignResult``/``BugDatabase``) is materialized, so a
    status check on a journal holding weeks of campaign records costs one
    linear read instead of a full replay.  Counts are envelope-level (a
    ``type == "unit"`` line with a malformed body still counts), matching
    what the SQLite derived view stores; deep validation happens only on
    actual replay.
    """
    units = 0
    unit_keys: set[str] = set()
    quarantine_keys: set[str] = set()
    checkpoint: dict[str, Any] | None = None
    for payload in read_journal(path):
        kind = payload.get("type")
        if kind == "unit":
            units += 1
            key = payload.get("key")
            if isinstance(key, str):
                unit_keys.add(key)
        elif kind == "quarantine":
            key = payload.get("key")
            if isinstance(key, str):
                quarantine_keys.add(key)
        elif kind == "checkpoint":
            checkpoint = payload
    return {
        "units_journaled": units,
        "distinct_units": len(unit_keys),
        "quarantined_units": len(quarantine_keys),
        "last_checkpoint": checkpoint,
    }


def last_checkpoint(path: str | Path) -> dict[str, Any] | None:
    """The most recent checkpoint record, if any (progress observability)."""
    checkpoint = None
    for payload in read_journal(path):
        if payload.get("type") == "checkpoint":
            checkpoint = payload
    return checkpoint


__all__ = [
    "JOURNAL_FORMAT",
    "JournalWriter",
    "QuarantineRecord",
    "TriageRecord",
    "UnitRecord",
    "complete_prefix_length",
    "fold_quarantine_records",
    "fold_triage_records",
    "fold_unit_records",
    "journal_stats",
    "last_checkpoint",
    "load_quarantine_records",
    "load_triage_records",
    "load_unit_records",
    "read_journal",
    "source_sha",
    "unit_key",
    "unit_key_for",
]
