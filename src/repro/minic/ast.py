"""AST node definitions for the mini-C subset.

Nodes are mutable dataclasses: skeleton realization and mutation-based
baselines clone the tree (``copy.deepcopy``) and patch identifier names or
drop statements in place.  Every node carries an optional source location
for diagnostics.

Node overview::

    TranslationUnit(decls)
    VarDecl(name, type, init, is_global)          # also used for params
    FunctionDef(name, return_type, params, body)
    Block(items)                                   # '{' ... '}'
    If/While/DoWhile/For/Return/Break/Continue/Goto/Label/ExprStmt/Empty
    Identifier/IntLiteral/CharLiteral/StringLiteral
    Unary/Binary/Assignment/Conditional/Call/Index/Cast
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.minic.ctypes import CType


@dataclass
class Location:
    """Source position (1-based)."""

    line: int = 0
    column: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.line}:{self.column}"


class Node:
    """Base class for all mini-C AST nodes."""

    loc: Location

    def children(self) -> Iterator["Node"]:
        """Yield child nodes in syntactic order."""
        for name in getattr(self, "__dataclass_fields__", {}):
            value = getattr(self, name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()


# -- expressions ---------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions (has an inferred type after resolution)."""

    loc: Location = field(default_factory=Location, kw_only=True)
    ctype: Optional[CType] = field(default=None, kw_only=True)


@dataclass
class Identifier(Expr):
    """A variable or function name occurrence."""

    name: str
    # Filled in by symbol resolution: the declaration this use refers to.
    decl: Optional["VarDecl"] = field(default=None, kw_only=True, repr=False, compare=False)

    def children(self) -> Iterator["Node"]:
        # The ``decl`` back-reference is metadata, not a syntactic child;
        # excluding it keeps ``walk()`` a pure syntax-tree traversal.
        return iter(())


@dataclass
class IntLiteral(Expr):
    """An integer constant (decimal or hex in the source)."""

    value: int
    suffix: str = ""  # "", "u", "l", "ul"


@dataclass
class CharLiteral(Expr):
    """A character constant such as ``'a'``; value is its integer code."""

    value: int
    text: str = ""


@dataclass
class StringLiteral(Expr):
    """A string literal (only meaningful as a printf format argument)."""

    value: str


@dataclass
class Unary(Expr):
    """Unary operators: ``- + ! ~ * & ++x --x x++ x--``.

    ``op`` is one of ``-``, ``+``, ``!``, ``~``, ``*``, ``&``, ``++``, ``--``;
    ``postfix`` distinguishes ``x++`` from ``++x``.
    """

    op: str
    operand: Expr
    postfix: bool = False


@dataclass
class Binary(Expr):
    """Binary operators (arithmetic, bitwise, shifts, comparisons, && and ||)."""

    op: str
    left: Expr
    right: Expr


@dataclass
class Assignment(Expr):
    """Assignment expressions ``lhs op rhs`` where op is = += -= ... >>=."""

    op: str
    target: Expr
    value: Expr


@dataclass
class Conditional(Expr):
    """The ternary conditional ``cond ? then : other``."""

    condition: Expr
    then_expr: Expr
    else_expr: Expr


@dataclass
class Call(Expr):
    """A function call.  ``printf`` is the only builtin."""

    callee: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """Array subscript ``base[index]``."""

    base: Expr
    index: Expr


@dataclass
class Cast(Expr):
    """An explicit cast ``(type) expr``."""

    target_type: CType
    operand: Expr


# -- declarations and statements -------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""

    loc: Location = field(default_factory=Location, kw_only=True)


@dataclass
class VarDecl(Stmt):
    """A variable declaration (global, local, or function parameter)."""

    name: str
    var_type: CType
    init: Optional[Expr] = None
    is_global: bool = False
    is_param: bool = False
    init_list: Optional[list[Expr]] = None  # array initializers {1, 2, 3}
    # Filled by symbol resolution: id of the scope declaring this variable.
    scope_id: int = field(default=-1, kw_only=True, compare=False)


@dataclass
class DeclStmt(Stmt):
    """A declaration statement possibly declaring several variables."""

    decls: list[VarDecl] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for its side effects."""

    expr: Expr


@dataclass
class Empty(Stmt):
    """The empty statement ``;``."""


@dataclass
class Block(Stmt):
    """A compound statement ``{ ... }`` introducing a new scope."""

    items: list[Stmt] = field(default_factory=list)
    scope_id: int = field(default=-1, kw_only=True, compare=False)


@dataclass
class If(Stmt):
    condition: Expr
    then_branch: Stmt
    else_branch: Optional[Stmt] = None


@dataclass
class While(Stmt):
    condition: Expr
    body: Stmt


@dataclass
class DoWhile(Stmt):
    body: Stmt
    condition: Expr


@dataclass
class For(Stmt):
    """``for (init; cond; step) body``; any of the three headers may be None.

    ``init`` is either an ExprStmt or a DeclStmt (C99-style declaration).
    """

    init: Optional[Stmt]
    condition: Optional[Expr]
    step: Optional[Expr]
    body: Stmt
    scope_id: int = field(default=-1, kw_only=True, compare=False)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Goto(Stmt):
    label: str


@dataclass
class Label(Stmt):
    """``name: stmt``."""

    name: str
    statement: Stmt


@dataclass
class FunctionDef(Node):
    """A function definition."""

    name: str
    return_type: CType
    params: list[VarDecl] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    loc: Location = field(default_factory=Location, kw_only=True)
    scope_id: int = field(default=-1, kw_only=True, compare=False)


@dataclass
class TranslationUnit(Node):
    """A whole source file: global declarations and function definitions."""

    decls: list[Node] = field(default_factory=list)  # DeclStmt | FunctionDef
    loc: Location = field(default_factory=Location, kw_only=True)

    def functions(self) -> list[FunctionDef]:
        return [decl for decl in self.decls if isinstance(decl, FunctionDef)]

    def globals(self) -> list[VarDecl]:
        found: list[VarDecl] = []
        for decl in self.decls:
            if isinstance(decl, DeclStmt):
                found.extend(decl.decls)
        return found

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions():
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")


ASSIGNMENT_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")
BINARY_OPS = (
    "||", "&&", "|", "^", "&", "==", "!=", "<", "<=", ">", ">=", "<<", ">>",
    "+", "-", "*", "/", "%",
)
UNARY_OPS = ("-", "+", "!", "~", "*", "&", "++", "--")


__all__ = [
    "ASSIGNMENT_OPS",
    "Assignment",
    "BINARY_OPS",
    "Binary",
    "Block",
    "Break",
    "Call",
    "Cast",
    "CharLiteral",
    "Conditional",
    "Continue",
    "DeclStmt",
    "DoWhile",
    "Empty",
    "Expr",
    "ExprStmt",
    "For",
    "FunctionDef",
    "Goto",
    "Identifier",
    "If",
    "Index",
    "IntLiteral",
    "Label",
    "Location",
    "Node",
    "Return",
    "Stmt",
    "StringLiteral",
    "TranslationUnit",
    "UNARY_OPS",
    "Unary",
    "VarDecl",
    "While",
]
