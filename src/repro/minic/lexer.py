"""Tokenizer for the mini-C subset.

Handles identifiers, integer constants (decimal, hex, octal, with ``u``/``l``
suffixes), character and string literals (with the common escapes), all the
operators and punctuation the parser needs, plus ``//`` and ``/* */``
comments and preprocessor-style lines (``#...``), which are skipped -- the
GCC test-suite seeds we mirror occasionally carry ``#include`` lines that a
skeleton extractor can safely ignore.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minic.errors import MiniCSyntaxError

KEYWORDS = {
    "int",
    "char",
    "long",
    "unsigned",
    "signed",
    "void",
    "if",
    "else",
    "while",
    "do",
    "for",
    "return",
    "break",
    "continue",
    "goto",
    "static",
    "extern",
    "const",
    "volatile",
    "sizeof",
}

# Longest-match-first operator table.
_OPERATORS = (
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", "(", ")", "{", "}", "[", "]", ".",
)

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
}


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'ident', 'number', 'char', 'string', 'keyword', 'op', 'eof'
    text: str
    line: int
    column: int
    value: int | str | None = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-C source code; the result always ends with an ``eof`` token."""
    tokens: list[Token] = []
    index = 0
    line = 1
    column = 1
    length = len(source)

    def error(message: str) -> MiniCSyntaxError:
        return MiniCSyntaxError(message, line, column)

    def advance(count: int) -> None:
        nonlocal index, column
        index += count
        column += count

    while index < length:
        char = source[index]

        if char == "\n":
            index += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            advance(1)
            continue
        # Preprocessor lines are skipped wholesale.
        if char == "#" and column == 1:
            while index < length and source[index] != "\n":
                index += 1
            continue
        # Comments.
        if source.startswith("//", index):
            while index < length and source[index] != "\n":
                index += 1
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end < 0:
                raise error("unterminated block comment")
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue

        # Numbers.
        if char.isdigit():
            start = index
            if source.startswith(("0x", "0X"), index):
                index += 2
                while index < length and (source[index].isdigit() or source[index].lower() in "abcdef"):
                    index += 1
                value = int(source[start:index], 16)
            else:
                while index < length and source[index].isdigit():
                    index += 1
                text = source[start:index]
                value = int(text, 8) if text.startswith("0") and len(text) > 1 else int(text)
            suffix_start = index
            while index < length and source[index] in "uUlL":
                index += 1
            text = source[start:index]
            suffix = source[suffix_start:index].lower()
            tokens.append(Token("number", text, line, column, value=value))
            column += len(text)
            # Record the suffix through the text; the parser re-derives it.
            _ = suffix
            continue

        # Identifiers and keywords.
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue

        # Character literals.
        if char == "'":
            start_column = column
            index += 1
            column += 1
            if index < length and source[index] == "\\":
                escape = source[index + 1]
                if escape not in _ESCAPES:
                    raise error(f"unsupported escape \\{escape}")
                value = ord(_ESCAPES[escape])
                text = f"'\\{escape}'"
                index += 2
                column += 2
            else:
                value = ord(source[index])
                text = f"'{source[index]}'"
                index += 1
                column += 1
            if index >= length or source[index] != "'":
                raise error("unterminated character literal")
            index += 1
            column += 1
            tokens.append(Token("char", text, line, start_column, value=value))
            continue

        # String literals.
        if char == '"':
            start_column = column
            index += 1
            column += 1
            chars: list[str] = []
            raw: list[str] = ['"']
            while index < length and source[index] != '"':
                if source[index] == "\\":
                    escape = source[index + 1]
                    if escape not in _ESCAPES:
                        raise error(f"unsupported escape \\{escape}")
                    chars.append(_ESCAPES[escape])
                    raw.append(source[index : index + 2])
                    index += 2
                    column += 2
                else:
                    chars.append(source[index])
                    raw.append(source[index])
                    index += 1
                    column += 1
            if index >= length:
                raise error("unterminated string literal")
            raw.append('"')
            index += 1
            column += 1
            tokens.append(Token("string", "".join(raw), line, start_column, value="".join(chars)))
            continue

        # Operators / punctuation.
        for operator in _OPERATORS:
            if source.startswith(operator, index):
                tokens.append(Token("op", operator, line, column))
                advance(len(operator))
                break
        else:
            raise error(f"unexpected character {char!r}")

    tokens.append(Token("eof", "", line, column))
    return tokens


__all__ = ["KEYWORDS", "Token", "tokenize"]
