"""Type representation for the mini-C subset.

Supported types:

* integer types: ``char``, ``int``, ``long``, ``unsigned`` (= unsigned int),
  ``unsigned char``, ``unsigned long`` -- each with a bit width and
  signedness, two's-complement representation;
* pointer types ``T *``;
* array types ``T name[N]`` (fixed, compile-time size);
* ``void`` for function return types only.

Types are value objects; ``str(type)`` renders the C spelling, and the
spelling doubles as the hole "type" string used by skeleton extraction so
that SPE only fills holes with same-typed variables.
"""

from __future__ import annotations

from dataclasses import dataclass


class CType:
    """Base class for mini-C types."""

    def spelling(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.spelling()

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)


@dataclass(frozen=True)
class VoidType(CType):
    """The ``void`` type (function returns only)."""

    def spelling(self) -> str:
        return "void"


@dataclass(frozen=True)
class IntType(CType):
    """An integer type with a fixed bit width and signedness."""

    name: str
    bits: int
    signed: bool

    def spelling(self) -> str:
        return self.name

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into this type's representable range (two's complement)."""
        # Hot path of both executors; written with plain shifts instead of
        # the min/max properties so one call does no extra attribute work.
        bits = self.bits
        value &= (1 << bits) - 1
        if self.signed and value >= 1 << (bits - 1):
            value -= 1 << bits
        return value

    def in_range(self, value: int) -> bool:
        if self.signed:
            half = 1 << (self.bits - 1)
            return -half <= value < half
        return 0 <= value < 1 << self.bits


@dataclass(frozen=True)
class PointerType(CType):
    """A pointer to ``base``."""

    base: CType

    def spelling(self) -> str:
        return f"{self.base.spelling()} *"


@dataclass(frozen=True)
class ArrayType(CType):
    """A fixed-size array of ``base``."""

    base: CType
    size: int

    def spelling(self) -> str:
        return f"{self.base.spelling()} [{self.size}]"


VOID = VoidType()
CHAR = IntType("char", 8, True)
UCHAR = IntType("unsigned char", 8, False)
INT = IntType("int", 32, True)
UINT = IntType("unsigned", 32, False)
LONG = IntType("long", 64, True)
ULONG = IntType("unsigned long", 64, False)

_BASE_TYPES = {
    "void": VOID,
    "char": CHAR,
    "unsigned char": UCHAR,
    "int": INT,
    "unsigned": UINT,
    "unsigned int": UINT,
    "long": LONG,
    "long int": LONG,
    "unsigned long": ULONG,
    "unsigned long int": ULONG,
}


def type_from_name(name: str) -> CType:
    """Look up a base type by its C spelling (``"int"``, ``"unsigned long"``, ...)."""
    normalized = " ".join(name.split())
    try:
        return _BASE_TYPES[normalized]
    except KeyError:
        raise ValueError(f"unknown type name {name!r}") from None


def integer_promote(type_: CType) -> CType:
    """C integer promotion: types narrower than int are promoted to int."""
    if isinstance(type_, IntType) and type_.bits < INT.bits:
        return INT
    return type_


def usual_arithmetic_conversion(left: CType, right: CType) -> CType:
    """The C "usual arithmetic conversions" restricted to our integer types."""
    left = integer_promote(left)
    right = integer_promote(right)
    if not isinstance(left, IntType) or not isinstance(right, IntType):
        # Pointer arithmetic is handled separately by the type checker.
        return left
    if left == right:
        return left
    # Rank by bit width, then prefer unsigned on ties (as C does).
    if left.bits != right.bits:
        return left if left.bits > right.bits else right
    return left if not left.signed else right


__all__ = [
    "ArrayType",
    "CHAR",
    "CType",
    "INT",
    "IntType",
    "LONG",
    "PointerType",
    "UCHAR",
    "UINT",
    "ULONG",
    "VOID",
    "VoidType",
    "integer_promote",
    "type_from_name",
    "usual_arithmetic_conversion",
]
