"""Reference interpreter for mini-C with undefined-behaviour detection.

This plays the role of CompCert's reference interpreter in the paper's
methodology (Section 5.4): enumerated variants are first executed here; only
variants that are free of undefined behaviour are eligible for wrong-code
differential comparison, and the interpreter's observable behaviour (stdout +
exit code) is the ground truth the compilers under test are compared against.

Detected undefined behaviours:

* reads of uninitialized scalars, array elements or heap cells;
* signed integer overflow in arithmetic and in ``++``/``--``;
* division or remainder by zero;
* shift counts that are negative or not smaller than the operand width;
* out-of-bounds array indexing and pointer dereference (including one-past-
  the-end dereference), null-pointer dereference;
* dereferencing a pointer to a variable whose lifetime ended;
* using the return value of a non-void function that fell off its end.

Non-termination is bounded by a step budget and reported as ``TIMEOUT``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.minic import ast
from repro.minic.ctypes import (
    ArrayType,
    CType,
    INT,
    IntType,
    LONG,
    PointerType,
    UINT,
)
from repro.minic.errors import MiniCRuntimeError
from repro.minic.parser import parse
from repro.minic.symbols import resolve


class ExecutionStatus(enum.Enum):
    """Outcome classification of one interpreted execution."""

    OK = "ok"
    UNDEFINED = "undefined-behaviour"
    TIMEOUT = "timeout"
    ERROR = "runtime-error"


@dataclass(frozen=True)
class ExecutionResult:
    """Observable behaviour of one program execution."""

    status: ExecutionStatus
    exit_code: int | None = None
    stdout: str = ""
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status is ExecutionStatus.OK

    def observable(self) -> tuple[int | None, str]:
        """The pair compilers must agree on for UB-free programs."""
        return (self.exit_code, self.stdout)


class UndefinedBehaviour(Exception):
    """Raised internally when UB is detected; converted to an ExecutionResult."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _Timeout(Exception):
    pass


class _ExitProgram(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


class _ReturnSignal(Exception):
    def __init__(self, value: "Value | None") -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _GotoSignal(Exception):
    def __init__(self, label: str) -> None:
        self.label = label


# -- runtime values -----------------------------------------------------------


@dataclass
class Block:
    """A contiguous memory object (one scalar, or one array)."""

    id: int
    name: str
    elem_type: CType
    cells: list["int | Pointer | None"]
    alive: bool = True

    @property
    def size(self) -> int:
        return len(self.cells)


@dataclass(frozen=True)
class Pointer:
    """A pointer value: a block plus an element offset."""

    block_id: int
    offset: int

    @staticmethod
    def null() -> "Pointer":
        return Pointer(-1, 0)

    @property
    def is_null(self) -> bool:
        return self.block_id == -1


@dataclass
class Value:
    """A typed runtime value (integer or pointer)."""

    ctype: CType
    payload: "int | Pointer"

    def as_int(self) -> int:
        if isinstance(self.payload, Pointer):
            raise UndefinedBehaviour("pointer used where an integer is required")
        return self.payload

    def truthy(self) -> bool:
        if isinstance(self.payload, Pointer):
            return not self.payload.is_null
        return self.payload != 0


# -- lvalues -------------------------------------------------------------------


@dataclass
class LValue:
    """A memory location: a block and an offset, plus the stored element type."""

    block: Block
    offset: int
    ctype: CType


class Interpreter:
    """AST-walking evaluator for mini-C translation units."""

    def __init__(self, max_steps: int = 200_000, max_call_depth: int = 200) -> None:
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        self._steps = 0
        self._blocks: dict[int, Block] = {}
        self._next_block = 0
        self._globals: dict[str, Block] = {}
        self._stdout: list[str] = []
        self._unit: ast.TranslationUnit | None = None
        self._functions: dict[str, ast.FunctionDef] = {}
        self._call_depth = 0
        # Identity set of every statement node that was executed at least
        # once; the EMI-style mutation baseline uses it to find dead regions.
        self.executed_statements: set[int] = set()

    # -- public API -----------------------------------------------------------

    def run(self, unit: ast.TranslationUnit, entry: str = "main") -> ExecutionResult:
        """Execute ``entry`` (default ``main``) and return the observable result."""
        self._unit = unit
        self._functions = {
            fn.name: fn for fn in unit.functions() if fn.body.items or fn.body.loc.line != 0
        }
        try:
            self._initialize_globals(unit)
            if entry not in self._functions:
                return ExecutionResult(
                    ExecutionStatus.ERROR, detail=f"no function named {entry!r}"
                )
            value = self._call_function(self._functions[entry], [])
            exit_code = 0
            if value is not None and isinstance(value.payload, int):
                exit_code = value.payload & 0xFF
            return ExecutionResult(ExecutionStatus.OK, exit_code=exit_code, stdout=self.stdout)
        except UndefinedBehaviour as ub:
            return ExecutionResult(
                ExecutionStatus.UNDEFINED, stdout=self.stdout, detail=ub.reason
            )
        except _ExitProgram as stop:
            return ExecutionResult(
                ExecutionStatus.OK, exit_code=stop.code & 0xFF, stdout=self.stdout
            )
        except _Timeout:
            return ExecutionResult(ExecutionStatus.TIMEOUT, stdout=self.stdout, detail="step budget exhausted")
        except (MiniCRuntimeError, RecursionError) as error:
            return ExecutionResult(ExecutionStatus.ERROR, stdout=self.stdout, detail=str(error))

    @property
    def stdout(self) -> str:
        return "".join(self._stdout)

    # -- memory ---------------------------------------------------------------

    def _new_block(self, name: str, elem_type: CType, size: int, initialized: bool) -> Block:
        block = Block(
            id=self._next_block,
            name=name,
            elem_type=elem_type,
            cells=[0 if initialized else None] * size,
        )
        self._blocks[block.id] = block
        self._next_block += 1
        return block

    def _block(self, pointer: Pointer) -> Block:
        if pointer.is_null:
            raise UndefinedBehaviour("null pointer dereference")
        block = self._blocks.get(pointer.block_id)
        if block is None or not block.alive:
            raise UndefinedBehaviour("dereference of pointer to dead object")
        return block

    # -- globals --------------------------------------------------------------

    def _initialize_globals(self, unit: ast.TranslationUnit) -> None:
        for decl in unit.globals():
            self._declare_variable(decl, self._globals, is_global=True)

    def _declare_variable(
        self, decl: ast.VarDecl, environment: dict[str, Block], is_global: bool
    ) -> None:
        var_type = decl.var_type
        if isinstance(var_type, ArrayType):
            block = self._new_block(decl.name, var_type.base, var_type.size, initialized=is_global)
            if decl.init_list is not None:
                for index, item in enumerate(decl.init_list):
                    if index >= var_type.size:
                        raise UndefinedBehaviour("too many array initializers")
                    block.cells[index] = self._coerce(self._eval(item, environment), var_type.base)
                for index in range(len(decl.init_list), var_type.size):
                    block.cells[index] = 0
            elif not is_global and decl.init_list is None:
                # Local arrays without initializers stay uninitialized.
                if not is_global:
                    block.cells = [None] * var_type.size
        else:
            block = self._new_block(decl.name, var_type, 1, initialized=is_global)
            if decl.init is not None:
                value = self._eval(decl.init, environment)
                block.cells[0] = self._coerce(value, var_type)
            elif not is_global:
                block.cells[0] = None
        environment[decl.name] = block

    # -- function calls --------------------------------------------------------

    def _call_function(self, function: ast.FunctionDef, args: list[Value]) -> Value | None:
        self._call_depth += 1
        if self._call_depth > self.max_call_depth:
            self._call_depth -= 1
            raise MiniCRuntimeError("call depth limit exceeded")
        if len(args) != len(function.params):
            self._call_depth -= 1
            raise MiniCRuntimeError(
                f"call of {function.name!r} with {len(args)} arguments; expected {len(function.params)}"
            )
        frame: dict[str, Block] = {}
        for param, arg in zip(function.params, args):
            block = self._new_block(param.name, param.var_type, 1, initialized=True)
            block.cells[0] = self._coerce(arg, param.var_type)
            frame[param.name] = block
        local_blocks: list[Block] = list(frame.values())
        try:
            try:
                self._exec_block_items(function.body.items, frame, local_blocks)
            except _GotoSignal as signal:
                self._run_with_goto(function, frame, local_blocks, signal.label)
            result: Value | None = None
        except _ReturnSignal as signal:
            result = signal.value
        finally:
            for block in local_blocks:
                block.alive = False
            self._call_depth -= 1
        if result is None and not function.return_type.is_void:
            # Falling off the end of a non-void function: the *use* of the
            # value is UB, represented by an "uninitialized" marker value.
            return Value(function.return_type, _MISSING_RETURN)
        return result

    def _run_with_goto(
        self,
        function: ast.FunctionDef,
        frame: dict[str, Block],
        local_blocks: list[Block],
        label: str,
    ) -> None:
        """Re-enter the function body at ``label`` (loops until no more gotos)."""
        remaining_jumps = 1000
        while True:
            remaining_jumps -= 1
            if remaining_jumps <= 0:
                raise _Timeout()
            try:
                self._exec_block_items(function.body.items, frame, local_blocks, resume_label=label)
                return
            except _GotoSignal as signal:
                label = signal.label

    # -- statements ------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise _Timeout()

    def _exec_block_items(
        self,
        items: list[ast.Stmt],
        environment: dict[str, Block],
        local_blocks: list[Block],
        resume_label: str | None = None,
    ) -> None:
        index = 0
        if resume_label is not None:
            index = self._find_resume_index(items, resume_label)
        while index < len(items):
            statement = items[index]
            if resume_label is not None and index == self._find_resume_index(items, resume_label):
                self._exec_stmt(statement, environment, local_blocks, resume_label=resume_label)
                resume_label = None
            else:
                self._exec_stmt(statement, environment, local_blocks)
            index += 1

    def _find_resume_index(self, items: list[ast.Stmt], label: str) -> int:
        for index, statement in enumerate(items):
            if _contains_label(statement, label):
                return index
        raise MiniCRuntimeError(f"goto to unknown label {label!r}")

    def _exec_stmt(
        self,
        stmt: ast.Stmt,
        environment: dict[str, Block],
        local_blocks: list[Block],
        resume_label: str | None = None,
    ) -> None:
        self._tick()
        self.executed_statements.add(id(stmt))

        if isinstance(stmt, ast.Block):
            scope_env = dict(environment)
            self._exec_block_items(stmt.items, scope_env, local_blocks, resume_label)
            return
        if isinstance(stmt, ast.DeclStmt):
            if resume_label is None:
                for decl in stmt.decls:
                    self._declare_variable(decl, environment, is_global=False)
                    local_blocks.append(environment[decl.name])
            return
        if isinstance(stmt, ast.ExprStmt):
            if resume_label is None:
                self._eval(stmt.expr, environment)
            return
        if isinstance(stmt, ast.Empty):
            return
        if isinstance(stmt, ast.Label):
            if resume_label is not None and stmt.name == resume_label:
                resume_label = None
            self._exec_stmt(stmt.statement, environment, local_blocks, resume_label)
            return
        if isinstance(stmt, ast.If):
            if resume_label is not None:
                branch = (
                    stmt.then_branch
                    if _contains_label(stmt.then_branch, resume_label)
                    else stmt.else_branch
                )
                if branch is not None:
                    self._exec_stmt(branch, environment, local_blocks, resume_label)
                return
            if self._eval(stmt.condition, environment).truthy():
                self._exec_stmt(stmt.then_branch, environment, local_blocks)
            elif stmt.else_branch is not None:
                self._exec_stmt(stmt.else_branch, environment, local_blocks)
            return
        if isinstance(stmt, ast.While):
            first = True
            while True:
                self._tick()
                if resume_label is not None and first:
                    # Jump into the body, then continue iterating normally.
                    pass
                elif not self._eval(stmt.condition, environment).truthy():
                    break
                try:
                    self._exec_stmt(
                        stmt.body, environment, local_blocks, resume_label if first else None
                    )
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                first = False
            return
        if isinstance(stmt, ast.DoWhile):
            first = True
            while True:
                self._tick()
                try:
                    self._exec_stmt(
                        stmt.body, environment, local_blocks, resume_label if first else None
                    )
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                first = False
                if not self._eval(stmt.condition, environment).truthy():
                    break
            return
        if isinstance(stmt, ast.For):
            scope_env = dict(environment)
            entering_via_goto = resume_label is not None
            if stmt.init is not None and not entering_via_goto:
                self._exec_stmt(stmt.init, scope_env, local_blocks)
            first = True
            while True:
                self._tick()
                if not (first and entering_via_goto):
                    if stmt.condition is not None and not self._eval(
                        stmt.condition, scope_env
                    ).truthy():
                        break
                try:
                    self._exec_stmt(
                        stmt.body, scope_env, local_blocks, resume_label if first else None
                    )
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                first = False
                if stmt.step is not None:
                    self._eval(stmt.step, scope_env)
            return
        if isinstance(stmt, ast.Return):
            if resume_label is not None:
                return
            if stmt.value is None:
                raise _ReturnSignal(None)
            raise _ReturnSignal(self._eval(stmt.value, environment))
        if isinstance(stmt, ast.Break):
            if resume_label is None:
                raise _BreakSignal()
            return
        if isinstance(stmt, ast.Continue):
            if resume_label is None:
                raise _ContinueSignal()
            return
        if isinstance(stmt, ast.Goto):
            if resume_label is None:
                raise _GotoSignal(stmt.label)
            return
        raise MiniCRuntimeError(f"cannot execute statement {stmt!r}")

    # -- expressions -------------------------------------------------------------

    def _eval(self, expr: ast.Expr, environment: dict[str, Block]) -> Value:
        self._tick()

        if isinstance(expr, ast.IntLiteral):
            ctype = LONG if "l" in expr.suffix else (UINT if "u" in expr.suffix else INT)
            return Value(ctype, ctype.wrap(expr.value) if isinstance(ctype, IntType) else expr.value)
        if isinstance(expr, ast.CharLiteral):
            return Value(INT, expr.value)
        if isinstance(expr, ast.StringLiteral):
            # Only meaningful as printf formats; modelled as an opaque pointer.
            return Value(PointerType(INT), Pointer.null())
        if isinstance(expr, ast.Identifier):
            lvalue = self._lvalue(expr, environment)
            if isinstance(lvalue.ctype, ArrayType):
                # Arrays decay to a pointer to their first element.
                return Value(PointerType(lvalue.ctype.base), Pointer(lvalue.block.id, 0))
            return self._load(lvalue)
        if isinstance(expr, ast.Index):
            lvalue = self._lvalue(expr, environment)
            return self._load(lvalue)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr, environment)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr, environment)
        if isinstance(expr, ast.Assignment):
            return self._eval_assignment(expr, environment)
        if isinstance(expr, ast.Conditional):
            if self._eval(expr.condition, environment).truthy():
                return self._eval(expr.then_expr, environment)
            return self._eval(expr.else_expr, environment)
        if isinstance(expr, ast.Cast):
            value = self._eval(expr.operand, environment)
            return self._coerce_value(value, expr.target_type)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, environment)
        raise MiniCRuntimeError(f"cannot evaluate expression {expr!r}")

    def _eval_unary(self, expr: ast.Unary, environment: dict[str, Block]) -> Value:
        if expr.op == "&":
            lvalue = self._lvalue(expr.operand, environment)
            return Value(PointerType(lvalue.ctype), Pointer(lvalue.block.id, lvalue.offset))
        if expr.op == "*":
            pointer_value = self._eval(expr.operand, environment)
            if not isinstance(pointer_value.payload, Pointer):
                raise UndefinedBehaviour("dereference of a non-pointer value")
            block = self._block(pointer_value.payload)
            offset = pointer_value.payload.offset
            target = (
                pointer_value.ctype.base
                if isinstance(pointer_value.ctype, PointerType)
                else block.elem_type
            )
            return self._load(LValue(block, offset, target))
        if expr.op in ("++", "--"):
            lvalue = self._lvalue(expr.operand, environment)
            old = self._load(lvalue)
            delta = 1 if expr.op == "++" else -1
            if isinstance(old.payload, Pointer):
                new_payload: int | Pointer = Pointer(old.payload.block_id, old.payload.offset + delta)
                new = Value(old.ctype, new_payload)
            else:
                new = self._arith_int(old.ctype, old.payload, delta, "+")
            self._store(lvalue, new)
            return old if expr.postfix else new
        operand = self._eval(expr.operand, environment)
        if expr.op == "-":
            return self._arith_int(operand.ctype, 0, self._int_of(operand), "-")
        if expr.op == "+":
            return Value(operand.ctype, self._int_of(operand))
        if expr.op == "!":
            return Value(INT, 0 if operand.truthy() else 1)
        if expr.op == "~":
            ctype = operand.ctype if isinstance(operand.ctype, IntType) else INT
            return Value(ctype, ctype.wrap(~self._int_of(operand)))
        raise MiniCRuntimeError(f"unsupported unary operator {expr.op!r}")

    def _eval_binary(self, expr: ast.Binary, environment: dict[str, Block]) -> Value:
        op = expr.op
        if op == "&&":
            if not self._eval(expr.left, environment).truthy():
                return Value(INT, 0)
            return Value(INT, 1 if self._eval(expr.right, environment).truthy() else 0)
        if op == "||":
            if self._eval(expr.left, environment).truthy():
                return Value(INT, 1)
            return Value(INT, 1 if self._eval(expr.right, environment).truthy() else 0)
        if op == ",":
            self._eval(expr.left, environment)
            return self._eval(expr.right, environment)

        left = self._eval(expr.left, environment)
        right = self._eval(expr.right, environment)

        # Pointer comparisons and pointer arithmetic.
        if isinstance(left.payload, Pointer) or isinstance(right.payload, Pointer):
            return self._pointer_binary(op, left, right)

        if op in ("==", "!=", "<", "<=", ">", ">="):
            left_int = self._int_of(left)
            right_int = self._int_of(right)
            outcome = {
                "==": left_int == right_int,
                "!=": left_int != right_int,
                "<": left_int < right_int,
                "<=": left_int <= right_int,
                ">": left_int > right_int,
                ">=": left_int >= right_int,
            }[op]
            return Value(INT, 1 if outcome else 0)

        result_type = _arithmetic_result_type(left.ctype, right.ctype)
        return self._arith_int(result_type, self._int_of(left), self._int_of(right), op)

    def _pointer_binary(self, op: str, left: Value, right: Value) -> Value:
        if op in ("==", "!="):
            equal = left.payload == right.payload
            return Value(INT, int(equal) if op == "==" else int(not equal))
        if op in ("+", "-") and isinstance(left.payload, Pointer) and isinstance(right.payload, int):
            delta = right.payload if op == "+" else -right.payload
            return Value(left.ctype, Pointer(left.payload.block_id, left.payload.offset + delta))
        if op == "+" and isinstance(right.payload, Pointer) and isinstance(left.payload, int):
            return Value(right.ctype, Pointer(right.payload.block_id, right.payload.offset + left.payload))
        if op == "-" and isinstance(left.payload, Pointer) and isinstance(right.payload, Pointer):
            if left.payload.block_id != right.payload.block_id:
                raise UndefinedBehaviour("subtraction of pointers into different objects")
            return Value(LONG, left.payload.offset - right.payload.offset)
        if op in ("<", "<=", ">", ">=") and isinstance(left.payload, Pointer) and isinstance(right.payload, Pointer):
            if left.payload.block_id != right.payload.block_id:
                raise UndefinedBehaviour("relational comparison of pointers into different objects")
            outcome = {
                "<": left.payload.offset < right.payload.offset,
                "<=": left.payload.offset <= right.payload.offset,
                ">": left.payload.offset > right.payload.offset,
                ">=": left.payload.offset >= right.payload.offset,
            }[op]
            return Value(INT, int(outcome))
        raise UndefinedBehaviour(f"unsupported pointer operation {op!r}")

    def _eval_assignment(self, expr: ast.Assignment, environment: dict[str, Block]) -> Value:
        lvalue = self._lvalue(expr.target, environment)
        value = self._eval(expr.value, environment)
        if expr.op != "=":
            current = self._load(lvalue)
            operator = expr.op[:-1]
            if isinstance(current.payload, Pointer):
                if operator not in ("+", "-"):
                    raise UndefinedBehaviour("invalid compound assignment on a pointer")
                delta = self._int_of(value) if operator == "+" else -self._int_of(value)
                value = Value(current.ctype, Pointer(current.payload.block_id, current.payload.offset + delta))
            else:
                result_type = (
                    current.ctype if isinstance(current.ctype, IntType) else INT
                )
                value = self._arith_int(result_type, self._int_of(current), self._int_of(value), operator)
        stored = self._coerce(value, lvalue.ctype)
        lvalue.block.cells[lvalue.offset] = stored
        return Value(lvalue.ctype, stored)

    def _eval_call(self, expr: ast.Call, environment: dict[str, Block]) -> Value:
        if expr.callee == "printf":
            return self._builtin_printf(expr, environment)
        if expr.callee in ("abort", "__builtin_abort"):
            raise _ExitProgram(134)
        if expr.callee == "exit":
            code = self._int_of(self._eval(expr.args[0], environment)) if expr.args else 0
            raise _ExitProgram(code)
        if expr.callee == "putchar":
            value = self._int_of(self._eval(expr.args[0], environment)) if expr.args else 0
            self._stdout.append(chr(value & 0xFF))
            return Value(INT, value)
        function = self._functions.get(expr.callee)
        if function is None:
            raise MiniCRuntimeError(f"call of undefined function {expr.callee!r}")
        args = [self._eval(arg, environment) for arg in expr.args]
        result = self._call_function(function, args)
        if result is None:
            return Value(INT, 0)
        return result

    def _builtin_printf(self, expr: ast.Call, environment: dict[str, Block]) -> Value:
        if not expr.args or not isinstance(expr.args[0], ast.StringLiteral):
            raise MiniCRuntimeError("printf requires a string-literal format")
        format_string = expr.args[0].value
        values = [self._eval(arg, environment) for arg in expr.args[1:]]
        output: list[str] = []
        value_index = 0
        position = 0
        while position < len(format_string):
            char = format_string[position]
            if char != "%":
                output.append(char)
                position += 1
                continue
            specifier = ""
            position += 1
            while position < len(format_string) and format_string[position] in "ldux%c":
                specifier += format_string[position]
                position += 1
                if specifier[-1] in "duxc%":
                    break
            if specifier == "%":
                output.append("%")
                continue
            if value_index >= len(values):
                raise UndefinedBehaviour("printf: not enough arguments for format")
            value = values[value_index]
            value_index += 1
            integer = self._int_of(value)
            if specifier.endswith("d"):
                output.append(str(integer))
            elif specifier.endswith("u"):
                bits = value.ctype.bits if isinstance(value.ctype, IntType) else 32
                output.append(str(integer % (1 << bits)))
            elif specifier.endswith("x"):
                bits = value.ctype.bits if isinstance(value.ctype, IntType) else 32
                output.append(format(integer % (1 << bits), "x"))
            elif specifier.endswith("c"):
                output.append(chr(integer & 0xFF))
            else:
                output.append(str(integer))
        self._stdout.append("".join(output))
        return Value(INT, len(output))

    # -- lvalues / loads / stores --------------------------------------------------

    def _lvalue(self, expr: ast.Expr, environment: dict[str, Block]) -> LValue:
        if isinstance(expr, ast.Identifier):
            block = environment.get(expr.name) or self._globals.get(expr.name)
            if block is None:
                raise MiniCRuntimeError(f"unknown variable {expr.name!r}")
            declared = expr.decl.var_type if expr.decl is not None else block.elem_type
            return LValue(block, 0, declared)
        if isinstance(expr, ast.Index):
            base = self._eval(expr.base, environment)
            index = self._int_of(self._eval(expr.index, environment))
            if not isinstance(base.payload, Pointer):
                raise UndefinedBehaviour("indexing a non-pointer value")
            pointer = Pointer(base.payload.block_id, base.payload.offset + index)
            block = self._block(pointer)
            if not (0 <= pointer.offset < block.size):
                raise UndefinedBehaviour(
                    f"out-of-bounds access to {block.name!r} at offset {pointer.offset}"
                )
            element = base.ctype.base if isinstance(base.ctype, PointerType) else block.elem_type
            return LValue(block, pointer.offset, element)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer_value = self._eval(expr.operand, environment)
            if not isinstance(pointer_value.payload, Pointer):
                raise UndefinedBehaviour("dereference of a non-pointer value")
            block = self._block(pointer_value.payload)
            offset = pointer_value.payload.offset
            if not (0 <= offset < block.size):
                raise UndefinedBehaviour(
                    f"out-of-bounds dereference of pointer into {block.name!r}"
                )
            element = (
                pointer_value.ctype.base
                if isinstance(pointer_value.ctype, PointerType)
                else block.elem_type
            )
            return LValue(block, offset, element)
        raise UndefinedBehaviour("assignment target is not an lvalue")

    def _load(self, lvalue: LValue) -> Value:
        if not (0 <= lvalue.offset < lvalue.block.size):
            raise UndefinedBehaviour(f"out-of-bounds read of {lvalue.block.name!r}")
        cell = lvalue.block.cells[lvalue.offset]
        if cell is None:
            raise UndefinedBehaviour(f"read of uninitialized value {lvalue.block.name!r}")
        if cell is _MISSING_RETURN:
            raise UndefinedBehaviour("use of the value of a function that did not return one")
        return Value(lvalue.ctype, cell)

    def _store(self, lvalue: LValue, value: Value) -> None:
        if not (0 <= lvalue.offset < lvalue.block.size):
            raise UndefinedBehaviour(f"out-of-bounds write to {lvalue.block.name!r}")
        lvalue.block.cells[lvalue.offset] = self._coerce(value, lvalue.ctype)

    # -- arithmetic helpers -----------------------------------------------------------

    def _int_of(self, value: Value) -> int:
        if isinstance(value.payload, Pointer):
            raise UndefinedBehaviour("pointer used in integer arithmetic")
        if value.payload is _MISSING_RETURN:
            raise UndefinedBehaviour("use of the value of a function that did not return one")
        return value.payload

    def _arith_int(self, ctype: CType, left: int, right: int, op: str) -> Value:
        int_type = ctype if isinstance(ctype, IntType) else INT
        if op == "+":
            raw = left + right
        elif op == "-":
            raw = left - right
        elif op == "*":
            raw = left * right
        elif op in ("/", "%"):
            if right == 0:
                raise UndefinedBehaviour("division by zero")
            quotient = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                quotient = -quotient
            remainder = left - quotient * right
            raw = quotient if op == "/" else remainder
            if op == "/" and int_type.signed and left == int_type.min_value and right == -1:
                raise UndefinedBehaviour("signed division overflow")
        elif op in ("<<", ">>"):
            if right < 0 or right >= int_type.bits:
                raise UndefinedBehaviour(f"shift amount {right} out of range for {int_type.name}")
            if op == "<<":
                if int_type.signed and left < 0:
                    raise UndefinedBehaviour("left shift of a negative value")
                raw = left << right
            else:
                raw = left >> right
        elif op == "&":
            raw = self._to_unsigned(left, int_type) & self._to_unsigned(right, int_type)
        elif op == "|":
            raw = self._to_unsigned(left, int_type) | self._to_unsigned(right, int_type)
        elif op == "^":
            raw = self._to_unsigned(left, int_type) ^ self._to_unsigned(right, int_type)
        else:
            raise MiniCRuntimeError(f"unsupported arithmetic operator {op!r}")

        if int_type.signed and op in ("+", "-", "*", "<<") and not int_type.in_range(raw):
            raise UndefinedBehaviour(
                f"signed integer overflow: {left} {op} {right} does not fit in {int_type.name}"
            )
        return Value(int_type, int_type.wrap(raw))

    @staticmethod
    def _to_unsigned(value: int, int_type: IntType) -> int:
        return value & ((1 << int_type.bits) - 1)

    def _coerce(self, value: Value, target: CType) -> "int | Pointer":
        return self._coerce_value(value, target).payload

    def _coerce_value(self, value: Value, target: CType) -> Value:
        if isinstance(target, (PointerType, ArrayType)):
            if isinstance(value.payload, Pointer):
                return Value(target, value.payload)
            if value.payload == 0:
                return Value(target, Pointer.null())
            raise UndefinedBehaviour("conversion of a non-zero integer to a pointer")
        if isinstance(target, IntType):
            if isinstance(value.payload, Pointer):
                raise UndefinedBehaviour("conversion of a pointer to an integer")
            return Value(target, target.wrap(value.payload))
        return value


class _MissingReturn:
    """Sentinel payload for "function fell off its end"; any use is UB."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing-return>"


_MISSING_RETURN = _MissingReturn()


def _arithmetic_result_type(left: CType, right: CType) -> CType:
    from repro.minic.ctypes import usual_arithmetic_conversion

    return usual_arithmetic_conversion(left, right)


def _contains_label(stmt: ast.Node, label: str) -> bool:
    for node in stmt.walk():
        if isinstance(node, ast.Label) and node.name == label:
            return True
    return False


def run_source(source: str, max_steps: int = 200_000) -> ExecutionResult:
    """Parse, resolve and interpret a mini-C program in one call."""
    unit = parse(source)
    resolve(unit)
    return Interpreter(max_steps=max_steps).run(unit)


__all__ = [
    "ExecutionResult",
    "ExecutionStatus",
    "Interpreter",
    "UndefinedBehaviour",
    "run_source",
]
