"""Reference interpreter for mini-C with undefined-behaviour detection.

This plays the role of CompCert's reference interpreter in the paper's
methodology (Section 5.4): enumerated variants are first executed here; only
variants that are free of undefined behaviour are eligible for wrong-code
differential comparison, and the interpreter's observable behaviour (stdout +
exit code) is the ground truth the compilers under test are compared against.

Detected undefined behaviours:

* reads of uninitialized scalars, array elements or heap cells;
* signed integer overflow in arithmetic and in ``++``/``--``;
* division or remainder by zero;
* shift counts that are negative or not smaller than the operand width;
* out-of-bounds array indexing and pointer dereference (including one-past-
  the-end dereference), null-pointer dereference;
* dereferencing a pointer to a variable whose lifetime ended;
* using the return value of a non-void function that fell off its end.

Non-termination is bounded by a step budget and reported as ``TIMEOUT``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.execution import ExecutionResult, ExecutionStatus
from repro.minic import ast
from repro.minic.ctypes import (
    ArrayType,
    CType,
    INT,
    IntType,
    LONG,
    PointerType,
    UINT,
)
from repro.minic.errors import MiniCRuntimeError
from repro.minic.parser import parse
from repro.minic.symbols import resolve


# ExecutionStatus / ExecutionResult live in repro.core.execution (they are
# shared by every frontend's reference interpreter and compiler backend);
# they are re-exported here for backwards compatibility.


class UndefinedBehaviour(Exception):
    """Raised internally when UB is detected; converted to an ExecutionResult."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


class _Timeout(Exception):
    pass


class _ExitProgram(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


class _ReturnSignal(Exception):
    def __init__(self, value: "Value | None") -> None:
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _GotoSignal(Exception):
    def __init__(self, label: str) -> None:
        self.label = label


# -- runtime values -----------------------------------------------------------


@dataclass(slots=True)
class Block:
    """A contiguous memory object (one scalar, or one array)."""

    id: int
    name: str
    elem_type: CType
    cells: list["int | Pointer | None"]
    alive: bool = True

    @property
    def size(self) -> int:
        return len(self.cells)


@dataclass(frozen=True, slots=True)
class Pointer:
    """A pointer value: a block plus an element offset."""

    block_id: int
    offset: int

    @staticmethod
    def null() -> "Pointer":
        return Pointer(-1, 0)

    @property
    def is_null(self) -> bool:
        return self.block_id == -1


@dataclass(slots=True)
class Value:
    """A typed runtime value (integer or pointer)."""

    ctype: CType
    payload: "int | Pointer"

    def as_int(self) -> int:
        if isinstance(self.payload, Pointer):
            raise UndefinedBehaviour("pointer used where an integer is required")
        return self.payload

    def truthy(self) -> bool:
        if isinstance(self.payload, Pointer):
            return not self.payload.is_null
        return self.payload != 0


# -- lvalues -------------------------------------------------------------------


@dataclass(slots=True)
class LValue:
    """A memory location: a block and an offset, plus the stored element type."""

    block: Block
    offset: int
    ctype: CType


class Interpreter:
    """AST-walking evaluator for mini-C translation units.

    Two execution tiers share identical semantics:

    * the *interpretive* tier dispatches per node through the
      ``_STMT_DISPATCH``/``_EXPR_DISPATCH`` tables (and alone handles
      ``goto`` re-entry, which needs resume labels);
    * the *compiled* tier translates each goto-free function body **once**
      into a tree of Python closures specialised per node type and operator
      (literals become pre-built values, operators are selected at compile
      time, scope forks are precomputed).  Compiled bodies are memoised in
      ``compiled`` -- pass the same dict across runs (the campaign passes a
      per-skeleton dict) and the translation is shared by every variant of a
      skeleton, because closures read ``Identifier.name``/``decl`` at
      execution time and therefore follow AST rebinding.
    """

    __slots__ = (
        "max_steps",
        "max_call_depth",
        "_compiled",
        "_steps",
        "_blocks",
        "_next_block",
        "_globals",
        "_stdout",
        "_unit",
        "_functions",
        "_call_depth",
        "executed_statements",
        "_needs_scope",
        "_label_memo",
    )

    def __init__(
        self,
        max_steps: int = 200_000,
        max_call_depth: int = 200,
        compiled: dict | None = None,
    ) -> None:
        self.max_steps = max_steps
        self.max_call_depth = max_call_depth
        # id(FunctionDef) -> list of compiled statement thunks, or None when
        # the function must run interpretively (it contains goto/labels).
        self._compiled = compiled if compiled is not None else {}
        self._steps = 0
        self._blocks: dict[int, Block] = {}
        self._next_block = 0
        self._globals: dict[str, Block] = {}
        self._stdout: list[str] = []
        self._unit: ast.TranslationUnit | None = None
        self._functions: dict[str, ast.FunctionDef] = {}
        self._call_depth = 0
        # Identity set of every statement node that was executed at least
        # once; the EMI-style mutation baseline uses it to find dead regions.
        self.executed_statements: set[int] = set()
        # Per-node memo: does this block/for statement declare variables
        # directly (so entering it must fork the environment dict)?  Keyed by
        # node identity; loops re-enter the same node every iteration, so the
        # answer is computed once instead of copying the environment each time.
        self._needs_scope: dict[int, bool] = {}
        # Memo for the goto-resume machinery: (node id, label) -> does the
        # subtree contain the label?  Re-entering a function at a label scans
        # the same statements repeatedly; without the memo each scan walks
        # whole subtrees.
        self._label_memo: dict[tuple[int, str], bool] = {}

    # -- public API -----------------------------------------------------------

    def run(self, unit: ast.TranslationUnit, entry: str = "main") -> ExecutionResult:
        """Execute ``entry`` (default ``main``) and return the observable result."""
        self._unit = unit
        self._functions = {
            fn.name: fn for fn in unit.functions() if fn.body.items or fn.body.loc.line != 0
        }
        try:
            self._initialize_globals(unit)
            if entry not in self._functions:
                return ExecutionResult(
                    ExecutionStatus.ERROR, detail=f"no function named {entry!r}"
                )
            value = self._call_function(self._functions[entry], [])
            exit_code = 0
            if value is not None and isinstance(value.payload, int):
                exit_code = value.payload & 0xFF
            return ExecutionResult(ExecutionStatus.OK, exit_code=exit_code, stdout=self.stdout)
        except UndefinedBehaviour as ub:
            return ExecutionResult(
                ExecutionStatus.UNDEFINED, stdout=self.stdout, detail=ub.reason
            )
        except _ExitProgram as stop:
            return ExecutionResult(
                ExecutionStatus.OK, exit_code=stop.code & 0xFF, stdout=self.stdout
            )
        except _Timeout:
            return ExecutionResult(ExecutionStatus.TIMEOUT, stdout=self.stdout, detail="step budget exhausted")
        except (MiniCRuntimeError, RecursionError) as error:
            return ExecutionResult(ExecutionStatus.ERROR, stdout=self.stdout, detail=str(error))

    @property
    def stdout(self) -> str:
        return "".join(self._stdout)

    # -- memory ---------------------------------------------------------------

    def _new_block(self, name: str, elem_type: CType, size: int, initialized: bool) -> Block:
        block = Block(
            id=self._next_block,
            name=name,
            elem_type=elem_type,
            cells=[0 if initialized else None] * size,
        )
        self._blocks[block.id] = block
        self._next_block += 1
        return block

    def _block(self, pointer: Pointer) -> Block:
        if pointer.is_null:
            raise UndefinedBehaviour("null pointer dereference")
        block = self._blocks.get(pointer.block_id)
        if block is None or not block.alive:
            raise UndefinedBehaviour("dereference of pointer to dead object")
        return block

    # -- globals --------------------------------------------------------------

    def _initialize_globals(self, unit: ast.TranslationUnit) -> None:
        for decl in unit.globals():
            self._declare_variable(decl, self._globals, is_global=True)

    def _declare_variable(
        self, decl: ast.VarDecl, environment: dict[str, Block], is_global: bool
    ) -> None:
        var_type = decl.var_type
        if isinstance(var_type, ArrayType):
            block = self._new_block(decl.name, var_type.base, var_type.size, initialized=is_global)
            if decl.init_list is not None:
                for index, item in enumerate(decl.init_list):
                    if index >= var_type.size:
                        raise UndefinedBehaviour("too many array initializers")
                    block.cells[index] = self._coerce(self._eval(item, environment), var_type.base)
                for index in range(len(decl.init_list), var_type.size):
                    block.cells[index] = 0
            elif not is_global and decl.init_list is None:
                # Local arrays without initializers stay uninitialized.
                if not is_global:
                    block.cells = [None] * var_type.size
        else:
            block = self._new_block(decl.name, var_type, 1, initialized=is_global)
            if decl.init is not None:
                value = self._eval(decl.init, environment)
                block.cells[0] = self._coerce(value, var_type)
            elif not is_global:
                block.cells[0] = None
        environment[decl.name] = block

    # -- function calls --------------------------------------------------------

    def _call_function(self, function: ast.FunctionDef, args: list[Value]) -> Value | None:
        self._call_depth += 1
        if self._call_depth > self.max_call_depth:
            self._call_depth -= 1
            raise MiniCRuntimeError("call depth limit exceeded")
        if len(args) != len(function.params):
            self._call_depth -= 1
            raise MiniCRuntimeError(
                f"call of {function.name!r} with {len(args)} arguments; expected {len(function.params)}"
            )
        frame: dict[str, Block] = {}
        for param, arg in zip(function.params, args):
            block = self._new_block(param.name, param.var_type, 1, initialized=True)
            block.cells[0] = self._coerce(arg, param.var_type)
            frame[param.name] = block
        local_blocks: list[Block] = list(frame.values())
        key = id(function)
        thunks = self._compiled.get(key, _UNCOMPILED)
        if thunks is _UNCOMPILED:
            thunks = compile_function(function)
            self._compiled[key] = thunks
        try:
            if thunks is not None:
                # Compiled tier (goto-free functions): straight-line closures.
                for thunk in thunks:
                    thunk(self, frame, local_blocks)
            else:
                try:
                    self._exec_block_items(function.body.items, frame, local_blocks)
                except _GotoSignal as signal:
                    self._run_with_goto(function, frame, local_blocks, signal.label)
            result: Value | None = None
        except _ReturnSignal as signal:
            result = signal.value
        finally:
            for block in local_blocks:
                block.alive = False
            self._call_depth -= 1
        if result is None and not function.return_type.is_void:
            # Falling off the end of a non-void function: the *use* of the
            # value is UB, represented by an "uninitialized" marker value.
            return Value(function.return_type, _MISSING_RETURN)
        return result

    def _run_with_goto(
        self,
        function: ast.FunctionDef,
        frame: dict[str, Block],
        local_blocks: list[Block],
        label: str,
    ) -> None:
        """Re-enter the function body at ``label`` (loops until no more gotos)."""
        remaining_jumps = 1000
        while True:
            remaining_jumps -= 1
            if remaining_jumps <= 0:
                raise _Timeout()
            try:
                self._exec_block_items(function.body.items, frame, local_blocks, resume_label=label)
                return
            except _GotoSignal as signal:
                label = signal.label

    # -- statements ------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise _Timeout()

    def _exec_block_items(
        self,
        items: list[ast.Stmt],
        environment: dict[str, Block],
        local_blocks: list[Block],
        resume_label: str | None = None,
    ) -> None:
        index = 0
        if resume_label is not None:
            index = self._find_resume_index(items, resume_label)
        while index < len(items):
            statement = items[index]
            if resume_label is not None and index == self._find_resume_index(items, resume_label):
                self._exec_stmt(statement, environment, local_blocks, resume_label=resume_label)
                resume_label = None
            else:
                self._exec_stmt(statement, environment, local_blocks)
            index += 1

    def _contains_label(self, stmt: ast.Node, label: str) -> bool:
        key = (id(stmt), label)
        found = self._label_memo.get(key)
        if found is None:
            found = self._label_memo[key] = _contains_label(stmt, label)
        return found

    def _find_resume_index(self, items: list[ast.Stmt], label: str) -> int:
        for index, statement in enumerate(items):
            if self._contains_label(statement, label):
                return index
        raise MiniCRuntimeError(f"goto to unknown label {label!r}")

    def _exec_stmt(
        self,
        stmt: ast.Stmt,
        environment: dict[str, Block],
        local_blocks: list[Block],
        resume_label: str | None = None,
    ) -> None:
        # _tick() inlined: this is one of the two hottest call sites.
        self._steps += 1
        if self._steps > self.max_steps:
            raise _Timeout()
        self.executed_statements.add(id(stmt))
        handler = _STMT_DISPATCH.get(stmt.__class__)
        if handler is None:
            raise MiniCRuntimeError(f"cannot execute statement {stmt!r}")
        handler(self, stmt, environment, local_blocks, resume_label)

    # Statement handlers, one per node type, selected through _STMT_DISPATCH
    # (built once at module load) instead of an isinstance chain.

    def _exec_block(self, stmt, environment, local_blocks, resume_label) -> None:
        needs_scope = self._needs_scope.get(id(stmt))
        if needs_scope is None:
            needs_scope = any(_declares_into_scope(item) for item in stmt.items)
            self._needs_scope[id(stmt)] = needs_scope
        # Fork the environment only when the block actually declares
        # variables; plain control-flow blocks (the common case inside loops)
        # share the caller's dict.
        scope_env = dict(environment) if needs_scope else environment
        self._exec_block_items(stmt.items, scope_env, local_blocks, resume_label)

    def _exec_decl_stmt(self, stmt, environment, local_blocks, resume_label) -> None:
        if resume_label is None:
            for decl in stmt.decls:
                self._declare_variable(decl, environment, is_global=False)
                local_blocks.append(environment[decl.name])

    def _exec_expr_stmt(self, stmt, environment, local_blocks, resume_label) -> None:
        if resume_label is None:
            self._eval(stmt.expr, environment)

    def _exec_empty(self, stmt, environment, local_blocks, resume_label) -> None:
        return

    def _exec_label(self, stmt, environment, local_blocks, resume_label) -> None:
        if resume_label is not None and stmt.name == resume_label:
            resume_label = None
        self._exec_stmt(stmt.statement, environment, local_blocks, resume_label)

    def _exec_if(self, stmt, environment, local_blocks, resume_label) -> None:
        if resume_label is not None:
            branch = (
                stmt.then_branch
                if self._contains_label(stmt.then_branch, resume_label)
                else stmt.else_branch
            )
            if branch is not None:
                self._exec_stmt(branch, environment, local_blocks, resume_label)
            return
        if self._eval(stmt.condition, environment).truthy():
            self._exec_stmt(stmt.then_branch, environment, local_blocks)
        elif stmt.else_branch is not None:
            self._exec_stmt(stmt.else_branch, environment, local_blocks)

    def _exec_while(self, stmt, environment, local_blocks, resume_label) -> None:
        first = True
        while True:
            self._tick()
            if resume_label is not None and first:
                # Jump into the body, then continue iterating normally.
                pass
            elif not self._eval(stmt.condition, environment).truthy():
                break
            try:
                self._exec_stmt(
                    stmt.body, environment, local_blocks, resume_label if first else None
                )
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            first = False

    def _exec_do_while(self, stmt, environment, local_blocks, resume_label) -> None:
        first = True
        while True:
            self._tick()
            try:
                self._exec_stmt(
                    stmt.body, environment, local_blocks, resume_label if first else None
                )
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            first = False
            if not self._eval(stmt.condition, environment).truthy():
                break

    def _exec_for(self, stmt, environment, local_blocks, resume_label) -> None:
        needs_scope = self._needs_scope.get(id(stmt))
        if needs_scope is None:
            needs_scope = _declares_into_scope(stmt.init) or _declares_into_scope(stmt.body)
            self._needs_scope[id(stmt)] = needs_scope
        scope_env = dict(environment) if needs_scope else environment
        entering_via_goto = resume_label is not None
        if stmt.init is not None and not entering_via_goto:
            self._exec_stmt(stmt.init, scope_env, local_blocks)
        first = True
        while True:
            self._tick()
            if not (first and entering_via_goto):
                if stmt.condition is not None and not self._eval(
                    stmt.condition, scope_env
                ).truthy():
                    break
            try:
                self._exec_stmt(
                    stmt.body, scope_env, local_blocks, resume_label if first else None
                )
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            first = False
            if stmt.step is not None:
                self._eval(stmt.step, scope_env)

    def _exec_return(self, stmt, environment, local_blocks, resume_label) -> None:
        if resume_label is not None:
            return
        if stmt.value is None:
            raise _ReturnSignal(None)
        raise _ReturnSignal(self._eval(stmt.value, environment))

    def _exec_break(self, stmt, environment, local_blocks, resume_label) -> None:
        if resume_label is None:
            raise _BreakSignal()

    def _exec_continue(self, stmt, environment, local_blocks, resume_label) -> None:
        if resume_label is None:
            raise _ContinueSignal()

    def _exec_goto(self, stmt, environment, local_blocks, resume_label) -> None:
        if resume_label is None:
            raise _GotoSignal(stmt.label)

    # -- expressions -------------------------------------------------------------

    def _eval(self, expr: ast.Expr, environment: dict[str, Block]) -> Value:
        # _tick() inlined: this is the hottest call site in the interpreter.
        self._steps += 1
        if self._steps > self.max_steps:
            raise _Timeout()
        handler = _EXPR_DISPATCH.get(expr.__class__)
        if handler is None:
            raise MiniCRuntimeError(f"cannot evaluate expression {expr!r}")
        return handler(self, expr, environment)

    # Expression handlers, one per node type, selected through _EXPR_DISPATCH.

    def _eval_int_literal(self, expr: ast.IntLiteral, environment) -> Value:
        ctype = LONG if "l" in expr.suffix else (UINT if "u" in expr.suffix else INT)
        return Value(ctype, ctype.wrap(expr.value) if isinstance(ctype, IntType) else expr.value)

    def _eval_char_literal(self, expr: ast.CharLiteral, environment) -> Value:
        return Value(INT, expr.value)

    def _eval_string_literal(self, expr: ast.StringLiteral, environment) -> Value:
        # Only meaningful as printf formats; modelled as an opaque pointer.
        return Value(PointerType(INT), Pointer.null())

    def _eval_identifier(self, expr: ast.Identifier, environment) -> Value:
        # Inlined _lvalue + _load for the by-far hottest expression kind: a
        # scalar variable read is one dict lookup, one cell read, one Value.
        block = environment.get(expr.name) or self._globals.get(expr.name)
        if block is None:
            raise MiniCRuntimeError(f"unknown variable {expr.name!r}")
        declared = expr.decl.var_type if expr.decl is not None else block.elem_type
        if isinstance(declared, ArrayType):
            # Arrays decay to a pointer to their first element.
            return Value(PointerType(declared.base), Pointer(block.id, 0))
        if not block.cells:
            raise UndefinedBehaviour(f"out-of-bounds read of {block.name!r}")
        cell = block.cells[0]
        if cell is None:
            raise UndefinedBehaviour(f"read of uninitialized value {block.name!r}")
        if cell is _MISSING_RETURN:
            raise UndefinedBehaviour("use of the value of a function that did not return one")
        return Value(declared, cell)

    def _eval_index(self, expr: ast.Index, environment) -> Value:
        return self._load(self._lvalue(expr, environment))

    def _eval_conditional(self, expr: ast.Conditional, environment) -> Value:
        if self._eval(expr.condition, environment).truthy():
            return self._eval(expr.then_expr, environment)
        return self._eval(expr.else_expr, environment)

    def _eval_cast(self, expr: ast.Cast, environment) -> Value:
        value = self._eval(expr.operand, environment)
        return self._coerce_value(value, expr.target_type)

    def _eval_unary(self, expr: ast.Unary, environment: dict[str, Block]) -> Value:
        if expr.op == "&":
            lvalue = self._lvalue(expr.operand, environment)
            return Value(PointerType(lvalue.ctype), Pointer(lvalue.block.id, lvalue.offset))
        if expr.op == "*":
            pointer_value = self._eval(expr.operand, environment)
            if not isinstance(pointer_value.payload, Pointer):
                raise UndefinedBehaviour("dereference of a non-pointer value")
            block = self._block(pointer_value.payload)
            offset = pointer_value.payload.offset
            target = (
                pointer_value.ctype.base
                if isinstance(pointer_value.ctype, PointerType)
                else block.elem_type
            )
            return self._load(LValue(block, offset, target))
        if expr.op in ("++", "--"):
            lvalue = self._lvalue(expr.operand, environment)
            old = self._load(lvalue)
            delta = 1 if expr.op == "++" else -1
            if isinstance(old.payload, Pointer):
                new_payload: int | Pointer = Pointer(old.payload.block_id, old.payload.offset + delta)
                new = Value(old.ctype, new_payload)
            else:
                new = self._arith_int(old.ctype, old.payload, delta, "+")
            self._store(lvalue, new)
            return old if expr.postfix else new
        operand = self._eval(expr.operand, environment)
        if expr.op == "-":
            return self._arith_int(operand.ctype, 0, self._int_of(operand), "-")
        if expr.op == "+":
            return Value(operand.ctype, self._int_of(operand))
        if expr.op == "!":
            return Value(INT, 0 if operand.truthy() else 1)
        if expr.op == "~":
            ctype = operand.ctype if isinstance(operand.ctype, IntType) else INT
            return Value(ctype, ctype.wrap(~self._int_of(operand)))
        raise MiniCRuntimeError(f"unsupported unary operator {expr.op!r}")

    def _eval_binary(self, expr: ast.Binary, environment: dict[str, Block]) -> Value:
        op = expr.op
        if op == "&&":
            if not self._eval(expr.left, environment).truthy():
                return Value(INT, 0)
            return Value(INT, 1 if self._eval(expr.right, environment).truthy() else 0)
        if op == "||":
            if self._eval(expr.left, environment).truthy():
                return Value(INT, 1)
            return Value(INT, 1 if self._eval(expr.right, environment).truthy() else 0)
        if op == ",":
            self._eval(expr.left, environment)
            return self._eval(expr.right, environment)

        left = self._eval(expr.left, environment)
        right = self._eval(expr.right, environment)

        # Pointer comparisons and pointer arithmetic.
        if isinstance(left.payload, Pointer) or isinstance(right.payload, Pointer):
            return self._pointer_binary(op, left, right)

        compare = _COMPARISONS.get(op)
        if compare is not None:
            return Value(INT, 1 if compare(self._int_of(left), self._int_of(right)) else 0)

        result_type = _arithmetic_result_type(left.ctype, right.ctype)
        return self._arith_int(result_type, self._int_of(left), self._int_of(right), op)

    def _pointer_binary(self, op: str, left: Value, right: Value) -> Value:
        if op in ("==", "!="):
            equal = left.payload == right.payload
            return Value(INT, int(equal) if op == "==" else int(not equal))
        if op in ("+", "-") and isinstance(left.payload, Pointer) and isinstance(right.payload, int):
            delta = right.payload if op == "+" else -right.payload
            return Value(left.ctype, Pointer(left.payload.block_id, left.payload.offset + delta))
        if op == "+" and isinstance(right.payload, Pointer) and isinstance(left.payload, int):
            return Value(right.ctype, Pointer(right.payload.block_id, right.payload.offset + left.payload))
        if op == "-" and isinstance(left.payload, Pointer) and isinstance(right.payload, Pointer):
            if left.payload.block_id != right.payload.block_id:
                raise UndefinedBehaviour("subtraction of pointers into different objects")
            return Value(LONG, left.payload.offset - right.payload.offset)
        if op in ("<", "<=", ">", ">=") and isinstance(left.payload, Pointer) and isinstance(right.payload, Pointer):
            if left.payload.block_id != right.payload.block_id:
                raise UndefinedBehaviour("relational comparison of pointers into different objects")
            outcome = _COMPARISONS[op](left.payload.offset, right.payload.offset)
            return Value(INT, int(outcome))
        raise UndefinedBehaviour(f"unsupported pointer operation {op!r}")

    def _eval_assignment(self, expr: ast.Assignment, environment: dict[str, Block]) -> Value:
        lvalue = self._lvalue(expr.target, environment)
        value = self._eval(expr.value, environment)
        if expr.op != "=":
            current = self._load(lvalue)
            operator = expr.op[:-1]
            if isinstance(current.payload, Pointer):
                if operator not in ("+", "-"):
                    raise UndefinedBehaviour("invalid compound assignment on a pointer")
                delta = self._int_of(value) if operator == "+" else -self._int_of(value)
                value = Value(current.ctype, Pointer(current.payload.block_id, current.payload.offset + delta))
            else:
                result_type = (
                    current.ctype if isinstance(current.ctype, IntType) else INT
                )
                value = self._arith_int(result_type, self._int_of(current), self._int_of(value), operator)
        stored = self._coerce(value, lvalue.ctype)
        lvalue.block.cells[lvalue.offset] = stored
        return Value(lvalue.ctype, stored)

    def _eval_call(self, expr: ast.Call, environment: dict[str, Block]) -> Value:
        if expr.callee == "printf":
            return self._builtin_printf(expr, environment)
        if expr.callee in ("abort", "__builtin_abort"):
            raise _ExitProgram(134)
        if expr.callee == "exit":
            code = self._int_of(self._eval(expr.args[0], environment)) if expr.args else 0
            raise _ExitProgram(code)
        if expr.callee == "putchar":
            value = self._int_of(self._eval(expr.args[0], environment)) if expr.args else 0
            self._stdout.append(chr(value & 0xFF))
            return Value(INT, value)
        function = self._functions.get(expr.callee)
        if function is None:
            raise MiniCRuntimeError(f"call of undefined function {expr.callee!r}")
        args = [self._eval(arg, environment) for arg in expr.args]
        result = self._call_function(function, args)
        if result is None:
            return Value(INT, 0)
        return result

    def _builtin_printf(self, expr: ast.Call, environment: dict[str, Block]) -> Value:
        if not expr.args or not isinstance(expr.args[0], ast.StringLiteral):
            raise MiniCRuntimeError("printf requires a string-literal format")
        format_string = expr.args[0].value
        values = [self._eval(arg, environment) for arg in expr.args[1:]]
        output: list[str] = []
        value_index = 0
        position = 0
        while position < len(format_string):
            char = format_string[position]
            if char != "%":
                output.append(char)
                position += 1
                continue
            specifier = ""
            position += 1
            while position < len(format_string) and format_string[position] in "ldux%c":
                specifier += format_string[position]
                position += 1
                if specifier[-1] in "duxc%":
                    break
            if specifier == "%":
                output.append("%")
                continue
            if value_index >= len(values):
                raise UndefinedBehaviour("printf: not enough arguments for format")
            value = values[value_index]
            value_index += 1
            integer = self._int_of(value)
            if specifier.endswith("d"):
                output.append(str(integer))
            elif specifier.endswith("u"):
                bits = value.ctype.bits if isinstance(value.ctype, IntType) else 32
                output.append(str(integer % (1 << bits)))
            elif specifier.endswith("x"):
                bits = value.ctype.bits if isinstance(value.ctype, IntType) else 32
                output.append(format(integer % (1 << bits), "x"))
            elif specifier.endswith("c"):
                output.append(chr(integer & 0xFF))
            else:
                output.append(str(integer))
        self._stdout.append("".join(output))
        return Value(INT, len(output))

    # -- lvalues / loads / stores --------------------------------------------------

    def _lvalue(self, expr: ast.Expr, environment: dict[str, Block]) -> LValue:
        if isinstance(expr, ast.Identifier):
            block = environment.get(expr.name) or self._globals.get(expr.name)
            if block is None:
                raise MiniCRuntimeError(f"unknown variable {expr.name!r}")
            declared = expr.decl.var_type if expr.decl is not None else block.elem_type
            return LValue(block, 0, declared)
        if isinstance(expr, ast.Index):
            base = self._eval(expr.base, environment)
            index = self._int_of(self._eval(expr.index, environment))
            if not isinstance(base.payload, Pointer):
                raise UndefinedBehaviour("indexing a non-pointer value")
            pointer = Pointer(base.payload.block_id, base.payload.offset + index)
            block = self._block(pointer)
            if not (0 <= pointer.offset < block.size):
                raise UndefinedBehaviour(
                    f"out-of-bounds access to {block.name!r} at offset {pointer.offset}"
                )
            element = base.ctype.base if isinstance(base.ctype, PointerType) else block.elem_type
            return LValue(block, pointer.offset, element)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer_value = self._eval(expr.operand, environment)
            if not isinstance(pointer_value.payload, Pointer):
                raise UndefinedBehaviour("dereference of a non-pointer value")
            block = self._block(pointer_value.payload)
            offset = pointer_value.payload.offset
            if not (0 <= offset < block.size):
                raise UndefinedBehaviour(
                    f"out-of-bounds dereference of pointer into {block.name!r}"
                )
            element = (
                pointer_value.ctype.base
                if isinstance(pointer_value.ctype, PointerType)
                else block.elem_type
            )
            return LValue(block, offset, element)
        raise UndefinedBehaviour("assignment target is not an lvalue")

    def _load(self, lvalue: LValue) -> Value:
        if not (0 <= lvalue.offset < lvalue.block.size):
            raise UndefinedBehaviour(f"out-of-bounds read of {lvalue.block.name!r}")
        cell = lvalue.block.cells[lvalue.offset]
        if cell is None:
            raise UndefinedBehaviour(f"read of uninitialized value {lvalue.block.name!r}")
        if cell is _MISSING_RETURN:
            raise UndefinedBehaviour("use of the value of a function that did not return one")
        return Value(lvalue.ctype, cell)

    def _store(self, lvalue: LValue, value: Value) -> None:
        if not (0 <= lvalue.offset < lvalue.block.size):
            raise UndefinedBehaviour(f"out-of-bounds write to {lvalue.block.name!r}")
        lvalue.block.cells[lvalue.offset] = self._coerce(value, lvalue.ctype)

    # -- arithmetic helpers -----------------------------------------------------------

    def _int_of(self, value: Value) -> int:
        if isinstance(value.payload, Pointer):
            raise UndefinedBehaviour("pointer used in integer arithmetic")
        if value.payload is _MISSING_RETURN:
            raise UndefinedBehaviour("use of the value of a function that did not return one")
        return value.payload

    def _arith_int(self, ctype: CType, left: int, right: int, op: str) -> Value:
        int_type = ctype if isinstance(ctype, IntType) else INT
        if op == "+":
            raw = left + right
        elif op == "-":
            raw = left - right
        elif op == "*":
            raw = left * right
        elif op in ("/", "%"):
            if right == 0:
                raise UndefinedBehaviour("division by zero")
            quotient = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                quotient = -quotient
            remainder = left - quotient * right
            raw = quotient if op == "/" else remainder
            if op == "/" and int_type.signed and left == int_type.min_value and right == -1:
                raise UndefinedBehaviour("signed division overflow")
        elif op in ("<<", ">>"):
            if right < 0 or right >= int_type.bits:
                raise UndefinedBehaviour(f"shift amount {right} out of range for {int_type.name}")
            if op == "<<":
                if int_type.signed and left < 0:
                    raise UndefinedBehaviour("left shift of a negative value")
                raw = left << right
            else:
                raw = left >> right
        elif op == "&":
            raw = self._to_unsigned(left, int_type) & self._to_unsigned(right, int_type)
        elif op == "|":
            raw = self._to_unsigned(left, int_type) | self._to_unsigned(right, int_type)
        elif op == "^":
            raw = self._to_unsigned(left, int_type) ^ self._to_unsigned(right, int_type)
        else:
            raise MiniCRuntimeError(f"unsupported arithmetic operator {op!r}")

        if int_type.signed and op in ("+", "-", "*", "<<") and not int_type.in_range(raw):
            raise UndefinedBehaviour(
                f"signed integer overflow: {left} {op} {right} does not fit in {int_type.name}"
            )
        return Value(int_type, int_type.wrap(raw))

    @staticmethod
    def _to_unsigned(value: int, int_type: IntType) -> int:
        return value & ((1 << int_type.bits) - 1)

    def _coerce(self, value: Value, target: CType) -> "int | Pointer":
        return self._coerce_value(value, target).payload

    def _coerce_value(self, value: Value, target: CType) -> Value:
        if isinstance(target, (PointerType, ArrayType)):
            if isinstance(value.payload, Pointer):
                return Value(target, value.payload)
            if value.payload == 0:
                return Value(target, Pointer.null())
            raise UndefinedBehaviour("conversion of a non-zero integer to a pointer")
        if isinstance(target, IntType):
            if isinstance(value.payload, Pointer):
                raise UndefinedBehaviour("conversion of a pointer to an integer")
            return Value(target, target.wrap(value.payload))
        return value


# Per-node-type dispatch tables.  Built once at module load from the handler
# methods above; ``type(node)`` lookup replaces the former ~25-arm isinstance
# chains on the two hottest paths of the reference interpreter.
_STMT_DISPATCH = {
    ast.Block: Interpreter._exec_block,
    ast.DeclStmt: Interpreter._exec_decl_stmt,
    ast.ExprStmt: Interpreter._exec_expr_stmt,
    ast.Empty: Interpreter._exec_empty,
    ast.Label: Interpreter._exec_label,
    ast.If: Interpreter._exec_if,
    ast.While: Interpreter._exec_while,
    ast.DoWhile: Interpreter._exec_do_while,
    ast.For: Interpreter._exec_for,
    ast.Return: Interpreter._exec_return,
    ast.Break: Interpreter._exec_break,
    ast.Continue: Interpreter._exec_continue,
    ast.Goto: Interpreter._exec_goto,
}

_EXPR_DISPATCH = {
    ast.IntLiteral: Interpreter._eval_int_literal,
    ast.CharLiteral: Interpreter._eval_char_literal,
    ast.StringLiteral: Interpreter._eval_string_literal,
    ast.Identifier: Interpreter._eval_identifier,
    ast.Index: Interpreter._eval_index,
    ast.Unary: Interpreter._eval_unary,
    ast.Binary: Interpreter._eval_binary,
    ast.Assignment: Interpreter._eval_assignment,
    ast.Conditional: Interpreter._eval_conditional,
    ast.Cast: Interpreter._eval_cast,
    ast.Call: Interpreter._eval_call,
}

_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# -- the compiled tier: AST -> closure trees ------------------------------------------
#
# ``compile_function`` translates a goto-free function body into nested
# closures, one per AST node, with everything that is invariant across
# executions -- node type, operator, literal values, whether a block declares
# variables -- resolved at translation time.  Tick accounting, UB checks and
# messages replicate the interpretive tier exactly (the two tiers are
# differentially tested against each other in the test-suite).  Identifier
# closures read ``node.name``/``node.decl`` at execution time, so one
# translation serves every characteristic vector a skeleton is rebound to.

_UNCOMPILED = object()


class _CannotCompile(Exception):
    """Raised during translation for nodes the compiled tier does not handle."""


def compile_function(function: ast.FunctionDef) -> list | None:
    """Compile a function body to statement thunks; None -> use the interpretive tier."""
    for node in function.body.walk():
        if isinstance(node, (ast.Goto, ast.Label)):
            return None
    try:
        cache: dict[int, object] = {}
        return [_compile_stmt(item, cache) for item in function.body.items]
    except _CannotCompile:
        return None


def _compile_stmt(stmt: ast.Stmt, cache: dict):
    thunk = cache.get(id(stmt))
    if thunk is None:
        compiler = _STMT_COMPILERS.get(stmt.__class__)
        if compiler is None:
            raise _CannotCompile(repr(stmt))
        thunk = compiler(stmt, cache)
        cache[id(stmt)] = thunk
    return thunk


def _compile_expr(expr: ast.Expr, cache: dict):
    thunk = cache.get(id(expr))
    if thunk is None:
        raw = _compile_raw(expr, cache)
        if raw is not None:
            # The whole subtree is raw ``int``: run it unboxed and box only
            # this final result (the raw thunk already did the node's tick).
            def thunk(I, env, _raw=raw):
                return Value(INT, _raw(I, env))

        else:
            compiler = _EXPR_COMPILERS.get(expr.__class__)
            if compiler is None:
                raise _CannotCompile(repr(expr))
            thunk = compiler(expr, cache)
        cache[id(expr)] = thunk
    return thunk


def _compile_condition(expr: ast.Expr, cache: dict):
    """Compile an expression used only for its truth value to a bool thunk."""
    raw = _compile_raw(expr, cache)
    if raw is not None:

        def run_raw(I, env):
            return raw(I, env) != 0

        return run_raw
    thunk = _compile_expr(expr, cache)

    def run(I, env):
        return thunk(I, env).truthy()

    return run


# -- the raw tier: unboxed int expressions ---------------------------------------------
#
# A subtree whose every leaf and operator is plain ``int`` (no suffixes,
# pointers, arrays, casts or calls) evaluates to Python ints flowing directly
# between closures -- no Value boxing at all.  Tick accounting and UB checks
# (with the exact interpretive-tier messages) are inlined per operator with
# the 32-bit signed constants folded in.  ``_compile_raw`` returns None when
# the subtree is not raw; callers then fall back to the boxed closures.

_INT_MIN = -(1 << 31)
_INT_MAX = (1 << 31) - 1


def _compile_raw(expr: ast.Expr, cache: dict):
    key = ("raw", id(expr))
    thunk = cache.get(key)
    if thunk is None:
        compiler = _RAW_COMPILERS.get(expr.__class__)
        thunk = compiler(expr, cache) if compiler is not None else False
        cache[key] = thunk
    return thunk if thunk is not False else None


def _is_plain_int(ctype) -> bool:
    return ctype == INT


def _r_int_literal(expr: ast.IntLiteral, cache):
    if expr.suffix:
        return False
    value = INT.wrap(expr.value)

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        return value

    return run


def _r_char_literal(expr: ast.CharLiteral, cache):
    value = expr.value

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        return value

    return run


def _r_identifier(expr: ast.Identifier, cache):
    if expr.decl is None or not _is_plain_int(expr.decl.var_type):
        return False

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        name = expr.name
        block = env.get(name) or I._globals.get(name)
        if block is None:
            raise MiniCRuntimeError(f"unknown variable {name!r}")
        cells = block.cells
        if not cells:
            raise UndefinedBehaviour(f"out-of-bounds read of {block.name!r}")
        cell = cells[0]
        if type(cell) is int:
            return cell
        if cell is None:
            raise UndefinedBehaviour(f"read of uninitialized value {block.name!r}")
        raise UndefinedBehaviour("use of the value of a function that did not return one")

    return run


def _r_index(expr: ast.Index, cache):
    # ``a[i]`` where ``a`` is statically an int array and ``i`` is raw.  The
    # +2 tick covers the Index node and the base identifier's array-decay
    # evaluation (no observable effect happens between the two ticks).
    base = expr.base
    if base.__class__ is not ast.Identifier or base.decl is None:
        return False
    base_type = base.decl.var_type
    if not (isinstance(base_type, ArrayType) and base_type.base == INT):
        return False
    index_thunk = _compile_raw(expr.index, cache)
    if index_thunk is None:
        return False

    def run(I, env):
        steps = I._steps + 2
        I._steps = steps
        if steps > I.max_steps:
            raise _Timeout()
        name = base.name
        block = env.get(name) or I._globals.get(name)
        if block is None:
            raise MiniCRuntimeError(f"unknown variable {name!r}")
        index = index_thunk(I, env)
        if not block.alive:
            raise UndefinedBehaviour("dereference of pointer to dead object")
        cells = block.cells
        if not 0 <= index < len(cells):
            raise UndefinedBehaviour(
                f"out-of-bounds access to {block.name!r} at offset {index}"
            )
        cell = cells[index]
        if type(cell) is int:
            return cell
        if cell is None:
            raise UndefinedBehaviour(f"read of uninitialized value {block.name!r}")
        raise UndefinedBehaviour("use of the value of a function that did not return one")

    return run


def _r_unary(expr: ast.Unary, cache):
    op = expr.op
    if op in ("&", "*"):
        return False
    if op in ("++", "--"):
        target = expr.operand
        if (
            target.__class__ is not ast.Identifier
            or target.decl is None
            or not _is_plain_int(target.decl.var_type)
        ):
            return False
        delta = 1 if op == "++" else -1
        postfix = expr.postfix

        def run_incr(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            name = target.name
            block = env.get(name) or I._globals.get(name)
            if block is None:
                raise MiniCRuntimeError(f"unknown variable {name!r}")
            cells = block.cells
            if not cells:
                raise UndefinedBehaviour(f"out-of-bounds read of {block.name!r}")
            old = cells[0]
            if type(old) is not int:
                if old is None:
                    raise UndefinedBehaviour(f"read of uninitialized value {block.name!r}")
                raise UndefinedBehaviour(
                    "use of the value of a function that did not return one"
                )
            new = old + delta
            if new < _INT_MIN or new > _INT_MAX:
                raise UndefinedBehaviour(
                    f"signed integer overflow: {old} + {delta} does not fit in int"
                )
            cells[0] = new
            return old if postfix else new

        return run_incr
    operand = _compile_raw(expr.operand, cache)
    if operand is None:
        return False
    if op == "-":

        def run_neg(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            value = operand(I, env)
            raw = -value
            if raw < _INT_MIN or raw > _INT_MAX:
                raise UndefinedBehaviour(
                    f"signed integer overflow: 0 - {value} does not fit in int"
                )
            return raw

        return run_neg
    if op == "+":

        def run_pos(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            return operand(I, env)

        return run_pos
    if op == "!":

        def run_not(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            return 0 if operand(I, env) != 0 else 1

        return run_not
    if op == "~":

        def run_inv(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            return ~operand(I, env)

        return run_inv
    return False


def _make_raw_binary(op: str, left_thunk, right_thunk):
    """One raw closure per operator; UB conditions and messages match _arith_int."""
    if op == "+":

        def run_add(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            left = left_thunk(I, env)
            right = right_thunk(I, env)
            raw = left + right
            if raw < _INT_MIN or raw > _INT_MAX:
                raise UndefinedBehaviour(
                    f"signed integer overflow: {left} + {right} does not fit in int"
                )
            return raw

        return run_add
    if op == "-":

        def run_sub(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            left = left_thunk(I, env)
            right = right_thunk(I, env)
            raw = left - right
            if raw < _INT_MIN or raw > _INT_MAX:
                raise UndefinedBehaviour(
                    f"signed integer overflow: {left} - {right} does not fit in int"
                )
            return raw

        return run_sub
    if op == "*":

        def run_mul(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            left = left_thunk(I, env)
            right = right_thunk(I, env)
            raw = left * right
            if raw < _INT_MIN or raw > _INT_MAX:
                raise UndefinedBehaviour(
                    f"signed integer overflow: {left} * {right} does not fit in int"
                )
            return raw

        return run_mul
    compare = _COMPARISONS.get(op)
    if compare is not None:

        def run_cmp(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            return 1 if compare(left_thunk(I, env), right_thunk(I, env)) else 0

        return run_cmp
    if op in ("/", "%"):
        is_div = op == "/"

        def run_div(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            left = left_thunk(I, env)
            right = right_thunk(I, env)
            if right == 0:
                raise UndefinedBehaviour("division by zero")
            quotient = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                quotient = -quotient
            if is_div:
                if left == _INT_MIN and right == -1:
                    raise UndefinedBehaviour("signed division overflow")
                return quotient
            return left - quotient * right

        return run_div
    if op in ("<<", ">>"):
        is_left = op == "<<"

        def run_shift(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            left = left_thunk(I, env)
            right = right_thunk(I, env)
            if right < 0 or right >= 32:
                raise UndefinedBehaviour(f"shift amount {right} out of range for int")
            if is_left:
                if left < 0:
                    raise UndefinedBehaviour("left shift of a negative value")
                raw = left << right
                if raw > _INT_MAX:
                    raise UndefinedBehaviour(
                        f"signed integer overflow: {left} << {right} does not fit in int"
                    )
                return raw
            return left >> right

        return run_shift
    if op in ("&", "|", "^"):
        import operator as _operator

        bit_op = {"&": _operator.and_, "|": _operator.or_, "^": _operator.xor}[op]

        def run_bits(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            raw = bit_op(left_thunk(I, env) & 0xFFFFFFFF, right_thunk(I, env) & 0xFFFFFFFF)
            return raw - 0x100000000 if raw >= 0x80000000 else raw

        return run_bits
    return None


def _r_binary(expr: ast.Binary, cache):
    op = expr.op
    if op == "&&":
        left_thunk = _compile_raw(expr.left, cache)
        right_thunk = _compile_raw(expr.right, cache)
        if left_thunk is None or right_thunk is None:
            return False

        def run_and(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            if left_thunk(I, env) == 0:
                return 0
            return 1 if right_thunk(I, env) != 0 else 0

        return run_and
    if op == "||":
        left_thunk = _compile_raw(expr.left, cache)
        right_thunk = _compile_raw(expr.right, cache)
        if left_thunk is None or right_thunk is None:
            return False

        def run_or(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            if left_thunk(I, env) != 0:
                return 1
            return 1 if right_thunk(I, env) != 0 else 0

        return run_or
    if op == ",":
        left_thunk = _compile_raw(expr.left, cache)
        right_thunk = _compile_raw(expr.right, cache)
        if left_thunk is None or right_thunk is None:
            return False

        def run_comma(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            left_thunk(I, env)
            return right_thunk(I, env)

        return run_comma
    left_thunk = _compile_raw(expr.left, cache)
    if left_thunk is None:
        return False
    right_thunk = _compile_raw(expr.right, cache)
    if right_thunk is None:
        return False
    thunk = _make_raw_binary(op, left_thunk, right_thunk)
    return thunk if thunk is not None else False


def _r_assignment(expr: ast.Assignment, cache):
    target = expr.target
    if target.__class__ is ast.Index:
        return _r_index_assignment(expr, cache)
    if (
        target.__class__ is not ast.Identifier
        or target.decl is None
        or not _is_plain_int(target.decl.var_type)
    ):
        return False
    value_thunk = _compile_raw(expr.value, cache)
    if value_thunk is None:
        return False
    if expr.op == "=":

        def run_store(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            name = target.name
            block = env.get(name) or I._globals.get(name)
            if block is None:
                raise MiniCRuntimeError(f"unknown variable {name!r}")
            stored = value_thunk(I, env)
            block.cells[0] = stored
            return stored

        return run_store

    operator_ = expr.op[:-1]

    def run_compound(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        name = target.name
        block = env.get(name) or I._globals.get(name)
        if block is None:
            raise MiniCRuntimeError(f"unknown variable {name!r}")
        value = value_thunk(I, env)
        cells = block.cells
        if not cells:
            raise UndefinedBehaviour(f"out-of-bounds read of {block.name!r}")
        current = cells[0]
        if type(current) is not int:
            if current is None:
                raise UndefinedBehaviour(f"read of uninitialized value {block.name!r}")
            raise UndefinedBehaviour("use of the value of a function that did not return one")
        stored = I._arith_int(INT, current, value, operator_).payload
        cells[0] = stored
        return stored

    return run_compound


def _r_index_assignment(expr: ast.Assignment, cache):
    """``a[i] = v`` / ``a[i] op= v`` on a statically-int array, all-raw."""
    target = expr.target
    base = target.base
    if base.__class__ is not ast.Identifier or base.decl is None:
        return False
    base_type = base.decl.var_type
    if not (isinstance(base_type, ArrayType) and base_type.base == INT):
        return False
    index_thunk = _compile_raw(target.index, cache)
    if index_thunk is None:
        return False
    value_thunk = _compile_raw(expr.value, cache)
    if value_thunk is None:
        return False
    simple = expr.op == "="
    operator_ = expr.op[:-1]

    def run(I, env):
        # +2: the Assignment node plus the base identifier's decay eval
        # inside the target lvalue (evaluated before the value, as in the
        # interpretive tier).
        steps = I._steps + 2
        I._steps = steps
        if steps > I.max_steps:
            raise _Timeout()
        name = base.name
        block = env.get(name) or I._globals.get(name)
        if block is None:
            raise MiniCRuntimeError(f"unknown variable {name!r}")
        index = index_thunk(I, env)
        if not block.alive:
            raise UndefinedBehaviour("dereference of pointer to dead object")
        cells = block.cells
        if not 0 <= index < len(cells):
            raise UndefinedBehaviour(
                f"out-of-bounds access to {block.name!r} at offset {index}"
            )
        value = value_thunk(I, env)
        if simple:
            cells[index] = value
            return value
        current = cells[index]
        if type(current) is not int:
            if current is None:
                raise UndefinedBehaviour(f"read of uninitialized value {block.name!r}")
            raise UndefinedBehaviour("use of the value of a function that did not return one")
        stored = I._arith_int(INT, current, value, operator_).payload
        cells[index] = stored
        return stored

    return run


def _r_conditional(expr: ast.Conditional, cache):
    condition_thunk = _compile_raw(expr.condition, cache)
    then_thunk = _compile_raw(expr.then_expr, cache)
    else_thunk = _compile_raw(expr.else_expr, cache)
    if condition_thunk is None or then_thunk is None or else_thunk is None:
        return False

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        if condition_thunk(I, env) != 0:
            return then_thunk(I, env)
        return else_thunk(I, env)

    return run


_RAW_COMPILERS = {
    ast.IntLiteral: _r_int_literal,
    ast.CharLiteral: _r_char_literal,
    ast.Identifier: _r_identifier,
    ast.Unary: _r_unary,
    ast.Binary: _r_binary,
    ast.Assignment: _r_assignment,
    ast.Conditional: _r_conditional,
}


# -- compiled expressions --------------------------------------------------------------


def _c_int_literal(expr: ast.IntLiteral, cache):
    ctype = LONG if "l" in expr.suffix else (UINT if "u" in expr.suffix else INT)
    value = Value(ctype, ctype.wrap(expr.value) if isinstance(ctype, IntType) else expr.value)

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        return value

    return run


def _c_char_literal(expr: ast.CharLiteral, cache):
    value = Value(INT, expr.value)

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        return value

    return run


def _c_string_literal(expr: ast.StringLiteral, cache):
    value = Value(PointerType(INT), Pointer.null())

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        return value

    return run


def _c_identifier(expr: ast.Identifier, cache):
    # A hole's candidate variables all share one type spelling, so whether
    # this occurrence is an array is invariant under rebinding -- decide the
    # decay question at translation time and emit a scalar-only fast closure
    # for the overwhelmingly common scalar case.
    static_type = expr.decl.var_type if expr.decl is not None else None
    if static_type is not None and not isinstance(static_type, ArrayType):

        def run_scalar(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            name = expr.name
            block = env.get(name) or I._globals.get(name)
            if block is None:
                raise MiniCRuntimeError(f"unknown variable {name!r}")
            decl = expr.decl
            declared = decl.var_type if decl is not None else block.elem_type
            cells = block.cells
            if not cells:
                raise UndefinedBehaviour(f"out-of-bounds read of {block.name!r}")
            cell = cells[0]
            if cell is None:
                raise UndefinedBehaviour(f"read of uninitialized value {block.name!r}")
            if cell is _MISSING_RETURN:
                raise UndefinedBehaviour("use of the value of a function that did not return one")
            return Value(declared, cell)

        return run_scalar

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        name = expr.name
        block = env.get(name) or I._globals.get(name)
        if block is None:
            raise MiniCRuntimeError(f"unknown variable {name!r}")
        decl = expr.decl
        declared = decl.var_type if decl is not None else block.elem_type
        if isinstance(declared, ArrayType):
            return Value(PointerType(declared.base), Pointer(block.id, 0))
        cells = block.cells
        if not cells:
            raise UndefinedBehaviour(f"out-of-bounds read of {block.name!r}")
        cell = cells[0]
        if cell is None:
            raise UndefinedBehaviour(f"read of uninitialized value {block.name!r}")
        if cell is _MISSING_RETURN:
            raise UndefinedBehaviour("use of the value of a function that did not return one")
        return Value(declared, cell)

    return run


def _c_index(expr: ast.Index, cache):
    base_thunk = _compile_expr(expr.base, cache)
    index_thunk = _compile_expr(expr.index, cache)

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        base = base_thunk(I, env)
        index = I._int_of(index_thunk(I, env))
        payload = base.payload
        if not isinstance(payload, Pointer):
            raise UndefinedBehaviour("indexing a non-pointer value")
        pointer = Pointer(payload.block_id, payload.offset + index)
        block = I._block(pointer)
        offset = pointer.offset
        if not 0 <= offset < len(block.cells):
            raise UndefinedBehaviour(
                f"out-of-bounds access to {block.name!r} at offset {offset}"
            )
        element = base.ctype.base if isinstance(base.ctype, PointerType) else block.elem_type
        cell = block.cells[offset]
        if cell is None:
            raise UndefinedBehaviour(f"read of uninitialized value {block.name!r}")
        if cell is _MISSING_RETURN:
            raise UndefinedBehaviour("use of the value of a function that did not return one")
        return Value(element, cell)

    return run


def _c_unary(expr: ast.Unary, cache):
    op = expr.op
    if op == "&":
        lvalue_thunk = _compile_lvalue(expr.operand, cache)

        def run_addr(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            lvalue = lvalue_thunk(I, env)
            return Value(PointerType(lvalue.ctype), Pointer(lvalue.block.id, lvalue.offset))

        return run_addr
    if op == "*":
        operand_thunk = _compile_expr(expr.operand, cache)

        def run_deref(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            pointer_value = operand_thunk(I, env)
            payload = pointer_value.payload
            if not isinstance(payload, Pointer):
                raise UndefinedBehaviour("dereference of a non-pointer value")
            block = I._block(payload)
            target = (
                pointer_value.ctype.base
                if isinstance(pointer_value.ctype, PointerType)
                else block.elem_type
            )
            return I._load(LValue(block, payload.offset, target))

        return run_deref
    if op in ("++", "--"):
        lvalue_thunk = _compile_lvalue(expr.operand, cache)
        delta = 1 if op == "++" else -1
        postfix = expr.postfix

        def run_incr(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            lvalue = lvalue_thunk(I, env)
            old = I._load(lvalue)
            if isinstance(old.payload, Pointer):
                new = Value(old.ctype, Pointer(old.payload.block_id, old.payload.offset + delta))
            else:
                new = I._arith_int(old.ctype, old.payload, delta, "+")
            I._store(lvalue, new)
            return old if postfix else new

        return run_incr

    operand_thunk = _compile_expr(expr.operand, cache)
    if op == "-":

        def run_neg(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            operand = operand_thunk(I, env)
            return I._arith_int(operand.ctype, 0, I._int_of(operand), "-")

        return run_neg
    if op == "+":

        def run_pos(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            operand = operand_thunk(I, env)
            return Value(operand.ctype, I._int_of(operand))

        return run_pos
    if op == "!":

        def run_not(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            return Value(INT, 0 if operand_thunk(I, env).truthy() else 1)

        return run_not
    if op == "~":

        def run_inv(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            operand = operand_thunk(I, env)
            ctype = operand.ctype if isinstance(operand.ctype, IntType) else INT
            return Value(ctype, ctype.wrap(~I._int_of(operand)))

        return run_inv
    raise _CannotCompile(f"unary {op!r}")


def _c_binary(expr: ast.Binary, cache):
    op = expr.op
    if op == "&&":
        left_thunk = _compile_expr(expr.left, cache)
        right_thunk = _compile_expr(expr.right, cache)

        def run_and(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            if not left_thunk(I, env).truthy():
                return Value(INT, 0)
            return Value(INT, 1 if right_thunk(I, env).truthy() else 0)

        return run_and
    if op == "||":
        left_thunk = _compile_expr(expr.left, cache)
        right_thunk = _compile_expr(expr.right, cache)

        def run_or(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            if left_thunk(I, env).truthy():
                return Value(INT, 1)
            return Value(INT, 1 if right_thunk(I, env).truthy() else 0)

        return run_or
    if op == ",":
        left_thunk = _compile_expr(expr.left, cache)
        right_thunk = _compile_expr(expr.right, cache)

        def run_comma(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            left_thunk(I, env)
            return right_thunk(I, env)

        return run_comma

    left_thunk = _compile_expr(expr.left, cache)
    right_thunk = _compile_expr(expr.right, cache)
    compare = _COMPARISONS.get(op)
    if compare is not None:

        def run_cmp(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            left = left_thunk(I, env)
            right = right_thunk(I, env)
            lp = left.payload
            rp = right.payload
            if type(lp) is int and type(rp) is int:
                return Value(INT, 1 if compare(lp, rp) else 0)
            if isinstance(lp, Pointer) or isinstance(rp, Pointer):
                return I._pointer_binary(op, left, right)
            return Value(INT, 1 if compare(I._int_of(left), I._int_of(right)) else 0)

        return run_cmp

    # Operand types are almost always identity-stable across evaluations of
    # one node (they come from declarations and literals), so memoise the
    # usual-arithmetic-conversion by identity in the closure cells.
    memo_left = memo_right = memo_type = None

    def run_arith(I, env):
        nonlocal memo_left, memo_right, memo_type
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        left = left_thunk(I, env)
        right = right_thunk(I, env)
        lp = left.payload
        rp = right.payload
        lc = left.ctype
        rc = right.ctype
        if lc is not memo_left or rc is not memo_right:
            memo_left, memo_right = lc, rc
            memo_type = _arithmetic_result_type(lc, rc)
        if type(lp) is int and type(rp) is int:
            return I._arith_int(memo_type, lp, rp, op)
        if isinstance(lp, Pointer) or isinstance(rp, Pointer):
            return I._pointer_binary(op, left, right)
        return I._arith_int(memo_type, I._int_of(left), I._int_of(right), op)

    return run_arith


def _c_assignment(expr: ast.Assignment, cache):
    value_thunk = _compile_expr(expr.value, cache)
    target = expr.target
    if expr.op == "=" and target.__class__ is ast.Identifier:
        # Scalar-store fast path: the by-far hottest assignment shape.
        def run_simple(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            name = target.name
            block = env.get(name) or I._globals.get(name)
            if block is None:
                raise MiniCRuntimeError(f"unknown variable {name!r}")
            decl = target.decl
            declared = decl.var_type if decl is not None else block.elem_type
            value = value_thunk(I, env)
            payload = value.payload
            if type(payload) is int and declared.__class__ is IntType:
                stored = declared.wrap(payload)
            else:
                stored = I._coerce(value, declared)
            block.cells[0] = stored
            return Value(declared, stored)

        return run_simple

    lvalue_thunk = _compile_lvalue(target, cache)
    if expr.op == "=":

        def run_store(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            lvalue = lvalue_thunk(I, env)
            value = value_thunk(I, env)
            stored = I._coerce(value, lvalue.ctype)
            lvalue.block.cells[lvalue.offset] = stored
            return Value(lvalue.ctype, stored)

        return run_store

    operator = expr.op[:-1]

    def run_compound(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        lvalue = lvalue_thunk(I, env)
        value = value_thunk(I, env)
        current = I._load(lvalue)
        if isinstance(current.payload, Pointer):
            if operator not in ("+", "-"):
                raise UndefinedBehaviour("invalid compound assignment on a pointer")
            delta = I._int_of(value) if operator == "+" else -I._int_of(value)
            value = Value(
                current.ctype, Pointer(current.payload.block_id, current.payload.offset + delta)
            )
        else:
            result_type = current.ctype if isinstance(current.ctype, IntType) else INT
            value = I._arith_int(result_type, I._int_of(current), I._int_of(value), operator)
        stored = I._coerce(value, lvalue.ctype)
        lvalue.block.cells[lvalue.offset] = stored
        return Value(lvalue.ctype, stored)

    return run_compound


def _c_conditional(expr: ast.Conditional, cache):
    condition_thunk = _compile_condition(expr.condition, cache)
    then_thunk = _compile_expr(expr.then_expr, cache)
    else_thunk = _compile_expr(expr.else_expr, cache)

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        if condition_thunk(I, env):
            return then_thunk(I, env)
        return else_thunk(I, env)

    return run


def _c_cast(expr: ast.Cast, cache):
    operand_thunk = _compile_expr(expr.operand, cache)
    target_type = expr.target_type

    def run(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        return I._coerce_value(operand_thunk(I, env), target_type)

    return run


def _c_call(expr: ast.Call, cache):
    callee = expr.callee
    if callee == "printf":

        def run_printf(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            return I._builtin_printf(expr, env)

        return run_printf
    if callee in ("abort", "__builtin_abort"):

        def run_abort(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            raise _ExitProgram(134)

        return run_abort
    if callee == "exit":
        arg_thunks = [_compile_expr(arg, cache) for arg in expr.args]

        def run_exit(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            code = I._int_of(arg_thunks[0](I, env)) if arg_thunks else 0
            raise _ExitProgram(code)

        return run_exit
    if callee == "putchar":
        arg_thunks = [_compile_expr(arg, cache) for arg in expr.args]

        def run_putchar(I, env):
            I._steps += 1
            if I._steps > I.max_steps:
                raise _Timeout()
            value = I._int_of(arg_thunks[0](I, env)) if arg_thunks else 0
            I._stdout.append(chr(value & 0xFF))
            return Value(INT, value)

        return run_putchar

    arg_thunks = [_compile_expr(arg, cache) for arg in expr.args]

    def run_call(I, env):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        function = I._functions.get(callee)
        if function is None:
            raise MiniCRuntimeError(f"call of undefined function {callee!r}")
        args = [thunk(I, env) for thunk in arg_thunks]
        result = I._call_function(function, args)
        if result is None:
            return Value(INT, 0)
        return result

    return run_call


_EXPR_COMPILERS = {
    ast.IntLiteral: _c_int_literal,
    ast.CharLiteral: _c_char_literal,
    ast.StringLiteral: _c_string_literal,
    ast.Identifier: _c_identifier,
    ast.Index: _c_index,
    ast.Unary: _c_unary,
    ast.Binary: _c_binary,
    ast.Assignment: _c_assignment,
    ast.Conditional: _c_conditional,
    ast.Cast: _c_cast,
    ast.Call: _c_call,
}


# -- compiled lvalues ------------------------------------------------------------------
# Lvalue thunks mirror Interpreter._lvalue: they tick only for sub-expression
# *evaluations*, never for the lvalue node itself.


def _compile_lvalue(expr: ast.Expr, cache: dict):
    if expr.__class__ is ast.Identifier:

        def run_var(I, env):
            block = env.get(expr.name) or I._globals.get(expr.name)
            if block is None:
                raise MiniCRuntimeError(f"unknown variable {expr.name!r}")
            declared = expr.decl.var_type if expr.decl is not None else block.elem_type
            return LValue(block, 0, declared)

        return run_var
    if expr.__class__ is ast.Index:
        base_thunk = _compile_expr(expr.base, cache)
        index_thunk = _compile_expr(expr.index, cache)

        def run_elem(I, env):
            base = base_thunk(I, env)
            index = I._int_of(index_thunk(I, env))
            if not isinstance(base.payload, Pointer):
                raise UndefinedBehaviour("indexing a non-pointer value")
            pointer = Pointer(base.payload.block_id, base.payload.offset + index)
            block = I._block(pointer)
            if not (0 <= pointer.offset < block.size):
                raise UndefinedBehaviour(
                    f"out-of-bounds access to {block.name!r} at offset {pointer.offset}"
                )
            element = base.ctype.base if isinstance(base.ctype, PointerType) else block.elem_type
            return LValue(block, pointer.offset, element)

        return run_elem
    if expr.__class__ is ast.Unary and expr.op == "*":
        operand_thunk = _compile_expr(expr.operand, cache)

        def run_deref(I, env):
            pointer_value = operand_thunk(I, env)
            if not isinstance(pointer_value.payload, Pointer):
                raise UndefinedBehaviour("dereference of a non-pointer value")
            block = I._block(pointer_value.payload)
            offset = pointer_value.payload.offset
            if not (0 <= offset < block.size):
                raise UndefinedBehaviour(
                    f"out-of-bounds dereference of pointer into {block.name!r}"
                )
            element = (
                pointer_value.ctype.base
                if isinstance(pointer_value.ctype, PointerType)
                else block.elem_type
            )
            return LValue(block, offset, element)

        return run_deref

    def run_invalid(I, env):
        raise UndefinedBehaviour("assignment target is not an lvalue")

    return run_invalid


# -- compiled statements ---------------------------------------------------------------
# Statement thunks take (I, env, local_blocks); control flow uses the same
# signal exceptions as the interpretive tier.  Every thunk ticks once and
# records itself in ``executed_statements``, exactly like _exec_stmt.


def _c_stmt_block(stmt: ast.Block, cache):
    item_thunks = [_compile_stmt(item, cache) for item in stmt.items]
    needs_scope = any(_declares_into_scope(item) for item in stmt.items)
    stmt_id = id(stmt)

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)
        scope_env = dict(env) if needs_scope else env
        for thunk in item_thunks:
            thunk(I, scope_env, local_blocks)

    return run


def _c_stmt_decl(stmt: ast.DeclStmt, cache):
    stmt_id = id(stmt)
    decls = stmt.decls

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)
        for decl in decls:
            I._declare_variable(decl, env, is_global=False)
            local_blocks.append(env[decl.name])

    return run


def _c_stmt_expr(stmt: ast.ExprStmt, cache):
    # The expression's value is discarded, so a raw subtree runs fully
    # unboxed -- for ``x = ...;`` statements not even the result is built.
    expr_thunk = _compile_raw(stmt.expr, cache) or _compile_expr(stmt.expr, cache)
    stmt_id = id(stmt)

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)
        expr_thunk(I, env)

    return run


def _c_stmt_empty(stmt: ast.Empty, cache):
    stmt_id = id(stmt)

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)

    return run


def _c_stmt_if(stmt: ast.If, cache):
    condition_thunk = _compile_condition(stmt.condition, cache)
    then_thunk = _compile_stmt(stmt.then_branch, cache)
    else_thunk = _compile_stmt(stmt.else_branch, cache) if stmt.else_branch is not None else None
    stmt_id = id(stmt)

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)
        if condition_thunk(I, env):
            then_thunk(I, env, local_blocks)
        elif else_thunk is not None:
            else_thunk(I, env, local_blocks)

    return run


def _c_stmt_while(stmt: ast.While, cache):
    condition_thunk = _compile_condition(stmt.condition, cache)
    body_thunk = _compile_stmt(stmt.body, cache)
    stmt_id = id(stmt)

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)
        max_steps = I.max_steps
        while True:
            I._steps += 1
            if I._steps > max_steps:
                raise _Timeout()
            if not condition_thunk(I, env):
                break
            try:
                body_thunk(I, env, local_blocks)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass

    return run


def _c_stmt_do_while(stmt: ast.DoWhile, cache):
    condition_thunk = _compile_condition(stmt.condition, cache)
    body_thunk = _compile_stmt(stmt.body, cache)
    stmt_id = id(stmt)

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)
        max_steps = I.max_steps
        while True:
            I._steps += 1
            if I._steps > max_steps:
                raise _Timeout()
            try:
                body_thunk(I, env, local_blocks)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if not condition_thunk(I, env):
                break

    return run


def _c_stmt_for(stmt: ast.For, cache):
    init_thunk = _compile_stmt(stmt.init, cache) if stmt.init is not None else None
    condition_thunk = _compile_condition(stmt.condition, cache) if stmt.condition is not None else None
    step_thunk = (
        (_compile_raw(stmt.step, cache) or _compile_expr(stmt.step, cache))
        if stmt.step is not None
        else None
    )
    body_thunk = _compile_stmt(stmt.body, cache)
    needs_scope = _declares_into_scope(stmt.init) or _declares_into_scope(stmt.body)
    stmt_id = id(stmt)

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)
        scope_env = dict(env) if needs_scope else env
        if init_thunk is not None:
            init_thunk(I, scope_env, local_blocks)
        max_steps = I.max_steps
        while True:
            I._steps += 1
            if I._steps > max_steps:
                raise _Timeout()
            if condition_thunk is not None and not condition_thunk(I, scope_env):
                break
            try:
                body_thunk(I, scope_env, local_blocks)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if step_thunk is not None:
                step_thunk(I, scope_env)

    return run


def _c_stmt_return(stmt: ast.Return, cache):
    value_thunk = _compile_expr(stmt.value, cache) if stmt.value is not None else None
    stmt_id = id(stmt)

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)
        if value_thunk is None:
            raise _ReturnSignal(None)
        raise _ReturnSignal(value_thunk(I, env))

    return run


def _c_stmt_break(stmt: ast.Break, cache):
    stmt_id = id(stmt)

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)
        raise _BreakSignal()

    return run


def _c_stmt_continue(stmt: ast.Continue, cache):
    stmt_id = id(stmt)

    def run(I, env, local_blocks):
        I._steps += 1
        if I._steps > I.max_steps:
            raise _Timeout()
        I.executed_statements.add(stmt_id)
        raise _ContinueSignal()

    return run


_STMT_COMPILERS = {
    ast.Block: _c_stmt_block,
    ast.DeclStmt: _c_stmt_decl,
    ast.ExprStmt: _c_stmt_expr,
    ast.Empty: _c_stmt_empty,
    ast.If: _c_stmt_if,
    ast.While: _c_stmt_while,
    ast.DoWhile: _c_stmt_do_while,
    ast.For: _c_stmt_for,
    ast.Return: _c_stmt_return,
    ast.Break: _c_stmt_break,
    ast.Continue: _c_stmt_continue,
}


def _declares_into_scope(stmt: ast.Stmt | None) -> bool:
    """Whether executing ``stmt`` can write a declaration into the *caller's*
    environment dict.

    DeclStmts count, including ones reachable as the un-braced body of an
    ``if``/``while``/``do`` or behind labels (those execute in the caller's
    environment).  Blocks and ``for`` statements fork (or decide for) their
    own scope, so they never declare into the caller's."""
    while True:
        if stmt is None:
            return False
        cls = stmt.__class__
        if cls is ast.DeclStmt:
            return True
        if cls is ast.Label:
            stmt = stmt.statement
            continue
        if cls is ast.If:
            return _declares_into_scope(stmt.then_branch) or _declares_into_scope(
                stmt.else_branch
            )
        if cls is ast.While or cls is ast.DoWhile:
            stmt = stmt.body
            continue
        return False


class _MissingReturn:
    """Sentinel payload for "function fell off its end"; any use is UB."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing-return>"


_MISSING_RETURN = _MissingReturn()


_ARITH_TYPE_CACHE: dict[tuple[CType, CType], CType] = {}


def _arithmetic_result_type(left: CType, right: CType) -> CType:
    """Memoised usual-arithmetic-conversion (few distinct type pairs, hot path)."""
    key = (left, right)
    result = _ARITH_TYPE_CACHE.get(key)
    if result is None:
        from repro.minic.ctypes import usual_arithmetic_conversion

        result = _ARITH_TYPE_CACHE[key] = usual_arithmetic_conversion(left, right)
    return result


def _contains_label(stmt: ast.Node, label: str) -> bool:
    for node in stmt.walk():
        if isinstance(node, ast.Label) and node.name == label:
            return True
    return False


def run_source(source: str, max_steps: int = 200_000) -> ExecutionResult:
    """Parse, resolve and interpret a mini-C program in one call."""
    unit = parse(source)
    resolve(unit)
    return Interpreter(max_steps=max_steps).run(unit)


def run_unit(
    unit: ast.TranslationUnit,
    max_steps: int = 200_000,
    entry: str = "main",
    compiled: dict | None = None,
) -> ExecutionResult:
    """Interpret an already-parsed *and resolved* translation unit.

    The parse-once campaign path uses this on skeleton ASTs rebound to a
    characteristic vector: the unit's identifier ``decl``/``ctype`` links
    must be up to date (``Skeleton.bind`` maintains them).  Pass the same
    ``compiled`` dict across calls to reuse the closure-compiled function
    bodies (the campaign keeps one per skeleton, shared by all variants).
    """
    return Interpreter(max_steps=max_steps, compiled=compiled).run(unit, entry=entry)


__all__ = [
    "ExecutionResult",
    "ExecutionStatus",
    "Interpreter",
    "UndefinedBehaviour",
    "run_source",
    "run_unit",
]
