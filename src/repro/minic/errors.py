"""Exception hierarchy for the mini-C frontend."""

from __future__ import annotations


class MiniCError(Exception):
    """Base class for every error raised by the mini-C frontend."""


class MiniCSyntaxError(MiniCError):
    """A lexical or syntactic error, with source position when available."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None) -> None:
        location = f" at line {line}, column {column}" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class MiniCTypeError(MiniCError):
    """A semantic error: unknown identifiers, bad types, arity mismatches."""


class MiniCRuntimeError(MiniCError):
    """An error raised while interpreting a program (not undefined behaviour)."""


__all__ = ["MiniCError", "MiniCRuntimeError", "MiniCSyntaxError", "MiniCTypeError"]
