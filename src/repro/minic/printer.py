"""Pretty-printer: mini-C AST back to compilable C source.

Used by skeleton realization (variants are rendered to source only when text
is actually needed -- a bug report, a reduction, the CLI), by the mutation
baseline, and by the bug reporter.  The output parses back to an equivalent
AST, a property the round-trip tests check.

Like the reference interpreter, rendering dispatches on ``type(node)``
through tables built once at module load instead of isinstance chains.
"""

from __future__ import annotations

from repro.minic import ast
from repro.minic.ctypes import ArrayType, CType, PointerType


def _declaration_text(name: str, ctype: CType) -> str:
    """Render ``ctype name`` handling pointer and array declarators."""
    if isinstance(ctype, ArrayType):
        return f"{_declaration_text(name, ctype.base)}[{ctype.size}]"
    if isinstance(ctype, PointerType):
        base = ctype.base
        stars = "*"
        while isinstance(base, PointerType):
            stars += "*"
            base = base.base
        return f"{base.spelling()} {stars}{name}"
    return f"{ctype.spelling()} {name}"


_PRECEDENCE = {
    ",": 1,
    "||": 4,
    "&&": 5,
    "|": 6,
    "^": 7,
    "&": 8,
    "==": 9,
    "!=": 9,
    "<": 10,
    "<=": 10,
    ">": 10,
    ">=": 10,
    "<<": 11,
    ">>": 11,
    "+": 12,
    "-": 12,
    "*": 13,
    "/": 13,
    "%": 13,
}


# -- expressions ----------------------------------------------------------------


def expr_to_source(expr: ast.Expr) -> str:
    """Render an expression; parenthesises conservatively for re-parseability."""
    printer = _EXPR_PRINTERS.get(expr.__class__)
    if printer is None:
        raise TypeError(f"cannot print expression {expr!r}")
    return printer(expr)


def _print_identifier(expr: ast.Identifier) -> str:
    return expr.name


def _print_int_literal(expr: ast.IntLiteral) -> str:
    return f"{expr.value}{expr.suffix.upper()}"


def _print_char_literal(expr: ast.CharLiteral) -> str:
    return expr.text or str(expr.value)


def _print_string_literal(expr: ast.StringLiteral) -> str:
    escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n").replace("\t", "\\t").replace("\0", "\\0")
    return f'"{escaped}"'


def _print_unary(expr: ast.Unary) -> str:
    operand = expr_to_source(expr.operand)
    if not isinstance(expr.operand, (ast.Identifier, ast.IntLiteral, ast.CharLiteral, ast.Index, ast.Call)):
        operand = f"({operand})"
    if expr.postfix:
        return f"{operand}{expr.op}"
    separator = " " if expr.op in ("-", "+", "&", "*") else ""
    return f"{expr.op}{separator}{operand}"


def _print_binary(expr: ast.Binary) -> str:
    left = expr_to_source(expr.left)
    right = expr_to_source(expr.right)
    if isinstance(expr.left, (ast.Binary, ast.Assignment, ast.Conditional)):
        left = f"({left})"
    if isinstance(expr.right, (ast.Binary, ast.Assignment, ast.Conditional)):
        right = f"({right})"
    operator = ", " if expr.op == "," else f" {expr.op} "
    return f"{left}{operator}{right}".replace(", ,", ",")


def _print_assignment(expr: ast.Assignment) -> str:
    target = expr_to_source(expr.target)
    value = expr_to_source(expr.value)
    return f"{target} {expr.op} {value}"


def _print_conditional(expr: ast.Conditional) -> str:
    condition = expr_to_source(expr.condition)
    then_expr = expr_to_source(expr.then_expr)
    else_expr = expr_to_source(expr.else_expr)
    if isinstance(expr.condition, (ast.Assignment, ast.Conditional)):
        condition = f"({condition})"
    return f"{condition} ? {then_expr} : ({else_expr})"


def _print_call(expr: ast.Call) -> str:
    args = ", ".join(expr_to_source(arg) for arg in expr.args)
    return f"{expr.callee}({args})"


def _print_index(expr: ast.Index) -> str:
    base = expr_to_source(expr.base)
    if not isinstance(expr.base, (ast.Identifier, ast.Index, ast.Call)):
        base = f"({base})"
    return f"{base}[{expr_to_source(expr.index)}]"


def _print_cast(expr: ast.Cast) -> str:
    operand = expr_to_source(expr.operand)
    if not isinstance(expr.operand, (ast.Identifier, ast.IntLiteral, ast.CharLiteral)):
        operand = f"({operand})"
    return f"({expr.target_type.spelling()}) {operand}"


_EXPR_PRINTERS = {
    ast.Identifier: _print_identifier,
    ast.IntLiteral: _print_int_literal,
    ast.CharLiteral: _print_char_literal,
    ast.StringLiteral: _print_string_literal,
    ast.Unary: _print_unary,
    ast.Binary: _print_binary,
    ast.Assignment: _print_assignment,
    ast.Conditional: _print_conditional,
    ast.Call: _print_call,
    ast.Index: _print_index,
    ast.Cast: _print_cast,
}


# -- declarations and statements -------------------------------------------------


def _var_decl_to_source(decl: ast.VarDecl) -> str:
    text = _declaration_text(decl.name, decl.var_type)
    if decl.init is not None:
        text += f" = {expr_to_source(decl.init)}"
    elif decl.init_list is not None:
        items = ", ".join(expr_to_source(item) for item in decl.init_list)
        text += f" = {{{items}}}"
    return text


def _decl_stmt_to_source(stmt: ast.DeclStmt) -> str:
    if not stmt.decls:
        return ";"
    # Group declarators that share the same base type into one line when they
    # were written that way; printing each separately is always correct and
    # simpler, so we print one declaration per declarator.
    return "; ".join(_var_decl_to_source(decl) for decl in stmt.decls) + ";"


def _stmt_lines(stmt: ast.Stmt, indent: int) -> list[str]:
    printer = _STMT_PRINTERS.get(stmt.__class__)
    if printer is None:
        raise TypeError(f"cannot print statement {stmt!r}")
    return printer(stmt, indent)


def _lines_block(stmt: ast.Block, indent: int) -> list[str]:
    pad = "    " * indent
    lines = [f"{pad}{{"]
    for item in stmt.items:
        lines.extend(_stmt_lines(item, indent + 1))
    lines.append(f"{pad}}}")
    return lines


def _lines_decl_stmt(stmt: ast.DeclStmt, indent: int) -> list[str]:
    pad = "    " * indent
    return [f"{pad}{_var_decl_to_source(decl)};" for decl in stmt.decls]


def _lines_expr_stmt(stmt: ast.ExprStmt, indent: int) -> list[str]:
    return [f"{'    ' * indent}{expr_to_source(stmt.expr)};"]


def _lines_empty(stmt: ast.Empty, indent: int) -> list[str]:
    return [f"{'    ' * indent};"]


def _lines_if(stmt: ast.If, indent: int) -> list[str]:
    pad = "    " * indent
    lines = [f"{pad}if ({expr_to_source(stmt.condition)})"]
    lines.extend(_branch_lines(stmt.then_branch, indent))
    if stmt.else_branch is not None:
        lines.append(f"{pad}else")
        lines.extend(_branch_lines(stmt.else_branch, indent))
    return lines


def _lines_while(stmt: ast.While, indent: int) -> list[str]:
    lines = [f"{'    ' * indent}while ({expr_to_source(stmt.condition)})"]
    lines.extend(_branch_lines(stmt.body, indent))
    return lines


def _lines_do_while(stmt: ast.DoWhile, indent: int) -> list[str]:
    pad = "    " * indent
    lines = [f"{pad}do"]
    lines.extend(_branch_lines(stmt.body, indent))
    lines.append(f"{pad}while ({expr_to_source(stmt.condition)});")
    return lines


def _lines_for(stmt: ast.For, indent: int) -> list[str]:
    if stmt.init is None:
        init = ";"
    elif isinstance(stmt.init, ast.DeclStmt):
        init = _decl_stmt_to_source(stmt.init)
    else:
        init = f"{expr_to_source(stmt.init.expr)};"
    condition = expr_to_source(stmt.condition) if stmt.condition is not None else ""
    step = expr_to_source(stmt.step) if stmt.step is not None else ""
    lines = [f"{'    ' * indent}for ({init} {condition}; {step})"]
    lines.extend(_branch_lines(stmt.body, indent))
    return lines


def _lines_return(stmt: ast.Return, indent: int) -> list[str]:
    pad = "    " * indent
    if stmt.value is None:
        return [f"{pad}return;"]
    return [f"{pad}return {expr_to_source(stmt.value)};"]


def _lines_break(stmt: ast.Break, indent: int) -> list[str]:
    return [f"{'    ' * indent}break;"]


def _lines_continue(stmt: ast.Continue, indent: int) -> list[str]:
    return [f"{'    ' * indent}continue;"]


def _lines_goto(stmt: ast.Goto, indent: int) -> list[str]:
    return [f"{'    ' * indent}goto {stmt.label};"]


def _lines_label(stmt: ast.Label, indent: int) -> list[str]:
    lines = [f"{'    ' * indent}{stmt.name}:"]
    lines.extend(_stmt_lines(stmt.statement, indent))
    return lines


_STMT_PRINTERS = {
    ast.Block: _lines_block,
    ast.DeclStmt: _lines_decl_stmt,
    ast.ExprStmt: _lines_expr_stmt,
    ast.Empty: _lines_empty,
    ast.If: _lines_if,
    ast.While: _lines_while,
    ast.DoWhile: _lines_do_while,
    ast.For: _lines_for,
    ast.Return: _lines_return,
    ast.Break: _lines_break,
    ast.Continue: _lines_continue,
    ast.Goto: _lines_goto,
    ast.Label: _lines_label,
}


def _branch_lines(stmt: ast.Stmt, indent: int) -> list[str]:
    """Print the body of an if/while/for; blocks stay at the same indent level."""
    if isinstance(stmt, ast.Block):
        return _stmt_lines(stmt, indent)
    return _stmt_lines(stmt, indent + 1)


def to_source(node: ast.Node) -> str:
    """Render a translation unit (or any single statement) to C source."""
    if isinstance(node, ast.TranslationUnit):
        chunks: list[str] = []
        for decl in node.decls:
            if isinstance(decl, ast.DeclStmt):
                chunks.extend(_stmt_lines(decl, 0))
            elif isinstance(decl, ast.FunctionDef):
                params = ", ".join(
                    _declaration_text(param.name, param.var_type) for param in decl.params
                )
                if not params:
                    params = "void"
                header = f"{_declaration_text(decl.name, decl.return_type)}({params})"
                if not decl.body.items and decl.body.loc.line == 0:
                    chunks.append(f"{header};")
                else:
                    chunks.append(header)
                    chunks.extend(_stmt_lines(decl.body, 0))
                chunks.append("")
            else:  # pragma: no cover - defensive
                raise TypeError(f"cannot print top-level node {decl!r}")
        return "\n".join(chunks).rstrip("\n") + "\n"
    if isinstance(node, ast.Stmt):
        return "\n".join(_stmt_lines(node, 0)) + "\n"
    if isinstance(node, ast.Expr):
        return expr_to_source(node)
    raise TypeError(f"cannot print node {node!r}")


__all__ = ["expr_to_source", "to_source"]
