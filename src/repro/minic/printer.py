"""Pretty-printer: mini-C AST back to compilable C source.

Used by skeleton realization (every enumerated variant is rendered to source
before being handed to a compiler under test), by the mutation baseline, and
by the bug reporter.  The output parses back to an equivalent AST, a property
the round-trip tests check.
"""

from __future__ import annotations

from repro.minic import ast
from repro.minic.ctypes import ArrayType, CType, PointerType


def _declaration_text(name: str, ctype: CType) -> str:
    """Render ``ctype name`` handling pointer and array declarators."""
    if isinstance(ctype, ArrayType):
        return f"{_declaration_text(name, ctype.base)}[{ctype.size}]"
    if isinstance(ctype, PointerType):
        base = ctype.base
        stars = "*"
        while isinstance(base, PointerType):
            stars += "*"
            base = base.base
        return f"{base.spelling()} {stars}{name}"
    return f"{ctype.spelling()} {name}"


_PRECEDENCE = {
    ",": 1,
    "||": 4,
    "&&": 5,
    "|": 6,
    "^": 7,
    "&": 8,
    "==": 9,
    "!=": 9,
    "<": 10,
    "<=": 10,
    ">": 10,
    ">=": 10,
    "<<": 11,
    ">>": 11,
    "+": 12,
    "-": 12,
    "*": 13,
    "/": 13,
    "%": 13,
}


def expr_to_source(expr: ast.Expr) -> str:
    """Render an expression; parenthesises conservatively for re-parseability."""
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.IntLiteral):
        return f"{expr.value}{expr.suffix.upper()}"
    if isinstance(expr, ast.CharLiteral):
        return expr.text or str(expr.value)
    if isinstance(expr, ast.StringLiteral):
        escaped = expr.value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n").replace("\t", "\\t").replace("\0", "\\0")
        return f'"{escaped}"'
    if isinstance(expr, ast.Unary):
        operand = expr_to_source(expr.operand)
        if not isinstance(expr.operand, (ast.Identifier, ast.IntLiteral, ast.CharLiteral, ast.Index, ast.Call)):
            operand = f"({operand})"
        if expr.postfix:
            return f"{operand}{expr.op}"
        separator = " " if expr.op in ("-", "+", "&", "*") else ""
        return f"{expr.op}{separator}{operand}"
    if isinstance(expr, ast.Binary):
        left = expr_to_source(expr.left)
        right = expr_to_source(expr.right)
        if isinstance(expr.left, (ast.Binary, ast.Assignment, ast.Conditional)):
            left = f"({left})"
        if isinstance(expr.right, (ast.Binary, ast.Assignment, ast.Conditional)):
            right = f"({right})"
        operator = ", " if expr.op == "," else f" {expr.op} "
        return f"{left}{operator}{right}".replace(", ,", ",")
    if isinstance(expr, ast.Assignment):
        target = expr_to_source(expr.target)
        value = expr_to_source(expr.value)
        return f"{target} {expr.op} {value}"
    if isinstance(expr, ast.Conditional):
        condition = expr_to_source(expr.condition)
        then_expr = expr_to_source(expr.then_expr)
        else_expr = expr_to_source(expr.else_expr)
        if isinstance(expr.condition, (ast.Assignment, ast.Conditional)):
            condition = f"({condition})"
        return f"{condition} ? {then_expr} : ({else_expr})"
    if isinstance(expr, ast.Call):
        args = ", ".join(expr_to_source(arg) for arg in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ast.Index):
        base = expr_to_source(expr.base)
        if not isinstance(expr.base, (ast.Identifier, ast.Index, ast.Call)):
            base = f"({base})"
        return f"{base}[{expr_to_source(expr.index)}]"
    if isinstance(expr, ast.Cast):
        operand = expr_to_source(expr.operand)
        if not isinstance(expr.operand, (ast.Identifier, ast.IntLiteral, ast.CharLiteral)):
            operand = f"({operand})"
        return f"({expr.target_type.spelling()}) {operand}"
    raise TypeError(f"cannot print expression {expr!r}")


def _var_decl_to_source(decl: ast.VarDecl) -> str:
    text = _declaration_text(decl.name, decl.var_type)
    if decl.init is not None:
        text += f" = {expr_to_source(decl.init)}"
    elif decl.init_list is not None:
        items = ", ".join(expr_to_source(item) for item in decl.init_list)
        text += f" = {{{items}}}"
    return text


def _decl_stmt_to_source(stmt: ast.DeclStmt) -> str:
    if not stmt.decls:
        return ";"
    # Group declarators that share the same base type into one line when they
    # were written that way; printing each separately is always correct and
    # simpler, so we print one declaration per declarator.
    return "; ".join(_var_decl_to_source(decl) for decl in stmt.decls) + ";"


def _stmt_lines(stmt: ast.Stmt, indent: int) -> list[str]:
    pad = "    " * indent
    if isinstance(stmt, ast.Block):
        lines = [f"{pad}{{"]
        for item in stmt.items:
            lines.extend(_stmt_lines(item, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, ast.DeclStmt):
        return [f"{pad}{_var_decl_to_source(decl)};" for decl in stmt.decls]
    if isinstance(stmt, ast.ExprStmt):
        return [f"{pad}{expr_to_source(stmt.expr)};"]
    if isinstance(stmt, ast.Empty):
        return [f"{pad};"]
    if isinstance(stmt, ast.If):
        lines = [f"{pad}if ({expr_to_source(stmt.condition)})"]
        lines.extend(_branch_lines(stmt.then_branch, indent))
        if stmt.else_branch is not None:
            lines.append(f"{pad}else")
            lines.extend(_branch_lines(stmt.else_branch, indent))
        return lines
    if isinstance(stmt, ast.While):
        lines = [f"{pad}while ({expr_to_source(stmt.condition)})"]
        lines.extend(_branch_lines(stmt.body, indent))
        return lines
    if isinstance(stmt, ast.DoWhile):
        lines = [f"{pad}do"]
        lines.extend(_branch_lines(stmt.body, indent))
        lines.append(f"{pad}while ({expr_to_source(stmt.condition)});")
        return lines
    if isinstance(stmt, ast.For):
        if stmt.init is None:
            init = ";"
        elif isinstance(stmt.init, ast.DeclStmt):
            init = _decl_stmt_to_source(stmt.init)
        else:
            init = f"{expr_to_source(stmt.init.expr)};"
        condition = expr_to_source(stmt.condition) if stmt.condition is not None else ""
        step = expr_to_source(stmt.step) if stmt.step is not None else ""
        lines = [f"{pad}for ({init} {condition}; {step})"]
        lines.extend(_branch_lines(stmt.body, indent))
        return lines
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {expr_to_source(stmt.value)};"]
    if isinstance(stmt, ast.Break):
        return [f"{pad}break;"]
    if isinstance(stmt, ast.Continue):
        return [f"{pad}continue;"]
    if isinstance(stmt, ast.Goto):
        return [f"{pad}goto {stmt.label};"]
    if isinstance(stmt, ast.Label):
        lines = [f"{pad}{stmt.name}:"]
        lines.extend(_stmt_lines(stmt.statement, indent))
        return lines
    raise TypeError(f"cannot print statement {stmt!r}")


def _branch_lines(stmt: ast.Stmt, indent: int) -> list[str]:
    """Print the body of an if/while/for; blocks stay at the same indent level."""
    if isinstance(stmt, ast.Block):
        return _stmt_lines(stmt, indent)
    return _stmt_lines(stmt, indent + 1)


def to_source(node: ast.Node) -> str:
    """Render a translation unit (or any single statement) to C source."""
    if isinstance(node, ast.TranslationUnit):
        chunks: list[str] = []
        for decl in node.decls:
            if isinstance(decl, ast.DeclStmt):
                chunks.extend(_stmt_lines(decl, 0))
            elif isinstance(decl, ast.FunctionDef):
                params = ", ".join(
                    _declaration_text(param.name, param.var_type) for param in decl.params
                )
                if not params:
                    params = "void"
                header = f"{_declaration_text(decl.name, decl.return_type)}({params})"
                if not decl.body.items and decl.body.loc.line == 0:
                    chunks.append(f"{header};")
                else:
                    chunks.append(header)
                    chunks.extend(_stmt_lines(decl.body, 0))
                chunks.append("")
            else:  # pragma: no cover - defensive
                raise TypeError(f"cannot print top-level node {decl!r}")
        return "\n".join(chunks).rstrip("\n") + "\n"
    if isinstance(node, ast.Stmt):
        return "\n".join(_stmt_lines(node, 0)) + "\n"
    if isinstance(node, ast.Expr):
        return expr_to_source(node)
    raise TypeError(f"cannot print node {node!r}")


__all__ = ["expr_to_source", "to_source"]
