"""Recursive-descent parser for the mini-C subset.

The parser accepts the language described in :mod:`repro.minic.ast`:
global variable declarations, function definitions (with parameters), block
scopes, the full C statement repertoire used by small compiler test cases
(``if``/``else``, ``while``, ``do``/``while``, ``for`` with C99 declarations,
``return``, ``break``, ``continue``, ``goto``/labels) and C expressions with
the standard precedence levels (assignment and compound assignment, the
ternary conditional, logical/bitwise/shift/arithmetic operators, unary
operators including pointer dereference and address-of, pre/post increment,
array indexing, calls and casts).

It deliberately rejects what the rest of the pipeline cannot handle
(struct/union/typedef/varargs definitions) with a clear
:class:`~repro.minic.errors.MiniCSyntaxError`.
"""

from __future__ import annotations

from repro.minic import ast
from repro.minic.ctypes import (
    ArrayType,
    CType,
    IntType,
    PointerType,
    VOID,
    type_from_name,
)
from repro.minic.errors import MiniCSyntaxError
from repro.minic.lexer import Token, tokenize

_TYPE_KEYWORDS = {"int", "char", "long", "unsigned", "signed", "void"}
_QUALIFIERS = {"static", "extern", "const", "volatile"}
_ASSIGN_OPS = set(ast.ASSIGNMENT_OPS)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.position + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.check(kind, text):
            return self.advance()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.check(kind, text):
            token = self.peek()
            expected = text if text is not None else kind
            raise MiniCSyntaxError(
                f"expected {expected!r} but found {token.text!r}", token.line, token.column
            )
        return self.advance()

    def loc(self) -> ast.Location:
        token = self.peek()
        return ast.Location(token.line, token.column)

    # -- types -----------------------------------------------------------------

    def at_type(self) -> bool:
        token = self.peek()
        if token.kind != "keyword":
            return False
        return token.text in _TYPE_KEYWORDS or token.text in _QUALIFIERS

    def parse_base_type(self) -> CType:
        """Parse qualifiers and a base type name (no pointer suffixes)."""
        while self.peek().kind == "keyword" and self.peek().text in _QUALIFIERS:
            self.advance()
        words: list[str] = []
        while self.peek().kind == "keyword" and self.peek().text in _TYPE_KEYWORDS:
            words.append(self.advance().text)
        if not words:
            token = self.peek()
            raise MiniCSyntaxError(f"expected a type but found {token.text!r}", token.line, token.column)
        if words == ["void"]:
            return VOID
        normalized = " ".join(word for word in words if word != "signed") or "int"
        try:
            return type_from_name(normalized)
        except ValueError as exc:
            token = self.peek()
            raise MiniCSyntaxError(str(exc), token.line, token.column) from None

    def parse_pointer_suffix(self, base: CType) -> CType:
        result = base
        while self.accept("op", "*"):
            result = PointerType(result)
        return result

    # -- top level ---------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        unit = ast.TranslationUnit(loc=self.loc())
        while not self.check("eof"):
            if self.check("op", ";"):
                self.advance()
                continue
            unit.decls.append(self.parse_external_declaration())
        return unit

    def parse_external_declaration(self) -> ast.Node:
        start = self.loc()
        base = self.parse_base_type()
        declared_type = self.parse_pointer_suffix(base)
        name_token = self.expect("ident")

        if self.check("op", "("):
            return self.parse_function_rest(declared_type, name_token, start)

        # A global declaration (possibly a comma-separated list).
        decl_stmt = ast.DeclStmt(decls=[], loc=start)
        decl_stmt.decls.append(self.parse_declarator_rest(base, declared_type, name_token, is_global=True))
        while self.accept("op", ","):
            pointer_type = self.parse_pointer_suffix(base)
            next_name = self.expect("ident")
            decl_stmt.decls.append(self.parse_declarator_rest(base, pointer_type, next_name, is_global=True))
        self.expect("op", ";")
        return decl_stmt

    def parse_declarator_rest(
        self, base: CType, declared_type: CType, name_token: Token, is_global: bool = False
    ) -> ast.VarDecl:
        """Parse array suffixes and an optional initializer for one declarator."""
        var_type = declared_type
        if self.accept("op", "["):
            size_token = self.expect("number")
            self.expect("op", "]")
            var_type = ArrayType(declared_type, int(size_token.value))
        decl = ast.VarDecl(
            name=name_token.text,
            var_type=var_type,
            is_global=is_global,
            loc=ast.Location(name_token.line, name_token.column),
        )
        if self.accept("op", "="):
            if self.check("op", "{"):
                self.advance()
                items: list[ast.Expr] = []
                if not self.check("op", "}"):
                    items.append(self.parse_assignment())
                    while self.accept("op", ","):
                        if self.check("op", "}"):
                            break
                        items.append(self.parse_assignment())
                self.expect("op", "}")
                decl.init_list = items
            else:
                decl.init = self.parse_assignment()
        return decl

    def parse_function_rest(
        self, return_type: CType, name_token: Token, start: ast.Location
    ) -> ast.Node:
        self.expect("op", "(")
        params: list[ast.VarDecl] = []
        if not self.check("op", ")"):
            if self.check("keyword", "void") and self.peek(1).kind == "op" and self.peek(1).text == ")":
                self.advance()
            else:
                params.append(self.parse_parameter())
                while self.accept("op", ","):
                    params.append(self.parse_parameter())
        self.expect("op", ")")

        if self.accept("op", ";"):
            # A prototype: keep it as a function with an empty body marker so
            # the printer can reproduce it; the interpreter/compiler ignore it.
            return ast.FunctionDef(
                name=name_token.text,
                return_type=return_type,
                params=params,
                body=ast.Block(items=[]),
                loc=start,
            )

        body = self.parse_block()
        return ast.FunctionDef(
            name=name_token.text,
            return_type=return_type,
            params=params,
            body=body,
            loc=start,
        )

    def parse_parameter(self) -> ast.VarDecl:
        base = self.parse_base_type()
        param_type = self.parse_pointer_suffix(base)
        name_token = self.expect("ident")
        if self.accept("op", "["):
            # Array parameters decay to pointers.
            if self.check("number"):
                self.advance()
            self.expect("op", "]")
            param_type = PointerType(param_type)
        return ast.VarDecl(
            name=name_token.text,
            var_type=param_type,
            is_param=True,
            loc=ast.Location(name_token.line, name_token.column),
        )

    # -- statements -----------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.loc()
        self.expect("op", "{")
        block = ast.Block(items=[], loc=start)
        while not self.check("op", "}"):
            if self.check("eof"):
                raise MiniCSyntaxError("unterminated block", start.line, start.column)
            block.items.append(self.parse_statement())
        self.expect("op", "}")
        return block

    def parse_declaration_statement(self) -> ast.DeclStmt:
        start = self.loc()
        base = self.parse_base_type()
        decl_stmt = ast.DeclStmt(decls=[], loc=start)
        pointer_type = self.parse_pointer_suffix(base)
        name_token = self.expect("ident")
        decl_stmt.decls.append(self.parse_declarator_rest(base, pointer_type, name_token))
        while self.accept("op", ","):
            pointer_type = self.parse_pointer_suffix(base)
            name_token = self.expect("ident")
            decl_stmt.decls.append(self.parse_declarator_rest(base, pointer_type, name_token))
        self.expect("op", ";")
        return decl_stmt

    def parse_statement(self) -> ast.Stmt:
        start = self.loc()

        if self.check("op", "{"):
            return self.parse_block()
        if self.check("op", ";"):
            self.advance()
            return ast.Empty(loc=start)
        if self.at_type():
            return self.parse_declaration_statement()
        if self.check("keyword", "if"):
            self.advance()
            self.expect("op", "(")
            condition = self.parse_expression()
            self.expect("op", ")")
            then_branch = self.parse_statement()
            else_branch = None
            if self.accept("keyword", "else"):
                else_branch = self.parse_statement()
            return ast.If(condition, then_branch, else_branch, loc=start)
        if self.check("keyword", "while"):
            self.advance()
            self.expect("op", "(")
            condition = self.parse_expression()
            self.expect("op", ")")
            body = self.parse_statement()
            return ast.While(condition, body, loc=start)
        if self.check("keyword", "do"):
            self.advance()
            body = self.parse_statement()
            self.expect("keyword", "while")
            self.expect("op", "(")
            condition = self.parse_expression()
            self.expect("op", ")")
            self.expect("op", ";")
            return ast.DoWhile(body, condition, loc=start)
        if self.check("keyword", "for"):
            self.advance()
            self.expect("op", "(")
            init: ast.Stmt | None
            if self.check("op", ";"):
                self.advance()
                init = None
            elif self.at_type():
                init = self.parse_declaration_statement()
            else:
                expr = self.parse_expression()
                self.expect("op", ";")
                init = ast.ExprStmt(expr, loc=start)
            condition = None
            if not self.check("op", ";"):
                condition = self.parse_expression()
            self.expect("op", ";")
            step = None
            if not self.check("op", ")"):
                step = self.parse_expression()
            self.expect("op", ")")
            body = self.parse_statement()
            return ast.For(init, condition, step, body, loc=start)
        if self.check("keyword", "return"):
            self.advance()
            value = None
            if not self.check("op", ";"):
                value = self.parse_expression()
            self.expect("op", ";")
            return ast.Return(value, loc=start)
        if self.check("keyword", "break"):
            self.advance()
            self.expect("op", ";")
            return ast.Break(loc=start)
        if self.check("keyword", "continue"):
            self.advance()
            self.expect("op", ";")
            return ast.Continue(loc=start)
        if self.check("keyword", "goto"):
            self.advance()
            label = self.expect("ident").text
            self.expect("op", ";")
            return ast.Goto(label, loc=start)
        # Label: identifier ':' statement  (but not the ternary "a ? b : c").
        if self.check("ident") and self.peek(1).kind == "op" and self.peek(1).text == ":":
            name = self.advance().text
            self.advance()  # ':'
            if self.check("op", "}"):
                # A label at the end of a block labels the empty statement.
                return ast.Label(name, ast.Empty(loc=start), loc=start)
            return ast.Label(name, self.parse_statement(), loc=start)

        expr = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(expr, loc=start)

    # -- expressions -----------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        """Top-level expression: assignment, optionally chained with commas."""
        expr = self.parse_assignment()
        while self.check("op", ",") and self._comma_is_operator():
            self.advance()
            right = self.parse_assignment()
            expr = ast.Binary(",", expr, right, loc=expr.loc)
        return expr

    def _comma_is_operator(self) -> bool:
        # Inside call argument lists parse_assignment is used directly, so any
        # comma seen by parse_expression is the comma operator.
        return True

    def parse_assignment(self) -> ast.Expr:
        start = self.loc()
        left = self.parse_conditional()
        token = self.peek()
        if token.kind == "op" and token.text in _ASSIGN_OPS:
            self.advance()
            right = self.parse_assignment()
            return ast.Assignment(token.text, left, right, loc=start)
        return left

    def parse_conditional(self) -> ast.Expr:
        start = self.loc()
        condition = self.parse_logical_or()
        if self.accept("op", "?"):
            then_expr = self.parse_expression()
            self.expect("op", ":")
            else_expr = self.parse_conditional()
            return ast.Conditional(condition, then_expr, else_expr, loc=start)
        return condition

    def _binary_level(self, operators: tuple[str, ...], next_level) -> ast.Expr:
        start = self.loc()
        left = next_level()
        while self.peek().kind == "op" and self.peek().text in operators:
            op = self.advance().text
            right = next_level()
            left = ast.Binary(op, left, right, loc=start)
        return left

    def parse_logical_or(self) -> ast.Expr:
        return self._binary_level(("||",), self.parse_logical_and)

    def parse_logical_and(self) -> ast.Expr:
        return self._binary_level(("&&",), self.parse_bit_or)

    def parse_bit_or(self) -> ast.Expr:
        return self._binary_level(("|",), self.parse_bit_xor)

    def parse_bit_xor(self) -> ast.Expr:
        return self._binary_level(("^",), self.parse_bit_and)

    def parse_bit_and(self) -> ast.Expr:
        return self._binary_level(("&",), self.parse_equality)

    def parse_equality(self) -> ast.Expr:
        return self._binary_level(("==", "!="), self.parse_relational)

    def parse_relational(self) -> ast.Expr:
        return self._binary_level(("<", "<=", ">", ">="), self.parse_shift)

    def parse_shift(self) -> ast.Expr:
        return self._binary_level(("<<", ">>"), self.parse_additive)

    def parse_additive(self) -> ast.Expr:
        return self._binary_level(("+", "-"), self.parse_multiplicative)

    def parse_multiplicative(self) -> ast.Expr:
        return self._binary_level(("*", "/", "%"), self.parse_unary)

    def parse_unary(self) -> ast.Expr:
        start = self.loc()
        token = self.peek()
        if token.kind == "op" and token.text in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(token.text, operand, postfix=False, loc=start)
        if token.kind == "op" and token.text in ("-", "+", "!", "~", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            return ast.Unary(token.text, operand, postfix=False, loc=start)
        if token.kind == "keyword" and token.text == "sizeof":
            self.advance()
            self.expect("op", "(")
            if self.at_type():
                base = self.parse_base_type()
                sized = self.parse_pointer_suffix(base)
                self.expect("op", ")")
                return ast.IntLiteral(_sizeof(sized), loc=start)
            inner = self.parse_expression()
            self.expect("op", ")")
            # sizeof(expr): conservatively size as int; the operand is dropped.
            _ = inner
            return ast.IntLiteral(4, loc=start)
        # Cast: '(' type ')' unary
        if token.kind == "op" and token.text == "(" and self.peek(1).kind == "keyword" and self.peek(1).text in _TYPE_KEYWORDS | _QUALIFIERS:
            self.advance()
            base = self.parse_base_type()
            target = self.parse_pointer_suffix(base)
            self.expect("op", ")")
            operand = self.parse_unary()
            return ast.Cast(target, operand, loc=start)
        return self.parse_postfix()

    def parse_postfix(self) -> ast.Expr:
        start = self.loc()
        expr = self.parse_primary()
        while True:
            if self.check("op", "["):
                self.advance()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(expr, index, loc=start)
                continue
            if self.check("op", "("):
                if not isinstance(expr, ast.Identifier):
                    token = self.peek()
                    raise MiniCSyntaxError(
                        "only direct calls of named functions are supported",
                        token.line,
                        token.column,
                    )
                self.advance()
                args: list[ast.Expr] = []
                if not self.check("op", ")"):
                    args.append(self.parse_assignment())
                    while self.accept("op", ","):
                        args.append(self.parse_assignment())
                self.expect("op", ")")
                expr = ast.Call(expr.name, args, loc=start)
                continue
            if self.check("op", "++") or self.check("op", "--"):
                op = self.advance().text
                expr = ast.Unary(op, expr, postfix=True, loc=start)
                continue
            break
        return expr

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        start = self.loc()
        if token.kind == "number":
            self.advance()
            suffix = "".join(ch for ch in token.text.lower() if ch in "ul")
            return ast.IntLiteral(int(token.value), suffix=suffix, loc=start)
        if token.kind == "char":
            self.advance()
            return ast.CharLiteral(int(token.value), text=token.text, loc=start)
        if token.kind == "string":
            self.advance()
            return ast.StringLiteral(str(token.value), loc=start)
        if token.kind == "ident":
            self.advance()
            return ast.Identifier(token.text, loc=start)
        if token.kind == "op" and token.text == "(":
            self.advance()
            inner = self.parse_expression()
            self.expect("op", ")")
            return inner
        raise MiniCSyntaxError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def _sizeof(ctype: CType) -> int:
    if isinstance(ctype, IntType):
        return ctype.bits // 8
    if isinstance(ctype, PointerType):
        return 8
    if isinstance(ctype, ArrayType):
        return ctype.size * _sizeof(ctype.base)
    return 1


def parse(source: str) -> ast.TranslationUnit:
    """Parse mini-C source text into a :class:`~repro.minic.ast.TranslationUnit`."""
    return _Parser(tokenize(source)).parse_translation_unit()


__all__ = ["parse"]
