"""A from-scratch C-subset frontend ("mini-C").

The paper extracts skeletons from the C programs of GCC's regression
test-suite.  This package provides everything SPE needs from a C frontend,
implemented from scratch:

* :mod:`repro.minic.lexer` / :mod:`repro.minic.parser` -- tokenizer and
  recursive-descent parser for a practical C subset (functions, globals,
  block scopes, ints/chars/longs/unsigned, pointers, arrays, full expression
  and control-flow statements including ``goto``);
* :mod:`repro.minic.ctypes` -- the type representation and checking helpers;
* :mod:`repro.minic.symbols` -- symbol resolution and scope-tree construction;
* :mod:`repro.minic.printer` -- a pretty-printer emitting compilable C;
* :mod:`repro.minic.skeleton` -- hole/skeleton extraction for SPE;
* :mod:`repro.minic.interp` -- a reference interpreter with
  undefined-behaviour detection (the CompCert-reference-interpreter stand-in
  used to vet wrong-code bug reports, Section 5.4).
"""

from repro.minic import ast
from repro.minic.ctypes import (
    ArrayType,
    CType,
    IntType,
    PointerType,
    type_from_name,
)
from repro.minic.errors import MiniCError, MiniCSyntaxError, MiniCTypeError
from repro.minic.interp import ExecutionResult, ExecutionStatus, Interpreter, run_source, run_unit
from repro.minic.lexer import Token, tokenize
from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.minic.skeleton import extract_skeleton
from repro.minic.symbols import SymbolTable, resolve

__all__ = [
    "ArrayType",
    "CType",
    "ExecutionResult",
    "ExecutionStatus",
    "IntType",
    "Interpreter",
    "MiniCError",
    "MiniCSyntaxError",
    "MiniCTypeError",
    "PointerType",
    "SymbolTable",
    "Token",
    "ast",
    "extract_skeleton",
    "parse",
    "resolve",
    "run_source",
    "run_unit",
    "to_source",
    "tokenize",
    "type_from_name",
]
