"""Skeleton extraction for mini-C programs.

Every resolved variable use becomes a hole (paper Section 3.1); the hole's
candidate variable set is "variables of the same type visible at the use's
scope", exactly the compact-alpha-renaming discipline of Section 3.2.2.

Realization clones the AST, rewrites the identifier occurrences according to
the characteristic vector and pretty-prints the result, so every enumerated
variant is a complete, compilable C program.

Precondition: within every scope, declarations of a (scope, type) variable
group must precede any hole that can see the group (the usual
"declaration before use" discipline of the GCC test-suite programs we
mirror).  ``extract_skeleton`` verifies this and raises
:class:`~repro.minic.errors.MiniCError` otherwise so that the campaign
harness can skip such files, never emitting use-before-declaration C.
"""

from __future__ import annotations

import copy
from typing import Sequence

from repro.core.holes import CharacteristicVector, Hole, Skeleton
from repro.minic import ast
from repro.minic.errors import MiniCError
from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.minic.symbols import SymbolTable, resolve


def extract_skeleton(source_or_unit: str | ast.TranslationUnit, name: str = "<minic>") -> Skeleton:
    """Build a :class:`~repro.core.holes.Skeleton` from mini-C source or AST.

    Args:
        source_or_unit: C source text or an already-parsed translation unit.
        name: label for the skeleton (usually the file name).

    Returns:
        A skeleton whose ``realize`` renders complete C source for any
        characteristic vector.

    Raises:
        MiniCError: on parse/resolution errors or when the
            declaration-before-use precondition is violated.
    """
    if isinstance(source_or_unit, str):
        unit = parse(source_or_unit)
    else:
        unit = copy.deepcopy(source_or_unit)
    table = resolve(unit)
    declaration_order_clean = _declaration_order_clean(table)

    holes: list[Hole] = []
    for index, use in enumerate(table.uses):
        holes.append(
            Hole(
                index=index,
                scope_id=use.scope_id,
                type=use.decl.var_type.spelling(),
                original_name=use.decl.name,
                function=use.function,
                location=f"{name}:{use.node.loc.line}:{use.node.loc.column}",
            )
        )

    original_vector = CharacteristicVector(use.decl.name for use in table.uses)

    def realize(vector: Sequence[str]) -> str:
        clone = copy.deepcopy(unit)
        identifiers = [node for node in clone.walk() if isinstance(node, ast.Identifier)]
        if len(identifiers) != len(vector):
            raise MiniCError(
                f"internal error: {len(identifiers)} identifier occurrences but "
                f"{len(vector)} vector entries for skeleton {name!r}"
            )
        for identifier, new_name in zip(identifiers, vector):
            identifier.name = new_name
        return to_source(clone)

    skeleton = Skeleton(
        name=name,
        holes=holes,
        scope_tree=table.scope_tree,
        original_vector=original_vector,
        realize_fn=realize,
        metadata={
            "language": "minic",
            "functions": list(table.functions),
            # False when some hole precedes a same-scope same-type declaration;
            # such skeletons can realize use-before-declaration variants, which
            # the testing oracle rejects and skips (see module docstring).
            "declaration_order_clean": declaration_order_clean,
        },
    )
    # Sanity: the original program must realize the skeleton (Definition 1).
    skeleton.validate_vector(original_vector)
    return skeleton


def _declaration_order_clean(table: SymbolTable) -> bool:
    """True when every hole follows all same-scope same-type declarations.

    When False, some fillings use a variable before its declaration line;
    those variants are still enumerated (the paper's model treats a scope's
    variables as one symmetric group) but are rejected by the mini-C frontend
    when realized, so the testing harness simply skips them.
    """
    tree = table.scope_tree
    declarations_by_scope = table.declarations
    for use in table.uses:
        use_type = use.decl.var_type.spelling()
        for scope_id in tree.ancestors(use.scope_id):
            for decl in declarations_by_scope.get(scope_id, []):
                if decl.var_type.spelling() != use_type:
                    continue
                if table.declaration_order[id(decl)] > use.order:
                    return False
    return True


__all__ = ["extract_skeleton"]
