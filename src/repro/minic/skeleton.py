"""Skeleton extraction for mini-C programs.

Every resolved variable use becomes a hole (paper Section 3.1); the hole's
candidate variable set is "variables of the same type visible at the use's
scope", exactly the compact-alpha-renaming discipline of Section 3.2.2.

The seed program is parsed and resolved **once**.  Variants are realized by
*rebinding*: each hole keeps a reference to its :class:`~repro.minic.ast.
Identifier` node plus a precomputed ``name -> declaration`` map of its legal
fillings, so moving the shared AST from one characteristic vector to another
is O(holes) -- no clone, no re-render, no re-parse, no re-resolve.  Rendering
to source text (``Skeleton.realize``) rebinds and pretty-prints the same
shared AST, and is only needed when actual text is required (bug reports,
reduction, the CLI).

Precondition: within every scope, declarations of a (scope, type) variable
group must precede any hole that can see the group (the usual
"declaration before use" discipline of the GCC test-suite programs we
mirror).  ``extract_skeleton`` verifies this and records, per hole, which
candidate names *violate* it: vectors using such a name realize to
use-before-declaration C that the textual frontend rejects, so
``Skeleton.vector_order_clean`` lets the campaign harness route exactly
those vectors through the legacy render+reparse path and keep observations
bit-identical.
"""

from __future__ import annotations

import copy

from repro.core.holes import CharacteristicVector, Hole, IdentifierBinder, Skeleton
from repro.minic import ast
from repro.minic.errors import MiniCError
from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.minic.symbols import SymbolTable, resolve


class SkeletonBinder(IdentifierBinder):
    """Rebinds one parsed+resolved translation unit to characteristic vectors.

    The shared bookkeeping (hole identifier nodes, per-hole candidate maps,
    late-name sets, no-op rebinds) lives in
    :class:`~repro.core.holes.IdentifierBinder`; this subclass supplies the
    mini-C specifics.  ``binding_maps`` map each candidate name to the
    declaration that name resolves to at the hole's scope, and rebinding
    patches ``name``/``decl``/``ctype`` of each identifier, which makes the
    rebound AST indistinguishable (up to source locations) from parsing and
    resolving the rendered text.
    """

    __slots__ = ()

    def _rebind(self, identifier: ast.Identifier, name: str, decl: ast.VarDecl) -> None:
        identifier.name = name
        identifier.decl = decl
        identifier.ctype = decl.var_type

    def _render(self, unit: ast.TranslationUnit) -> str:
        return to_source(unit)


def extract_skeleton(source_or_unit: str | ast.TranslationUnit, name: str = "<minic>") -> Skeleton:
    """Build a :class:`~repro.core.holes.Skeleton` from mini-C source or AST.

    Args:
        source_or_unit: C source text or an already-parsed translation unit.
        name: label for the skeleton (usually the file name).

    Returns:
        A skeleton whose ``realize`` renders complete C source for any
        characteristic vector and whose ``bind`` rebinds the parse-once AST
        in O(holes).

    Raises:
        MiniCError: on parse/resolution errors or when the
            declaration-before-use precondition is violated.
    """
    if isinstance(source_or_unit, str):
        unit = parse(source_or_unit)
    else:
        unit = copy.deepcopy(source_or_unit)
    table = resolve(unit)
    declaration_order_clean = _declaration_order_clean(table)

    holes: list[Hole] = []
    for index, use in enumerate(table.uses):
        holes.append(
            Hole(
                index=index,
                scope_id=use.scope_id,
                type=use.decl.var_type.spelling(),
                original_name=use.decl.name,
                function=use.function,
                location=f"{name}:{use.node.loc.line}:{use.node.loc.column}",
            )
        )

    original_vector = CharacteristicVector(use.decl.name for use in table.uses)
    binder = _build_binder(unit, table)

    skeleton = Skeleton(
        name=name,
        holes=holes,
        scope_tree=table.scope_tree,
        original_vector=original_vector,
        realize_fn=binder.render,
        bind_fn=binder.bind,
        order_clean_fn=binder.order_clean,
        metadata={
            "language": "minic",
            "functions": list(table.functions),
            # The binder itself, for consumers that need the resolved unit
            # plus per-hole candidate maps (the batched codegen tier builds
            # its slot tables from these; see repro.minic.codegen).
            "binder": binder,
            # False when some hole precedes a same-scope same-type declaration;
            # such skeletons can realize use-before-declaration variants, which
            # the textual frontend rejects -- the campaign routes exactly those
            # vectors through the render+reparse path (see module docstring).
            "declaration_order_clean": declaration_order_clean,
        },
    )
    # Sanity: the original program must realize the skeleton (Definition 1).
    skeleton.validate_vector(original_vector)
    return skeleton


def _build_binder(unit: ast.TranslationUnit, table: SymbolTable) -> SkeletonBinder:
    """Precompute per-hole binding maps and late (use-before-decl) name sets."""
    tree = table.scope_tree
    binding_maps: list[dict[str, ast.VarDecl]] = []
    late_names: list[frozenset[str]] = []
    visible_cache: dict[int, dict[str, ast.VarDecl]] = {}
    for use in table.uses:
        visible = visible_cache.get(use.scope_id)
        if visible is None:
            # Innermost declaration wins; a shadowing declaration of a
            # different type still hides the outer name, exactly mirroring
            # ScopeTree.visible_variables.
            visible = {}
            for scope_id in tree.ancestors(use.scope_id):
                for decl in table.declarations.get(scope_id, []):
                    if decl.name not in visible:
                        visible[decl.name] = decl
            visible_cache[use.scope_id] = visible
        use_type = use.decl.var_type.spelling()
        candidates = {
            decl_name: decl
            for decl_name, decl in visible.items()
            if decl.var_type.spelling() == use_type
        }
        binding_maps.append(candidates)
        late_names.append(
            frozenset(
                decl_name
                for decl_name, decl in candidates.items()
                if table.declaration_order[id(decl)] > use.order
            )
        )
    identifiers = [use.node for use in table.uses]
    return SkeletonBinder(unit, identifiers, binding_maps, late_names)


def _declaration_order_clean(table: SymbolTable) -> bool:
    """True when every hole follows all same-scope same-type declarations.

    When False, some fillings use a variable before its declaration line;
    those variants are still enumerated (the paper's model treats a scope's
    variables as one symmetric group) but are rejected by the mini-C frontend
    when realized, so the testing harness simply skips them.
    """
    tree = table.scope_tree
    declarations_by_scope = table.declarations
    for use in table.uses:
        use_type = use.decl.var_type.spelling()
        for scope_id in tree.ancestors(use.scope_id):
            for decl in declarations_by_scope.get(scope_id, []):
                if decl.var_type.spelling() != use_type:
                    continue
                if table.declaration_order[id(decl)] > use.order:
                    return False
    return True


__all__ = ["SkeletonBinder", "extract_skeleton"]
