"""Symbol resolution and scope-tree construction for mini-C.

``resolve`` walks a translation unit, builds a
:class:`repro.core.scopes.ScopeTree` mirroring the program's lexical
structure (file scope, one FUNCTION scope per function containing parameters
and the function body's top-level declarations -- matching the paper's
"function-wise variables" -- and one BLOCK scope per nested block/for
statement), links every :class:`~repro.minic.ast.Identifier` use to its
declaration and records the scope each use occurs in.

The result, a :class:`SymbolTable`, is everything skeleton extraction needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scopes import ScopeKind, ScopeTree
from repro.minic import ast
from repro.minic.errors import MiniCTypeError

BUILTIN_FUNCTIONS = {"printf", "abort", "exit", "putchar", "__builtin_abort"}


@dataclass
class VariableUse:
    """One resolved variable occurrence (a future skeleton hole)."""

    node: ast.Identifier
    decl: ast.VarDecl
    scope_id: int
    function: str | None
    order: int


@dataclass
class SymbolTable:
    """The result of symbol resolution."""

    scope_tree: ScopeTree
    uses: list[VariableUse] = field(default_factory=list)
    declarations: dict[int, list[ast.VarDecl]] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)
    # Source-order sequence number of each declaration, keyed by id(decl);
    # shares a counter with VariableUse.order so "declared before used" checks
    # are a simple comparison.
    declaration_order: dict[int, int] = field(default_factory=dict)

    def uses_in_function(self, name: str | None) -> list[VariableUse]:
        return [use for use in self.uses if use.function == name]


class _Resolver:
    def __init__(self) -> None:
        self.tree = ScopeTree(root_kind=ScopeKind.FILE, root_name="<file>")
        self.table = SymbolTable(scope_tree=self.tree)
        # Environment: list of (scope_id, {name: VarDecl}) innermost last.
        self.env: list[tuple[int, dict[str, ast.VarDecl]]] = [(self.tree.root_id, {})]
        self.current_function: str | None = None
        self.order = 0

    # -- scope helpers -------------------------------------------------------

    def push_scope(self, kind: ScopeKind, name: str = "") -> int:
        parent_id = self.env[-1][0]
        scope_id = self.tree.add_scope(parent_id, kind=kind, name=name)
        self.env.append((scope_id, {}))
        return scope_id

    def pop_scope(self) -> None:
        self.env.pop()

    def declare(self, decl: ast.VarDecl) -> None:
        scope_id, names = self.env[-1]
        if decl.name in names:
            raise MiniCTypeError(
                f"redeclaration of {decl.name!r} in the same scope (line {decl.loc.line})"
            )
        names[decl.name] = decl
        decl.scope_id = scope_id
        self.tree.declare(scope_id, decl.name, type=decl.var_type.spelling())
        self.table.declarations.setdefault(scope_id, []).append(decl)
        self.table.declaration_order[id(decl)] = self.order
        self.order += 1

    def lookup(self, name: str) -> ast.VarDecl | None:
        for _, names in reversed(self.env):
            if name in names:
                return names[name]
        return None

    # -- traversal ------------------------------------------------------------

    def resolve_unit(self, unit: ast.TranslationUnit) -> SymbolTable:
        # First pass: record function names so calls resolve regardless of order.
        for decl in unit.decls:
            if isinstance(decl, ast.FunctionDef):
                self.table.functions[decl.name] = decl
        for decl in unit.decls:
            if isinstance(decl, ast.DeclStmt):
                for var_decl in decl.decls:
                    var_decl.is_global = True
                    # Initializers of earlier globals may reference earlier globals.
                    if var_decl.init is not None:
                        self.resolve_expr(var_decl.init)
                    if var_decl.init_list is not None:
                        for item in var_decl.init_list:
                            self.resolve_expr(item)
                    self.declare(var_decl)
            elif isinstance(decl, ast.FunctionDef):
                self.resolve_function(decl)
            else:  # pragma: no cover - defensive
                raise MiniCTypeError(f"unsupported top-level construct {decl!r}")
        return self.table

    def resolve_function(self, function: ast.FunctionDef) -> None:
        if not function.body.items and function.body.loc.line == 0:
            # A prototype: nothing to resolve.
            return
        self.current_function = function.name
        scope_id = self.push_scope(ScopeKind.FUNCTION, name=function.name)
        function.scope_id = scope_id
        for param in function.params:
            self.declare(param)
        # The body block shares the function scope (paper: "function-wise
        # variables"); nested blocks get their own scopes.
        function.body.scope_id = scope_id
        for item in function.body.items:
            self.resolve_stmt(item)
        self.pop_scope()
        self.current_function = None

    def resolve_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            scope_id = self.push_scope(ScopeKind.BLOCK)
            stmt.scope_id = scope_id
            for item in stmt.items:
                self.resolve_stmt(item)
            self.pop_scope()
            return
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                if decl.init is not None:
                    self.resolve_expr(decl.init)
                if decl.init_list is not None:
                    for item in decl.init_list:
                        self.resolve_expr(item)
                self.declare(decl)
            return
        if isinstance(stmt, ast.ExprStmt):
            self.resolve_expr(stmt.expr)
            return
        if isinstance(stmt, ast.Empty):
            return
        if isinstance(stmt, ast.If):
            self.resolve_expr(stmt.condition)
            self.resolve_stmt(stmt.then_branch)
            if stmt.else_branch is not None:
                self.resolve_stmt(stmt.else_branch)
            return
        if isinstance(stmt, ast.While):
            self.resolve_expr(stmt.condition)
            self.resolve_stmt(stmt.body)
            return
        if isinstance(stmt, ast.DoWhile):
            self.resolve_stmt(stmt.body)
            self.resolve_expr(stmt.condition)
            return
        if isinstance(stmt, ast.For):
            scope_id = self.push_scope(ScopeKind.BLOCK, name="for")
            stmt.scope_id = scope_id
            if stmt.init is not None:
                self.resolve_stmt(stmt.init)
            if stmt.condition is not None:
                self.resolve_expr(stmt.condition)
            if stmt.step is not None:
                self.resolve_expr(stmt.step)
            self.resolve_stmt(stmt.body)
            self.pop_scope()
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.resolve_expr(stmt.value)
            return
        if isinstance(stmt, (ast.Break, ast.Continue, ast.Goto)):
            return
        if isinstance(stmt, ast.Label):
            self.resolve_stmt(stmt.statement)
            return
        raise MiniCTypeError(f"unsupported statement {stmt!r}")

    def resolve_expr(self, expr: ast.Expr) -> None:
        if isinstance(expr, ast.Identifier):
            decl = self.lookup(expr.name)
            if decl is None:
                raise MiniCTypeError(
                    f"use of undeclared identifier {expr.name!r} (line {expr.loc.line})"
                )
            expr.decl = decl
            expr.ctype = decl.var_type
            self.table.uses.append(
                VariableUse(
                    node=expr,
                    decl=decl,
                    scope_id=self.env[-1][0],
                    function=self.current_function,
                    order=self.order,
                )
            )
            self.order += 1
            return
        if isinstance(expr, (ast.IntLiteral, ast.CharLiteral, ast.StringLiteral)):
            return
        if isinstance(expr, ast.Unary):
            self.resolve_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self.resolve_expr(expr.left)
            self.resolve_expr(expr.right)
            return
        if isinstance(expr, ast.Assignment):
            self.resolve_expr(expr.target)
            self.resolve_expr(expr.value)
            return
        if isinstance(expr, ast.Conditional):
            self.resolve_expr(expr.condition)
            self.resolve_expr(expr.then_expr)
            self.resolve_expr(expr.else_expr)
            return
        if isinstance(expr, ast.Call):
            if expr.callee not in self.table.functions and expr.callee not in BUILTIN_FUNCTIONS:
                # Implicitly-declared functions are accepted (C89 style); the
                # interpreter reports an error if such a call is ever reached.
                pass
            for arg in expr.args:
                self.resolve_expr(arg)
            return
        if isinstance(expr, ast.Index):
            self.resolve_expr(expr.base)
            self.resolve_expr(expr.index)
            return
        if isinstance(expr, ast.Cast):
            self.resolve_expr(expr.operand)
            return
        raise MiniCTypeError(f"unsupported expression {expr!r}")


def resolve(unit: ast.TranslationUnit) -> SymbolTable:
    """Resolve identifiers, build the scope tree and collect variable uses."""
    return _Resolver().resolve_unit(unit)


__all__ = ["BUILTIN_FUNCTIONS", "SymbolTable", "VariableUse", "resolve"]
