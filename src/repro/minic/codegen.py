"""Batched skeleton execution: one generated Python function per skeleton.

The closure-compiled interpreter tiers (:mod:`repro.minic.interp`) still pay
a Python call per AST node per step.  For the raw-int subset that dominates
the generated corpus -- plain ``int`` scalars and arrays, goto-free
structured control flow, ``printf``/``putchar``/``exit``/``abort`` calls in
statement position -- a skeleton's whole ``main`` can instead be translated
**once** into a single Python function, with every hole site reading its
bound variable through a per-vector slot table.  Running a characteristic
vector is then one call of the generated function: no per-node dispatch, no
AST rebinding, no interpreter object.

Exactness contract (the generated tier must be byte-identical to
``run_unit`` on every eligible unit):

* **Tick accounting.**  Every expression node ticks once (``Index`` reads
  and index assignments tick twice, covering the base identifier's array
  decay), every statement ticks once, and loops tick once more per
  iteration -- exactly the interpreter's counts.  Because
  :class:`~repro.core.execution.ExecutionResult` exposes no step count,
  ticks may be *consolidated* across operations that cannot raise and
  produce no output: the emitter accumulates pending ticks and flushes a
  single ``s += k``/budget check before any UB-capable operation, any
  output, any ``return``/``break``/``continue`` and on every loop
  back-edge, so a TIMEOUT fires at the same observable boundary as the
  interpreter's per-node checks.
* **UB semantics.**  Overflow/shift/division/uninitialized-read checks are
  emitted inline with the interpreter's exact messages (the raw tier's,
  which match ``_arith_int``).
* **Eligibility.**  ``compile_skeleton_runner`` returns ``None`` whenever
  any construct falls outside the subset (other integer types, pointers,
  casts, user function calls, ``goto``/labels, duplicate declared names,
  value-position builtin calls, ...); callers fall back to the closure
  tiers, so coverage gaps cost speed, never correctness.

Hole sites are compiled to reads/writes of ``HC[k]`` -- the k-th hole's
bound cell list, resolved per vector from the skeleton binder's
``binding_maps`` -- so one generated body serves every characteristic
vector, which is what makes ``SkeletonRunner.run_batch`` a tight loop over
vectors around a single compiled program.
"""

from __future__ import annotations

from repro.core.execution import ExecutionResult, ExecutionStatus
from repro.minic import ast
from repro.minic.ctypes import INT, ArrayType, IntType
from repro.minic.errors import MiniCRuntimeError
from repro.minic.interp import UndefinedBehaviour, _Timeout

_INT_MIN = -(1 << 31)
_INT_MAX = (1 << 31) - 1

_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")
_BITWISE = ("&", "|", "^")


class _Bail(Exception):
    """Raised during translation when a construct leaves the raw subset."""


def _is_plain_int(ctype) -> bool:
    return ctype == INT


def _is_int_array(ctype) -> bool:
    return isinstance(ctype, ArrayType) and ctype.base == INT


def _decl_initialized(decl: ast.VarDecl) -> bool:
    """Is every execution of this declaration fully initializing?"""
    if decl.is_global:
        return True
    if isinstance(decl.var_type, ArrayType):
        return decl.init_list is not None
    return decl.init is not None


class _Emitter:
    """Translates one eligible translation unit into Python source."""

    def __init__(self, unit: ast.TranslationUnit, hole_index: dict[int, int],
                 hole_initialized: list[bool], binding_maps):
        self._unit = unit
        self._hole_index = hole_index  # id(Identifier) -> hole position
        self._hole_initialized = hole_initialized
        self._binding_maps = binding_maps
        # The declaration whose initializer is currently being translated:
        # the interpreter publishes a name only *after* its initializer ran,
        # so a hole in the initializer bound to the declaring variable
        # itself is an "unknown variable" error, not a cell read.
        self._declaring: ast.VarDecl | None = None
        self._lines: list[str] = []
        self._indent = 1
        self._pending = 0
        self._temps = 0
        self._flags = 0
        self._slot_of: dict[int, int] = {}  # id(VarDecl) -> slot
        self._decls: list[ast.VarDecl] = []
        # Loop context stack: (break_code, continue_code) for the innermost
        # enclosing loop of the *generated* code.
        self._loops: list[tuple[str, str | None]] = []

    # -- low-level emission -------------------------------------------------

    def _emit(self, line: str) -> None:
        self._lines.append("    " * self._indent + line)

    def _tick(self, count: int = 1) -> None:
        self._pending += count

    def _flush(self) -> None:
        """Emit the accumulated tick count and its budget check."""
        if self._pending:
            self._emit(f"s += {self._pending}" if self._pending > 1 else "s += 1")
            self._emit("if s > _ms: raise _TO()")
            self._pending = 0

    def _temp(self) -> str:
        self._temps += 1
        return f"_t{self._temps}"

    @staticmethod
    def _is_simple(expr: str) -> bool:
        """Safe to re-evaluate / already a bare temp or constant?"""
        if expr.startswith("_t") and expr[2:].isdigit():
            return True
        stripped = expr[1:] if expr.startswith("-") else expr
        return stripped.isdigit()

    def _cap(self, expr: str) -> str:
        """Materialize an expression into a temp unless it already is one."""
        if self._is_simple(expr):
            return expr
        temp = self._temp()
        self._emit(f"{temp} = {expr}")
        return temp

    def _pair(self, left: ast.Expr, right: ast.Expr) -> tuple[str, str]:
        """Generate both operands preserving left-before-right evaluation.

        If the right operand emits statements, a still-inline left operand
        is captured *before* them, so stores on the right cannot be observed
        by a pure read on the left.
        """
        left_str = self._expr(left)
        mark = len(self._lines)
        right_str = self._expr(right)
        if len(self._lines) > mark and not self._is_simple(left_str):
            temp = self._temp()
            self._lines.insert(mark, "    " * self._indent + f"{temp} = {left_str}")
            left_str = temp
        return left_str, right_str

    # -- variable access ----------------------------------------------------

    def _slot(self, decl: ast.VarDecl) -> int:
        slot = self._slot_of.get(id(decl))
        if slot is None:
            raise _Bail("use of a declaration outside the translated scope")
        return slot

    def _site(self, node: ast.Identifier) -> tuple[str, str, bool]:
        """Resolve an identifier site to (cells_expr, name_expr, initialized).

        ``name_expr`` is a Python expression producing the bound variable's
        name (for UB messages); hole sites read it from ``HN``.
        """
        hole = self._hole_index.get(id(node))
        if hole is not None:
            declaring = self._declaring
            if declaring is not None and any(
                candidate is declaring for candidate in self._binding_maps[hole].values()
            ):
                self._flush()
                self._emit(
                    f"if H[{hole}] == {self._slot(declaring)}: "
                    f"raise _RE('unknown variable %r' % (HN[{hole}],))"
                )
            return f"HC[{hole}]", f"HN[{hole}]", self._hole_initialized[hole]
        decl = node.decl
        if decl is None:
            raise _Bail("unresolved identifier")
        return f"c{self._slot(decl)}", repr(decl.name), _decl_initialized(decl)

    def _site_decl(self, node: ast.Identifier) -> ast.VarDecl:
        decl = node.decl
        if decl is None:
            raise _Bail("unresolved identifier")
        return decl

    # -- expressions ---------------------------------------------------------
    # Each _expr call adds the node's ticks to the pending counter and
    # returns a Python expression string; non-inline-safe constructs emit
    # statements (flushing pending ticks before anything that can raise).

    def _expr(self, node: ast.Expr) -> str:
        cls = node.__class__
        if cls is ast.IntLiteral:
            if node.suffix:
                raise _Bail("suffixed literal")
            self._tick()
            return repr(INT.wrap(node.value))
        if cls is ast.CharLiteral:
            self._tick()
            return repr(node.value)
        if cls is ast.Identifier:
            return self._scalar_read(node)
        if cls is ast.Index:
            return self._index_read(node)
        if cls is ast.Unary:
            return self._unary(node)
        if cls is ast.Binary:
            return self._binary(node)
        if cls is ast.Assignment:
            return self._assignment(node)
        if cls is ast.Conditional:
            return self._conditional(node)
        raise _Bail(f"expression {cls.__name__}")

    def _scalar_read(self, node: ast.Identifier) -> str:
        decl = self._site_decl(node)
        if not _is_plain_int(decl.var_type):
            raise _Bail("non-int scalar read")
        cells, name, initialized = self._site(node)
        self._tick()
        if initialized:
            return f"{cells}[0]"
        temp = self._temp()
        self._flush()
        self._emit(f"{temp} = {cells}[0]")
        self._emit(f"if {temp} is None: raise _UB('read of uninitialized value %r' % ({name},))")
        return temp

    def _array_site(self, node: ast.Expr) -> tuple[str, str, int, bool]:
        """An Index base: (cells_expr, name_expr, static size, initialized)."""
        if node.__class__ is not ast.Identifier:
            raise _Bail("index base is not an identifier")
        decl = self._site_decl(node)
        if not _is_int_array(decl.var_type):
            raise _Bail("index base is not an int array")
        cells, name, initialized = self._site(node)
        return cells, name, decl.var_type.size, initialized

    def _index_read(self, node: ast.Index) -> str:
        cells, name, size, initialized = self._array_site(node.base)
        self._tick(2)  # the Index node plus the base identifier's decay
        index = self._cap(self._expr(node.index))
        self._flush()
        self._emit(
            f"if not 0 <= {index} < {size}: "
            f"raise _UB('out-of-bounds access to %r at offset %d' % ({name}, {index}))"
        )
        temp = self._temp()
        self._emit(f"{temp} = {cells}[{index}]")
        if not initialized:
            self._emit(
                f"if {temp} is None: raise _UB('read of uninitialized value %r' % ({name},))"
            )
        return temp

    def _unary(self, node: ast.Unary) -> str:
        op = node.op
        if op in ("++", "--"):
            target = node.operand
            if target.__class__ is not ast.Identifier:
                raise _Bail("++/-- of a non-identifier")
            decl = self._site_decl(target)
            if not _is_plain_int(decl.var_type):
                raise _Bail("++/-- of a non-int")
            cells, name, initialized = self._site(target)
            self._tick()
            self._flush()
            old = self._temp()
            self._emit(f"{old} = {cells}[0]")
            if not initialized:
                self._emit(
                    f"if {old} is None: raise _UB('read of uninitialized value %r' % ({name},))"
                )
            delta = 1 if op == "++" else -1
            new = self._temp()
            self._emit(f"{new} = {old} + {delta}")
            self._emit(
                f"if {new} < {_INT_MIN} or {new} > {_INT_MAX}: "
                f"raise _UB('signed integer overflow: %d + %d does not fit in int' % ({old}, {delta}))"
            )
            self._emit(f"{cells}[0] = {new}")
            return old if node.postfix else new
        if op == "+":
            self._tick()
            return self._expr(node.operand)
        if op == "!":
            self._tick()
            operand = self._expr(node.operand)
            return f"(0 if ({operand}) != 0 else 1)"
        if op == "~":
            self._tick()
            operand = self._expr(node.operand)
            return f"(~({operand}))"
        if op == "-":
            self._tick()
            operand = self._cap(self._expr(node.operand))
            self._flush()
            temp = self._temp()
            self._emit(f"{temp} = -{operand}")
            self._emit(
                f"if {temp} < {_INT_MIN} or {temp} > {_INT_MAX}: "
                f"raise _UB('signed integer overflow: 0 - %d does not fit in int' % ({operand},))"
            )
            return temp
        raise _Bail(f"unary {op!r}")

    def _binary(self, node: ast.Binary) -> str:
        op = node.op
        if op in ("&&", "||"):
            self._tick()
            left = self._expr(node.left)
            self._flush()
            temp = self._temp()
            zero_result, test = ("0", "==") if op == "&&" else ("1", "!=")
            self._emit(f"if ({left}) {test} 0:")
            self._indent += 1
            self._emit(f"{temp} = {zero_result}")
            self._indent -= 1
            self._emit("else:")
            self._indent += 1
            right = self._expr(node.right)
            self._flush()
            self._emit(f"{temp} = 1 if ({right}) != 0 else 0")
            self._indent -= 1
            return temp
        if op == ",":
            self._tick()
            left = self._expr(node.left)
            if not self._is_simple(left):
                self._emit(f"{self._temp()} = {left}")
            return self._expr(node.right)
        if op in _COMPARISONS:
            self._tick()
            left, right = self._pair(node.left, node.right)
            return f"(1 if ({left}) {op} ({right}) else 0)"
        if op in _BITWISE:
            self._tick()
            left, right = self._pair(node.left, node.right)
            temp = self._temp()
            self._emit(f"{temp} = (({left}) & 0xFFFFFFFF) {op} (({right}) & 0xFFFFFFFF)")
            self._emit(f"if {temp} >= 0x80000000: {temp} -= 0x100000000")
            return temp
        if op in ("+", "-", "*", "/", "%", "<<", ">>"):
            self._tick()
            left_str = self._expr(node.left)
            left = self._cap(left_str)
            right = self._cap(self._expr(node.right))
            self._flush()
            return self._arith(op, left, right)
        raise _Bail(f"binary {op!r}")

    def _arith(self, op: str, left: str, right: str) -> str:
        """Emit one raw arithmetic operation (operands already in temps,
        pending ticks flushed); mirrors ``_make_raw_binary`` exactly."""
        temp = self._temp()
        if op in ("+", "-", "*"):
            self._emit(f"{temp} = {left} {op} {right}")
            self._emit(
                f"if {temp} < {_INT_MIN} or {temp} > {_INT_MAX}: "
                f"raise _UB('signed integer overflow: %d {op} %d does not fit in int'"
                f" % ({left}, {right}))"
            )
            return temp
        if op in ("/", "%"):
            self._emit(f"if {right} == 0: raise _UB('division by zero')")
            quotient = self._temp()
            self._emit(f"{quotient} = abs({left}) // abs({right})")
            self._emit(f"if ({left} < 0) != ({right} < 0): {quotient} = -{quotient}")
            if op == "/":
                self._emit(
                    f"if {left} == {_INT_MIN} and {right} == -1: "
                    "raise _UB('signed division overflow')"
                )
                return quotient
            self._emit(f"{temp} = {left} - {quotient} * {right}")
            return temp
        if op in ("<<", ">>"):
            self._emit(
                f"if {right} < 0 or {right} >= 32: "
                f"raise _UB('shift amount %d out of range for int' % ({right},))"
            )
            if op == "<<":
                self._emit(f"if {left} < 0: raise _UB('left shift of a negative value')")
                self._emit(f"{temp} = {left} << {right}")
                self._emit(
                    f"if {temp} > {_INT_MAX}: "
                    f"raise _UB('signed integer overflow: %d << %d does not fit in int'"
                    f" % ({left}, {right}))"
                )
            else:
                self._emit(f"{temp} = {left} >> {right}")
            return temp
        raise _Bail(f"arithmetic {op!r}")

    def _compound_value(self, op: str, current: str, value: str) -> str:
        """``current op value`` with ``_arith_int(INT, ...)`` semantics: like
        the raw operators, plus the final 32-bit wrap (observable for ``%``)."""
        if op in _BITWISE:
            temp = self._temp()
            self._emit(f"{temp} = (({current}) & 0xFFFFFFFF) {op} (({value}) & 0xFFFFFFFF)")
            self._emit(f"if {temp} >= 0x80000000: {temp} -= 0x100000000")
            return temp
        result = self._arith(op, current, value)
        if op == "%":
            self._emit(f"{result} &= 0xFFFFFFFF")
            self._emit(f"if {result} >= 0x80000000: {result} -= 0x100000000")
        return result

    def _assignment(self, node: ast.Assignment) -> str:
        target = node.target
        if target.__class__ is ast.Index:
            return self._index_assignment(node)
        if target.__class__ is not ast.Identifier:
            raise _Bail("assignment target is not an identifier")
        decl = self._site_decl(target)
        if not _is_plain_int(decl.var_type):
            raise _Bail("assignment to a non-int scalar")
        cells, name, initialized = self._site(target)
        self._tick()
        if node.op == "=":
            value = self._cap(self._expr(node.value))
            self._emit(f"{cells}[0] = {value}")
            return value
        value = self._cap(self._expr(node.value))
        self._flush()
        current = self._temp()
        self._emit(f"{current} = {cells}[0]")
        if not initialized:
            self._emit(
                f"if {current} is None: raise _UB('read of uninitialized value %r' % ({name},))"
            )
        stored = self._compound_value(node.op[:-1], current, value)
        self._emit(f"{cells}[0] = {stored}")
        return stored

    def _index_assignment(self, node: ast.Assignment) -> str:
        cells, name, size, initialized = self._array_site(node.target.base)
        self._tick(2)  # the Assignment node plus the base identifier decay
        index = self._cap(self._expr(node.target.index))
        self._flush()
        self._emit(
            f"if not 0 <= {index} < {size}: "
            f"raise _UB('out-of-bounds access to %r at offset %d' % ({name}, {index}))"
        )
        value = self._cap(self._expr(node.value))
        if node.op == "=":
            self._emit(f"{cells}[{index}] = {value}")
            return value
        self._flush()
        current = self._temp()
        self._emit(f"{current} = {cells}[{index}]")
        if not initialized:
            self._emit(
                f"if {current} is None: raise _UB('read of uninitialized value %r' % ({name},))"
            )
        stored = self._compound_value(node.op[:-1], current, value)
        self._emit(f"{cells}[{index}] = {stored}")
        return stored

    def _conditional(self, node: ast.Conditional) -> str:
        self._tick()
        condition = self._expr(node.condition)
        self._flush()
        temp = self._temp()
        self._emit(f"if ({condition}) != 0:")
        self._indent += 1
        then_value = self._expr(node.then_expr)
        self._flush()
        self._emit(f"{temp} = {then_value}")
        self._indent -= 1
        self._emit("else:")
        self._indent += 1
        else_value = self._expr(node.else_expr)
        self._flush()
        self._emit(f"{temp} = {else_value}")
        self._indent -= 1
        return temp

    # -- builtin calls in statement position ---------------------------------

    def _call_stmt(self, call: ast.Call) -> None:
        callee = call.callee
        self._tick()  # the Call node
        if callee == "printf":
            self._printf(call)
            return
        if callee in ("abort", "__builtin_abort"):
            self._flush()
            self._emit("return 134")
            return
        if callee == "exit":
            if call.args:
                code = self._cap(self._expr(call.args[0]))
            else:
                code = "0"
            self._flush()
            self._emit(f"return {code}")
            return
        if callee == "putchar":
            value = self._cap(self._expr(call.args[0])) if call.args else "0"
            self._flush()
            self._emit(f"_out.append(chr(({value}) & 0xFF))")
            return
        raise _Bail(f"call of {callee!r}")

    def _printf(self, call: ast.Call) -> None:
        if not call.args or not isinstance(call.args[0], ast.StringLiteral):
            raise _Bail("printf without a string-literal format")
        # Arguments are evaluated first (each captured so a later argument's
        # side effects cannot reorder an earlier pure read), then the format
        # is expanded; output is appended in one piece only if no conversion
        # ran out of arguments -- exactly _builtin_printf.
        values = [self._cap(self._expr(arg)) for arg in call.args[1:]]
        segments = _parse_printf_format(call.args[0].value)
        parts: list[str] = []
        value_index = 0
        for kind, text in segments:
            if kind == "lit":
                parts.append(repr(text))
                continue
            if value_index >= len(values):
                self._flush()
                self._emit("raise _UB('printf: not enough arguments for format')")
                return
            value = values[value_index]
            value_index += 1
            if kind == "d":
                parts.append(f"str({value})")
            elif kind == "u":
                parts.append(f"str({value} % 4294967296)")
            elif kind == "x":
                parts.append(f"format({value} % 4294967296, 'x')")
            else:  # "c"
                parts.append(f"chr({value} & 0xFF)")
        self._flush()
        if parts:
            self._emit(f"_out.append({' + '.join(parts)})")
        else:
            self._emit("_out.append('')")

    # -- statements ----------------------------------------------------------

    def _stmt(self, node: ast.Stmt) -> None:
        cls = node.__class__
        if cls is ast.Block:
            self._tick()
            for item in node.items:
                self._stmt(item)
            return
        if cls is ast.DeclStmt:
            self._tick()
            for decl in node.decls:
                self._declare(decl)
            return
        if cls is ast.ExprStmt:
            self._tick()
            expr = node.expr
            if expr.__class__ is ast.Call:
                self._call_stmt(expr)
                return
            value = self._expr(expr)
            if not self._is_simple(value):
                self._emit(f"{self._temp()} = {value}")
            return
        if cls is ast.Empty:
            self._tick()
            return
        if cls is ast.If:
            self._if(node)
            return
        if cls is ast.While:
            self._while(node)
            return
        if cls is ast.DoWhile:
            self._do_while(node)
            return
        if cls is ast.For:
            self._for(node)
            return
        if cls is ast.Return:
            self._return(node)
            return
        if cls is ast.Break:
            self._tick()
            self._flush()
            break_code = self._loops[-1][0] if self._loops else None
            if break_code is None:
                raise _Bail("break outside a loop")
            for line in break_code.split("\n"):
                self._emit(line)
            return
        if cls is ast.Continue:
            self._tick()
            self._flush()
            continue_code = self._loops[-1][1] if self._loops else None
            if continue_code is None:
                raise _Bail("continue outside a loop")
            self._emit(continue_code)
            return
        raise _Bail(f"statement {cls.__name__}")

    def _declare(self, decl: ast.VarDecl) -> None:
        cells = f"c{self._slot(decl)}"
        var_type = decl.var_type
        self._declaring = decl
        try:
            if isinstance(var_type, ArrayType):
                if not _is_int_array(var_type):
                    raise _Bail("non-int array declaration")
                size = var_type.size
                if decl.init_list is not None:
                    if len(decl.init_list) > size:
                        raise _Bail("too many array initializers")
                    for index, item in enumerate(decl.init_list):
                        value = self._cap(self._expr(item))
                        self._emit(f"{cells}[{index}] = {value}")
                    remaining = size - len(decl.init_list)
                    if remaining:
                        self._emit(f"{cells}[{len(decl.init_list)}:] = (0,) * {remaining}")
                elif not decl.is_global:
                    self._emit(f"{cells}[:] = (None,) * {size}")
                return
            if not _is_plain_int(var_type):
                raise _Bail("non-int scalar declaration")
            if decl.init is not None:
                value = self._expr(decl.init)
                self._emit(f"{cells}[0] = {value}")
            elif not decl.is_global:
                self._emit(f"{cells}[0] = None")
        finally:
            self._declaring = None

    def _if(self, node: ast.If) -> None:
        self._tick()
        condition = self._expr(node.condition)
        self._flush()
        self._emit(f"if ({condition}) != 0:")
        self._indent += 1
        self._stmt(node.then_branch)
        self._flush()
        self._emit("pass")
        self._indent -= 1
        if node.else_branch is not None:
            self._emit("else:")
            self._indent += 1
            self._stmt(node.else_branch)
            self._flush()
            self._emit("pass")
            self._indent -= 1

    def _while(self, node: ast.While) -> None:
        self._tick()  # the While node itself
        self._flush()
        self._emit("while True:")
        self._indent += 1
        self._tick()  # per-iteration tick, checked before the condition
        condition = self._expr(node.condition)
        self._flush()
        self._emit(f"if ({condition}) == 0: break")
        self._loops.append(("break", "continue"))
        self._stmt(node.body)
        self._loops.pop()
        self._flush()
        self._emit("pass")
        self._indent -= 1

    def _region(self, body: ast.Stmt) -> None:
        """Emit a loop body whose ``continue`` must fall through to trailing
        loop code (the do-while condition / for step): run it in a dummy
        single-iteration ``for`` so ``continue`` exits the region, with a
        flag carrying a real ``break`` across the region boundary."""
        if not _binds_continue(body):
            self._loops.append(("break", None))
            self._stmt(body)
            self._loops.pop()
            self._flush()
            return
        self._flags += 1
        flag = f"_brk{self._flags}"
        self._emit(f"{flag} = False")
        self._emit("for _ in _ONCE:")
        self._indent += 1
        self._loops.append((f"{flag} = True\nbreak", "continue"))
        self._stmt(body)
        self._loops.pop()
        self._flush()
        self._emit("pass")
        self._indent -= 1
        self._emit(f"if {flag}: break")

    def _do_while(self, node: ast.DoWhile) -> None:
        self._tick()
        self._flush()
        self._emit("while True:")
        self._indent += 1
        self._tick()  # per-iteration tick, checked before the body
        self._flush()
        self._region(node.body)
        condition = self._expr(node.condition)
        self._flush()
        self._emit(f"if ({condition}) == 0: break")
        self._indent -= 1

    def _for(self, node: ast.For) -> None:
        self._tick()
        if node.init is not None:
            self._stmt(node.init)
        self._flush()
        self._emit("while True:")
        self._indent += 1
        self._tick()  # per-iteration tick, checked before the condition
        if node.condition is not None:
            condition = self._expr(node.condition)
            self._flush()
            self._emit(f"if ({condition}) == 0: break")
        else:
            self._flush()
        self._region(node.body)
        if node.step is not None:
            step = self._expr(node.step)
            if not self._is_simple(step):
                self._emit(f"{self._temp()} = {step}")
        self._flush()
        self._emit("pass")
        self._indent -= 1

    def _return(self, node: ast.Return) -> None:
        self._tick()
        if node.value is None:
            self._flush()
            self._emit("return None")
            return
        self._flush()  # the Return tick is checked before the value runs
        value = self._expr(node.value)
        self._flush()
        self._emit(f"return {value}")

    # -- whole-unit translation ----------------------------------------------

    def translate(self) -> tuple[str, dict[int, int]]:
        """Build the generated function source; returns (source, slot map)."""
        unit = self._unit
        # Mirror the interpreter's entry lookup: prototype-like empty bodies
        # are not definitions, and a later definition shadows an earlier one.
        main = None
        for fn in unit.functions():
            if fn.name == "main" and (fn.body.items or fn.body.loc.line != 0):
                main = fn
        if main is None:
            raise _Bail("no main definition")
        if main.params:
            raise _Bail("main has parameters")
        for node in main.body.walk():
            if isinstance(node, (ast.Goto, ast.Label)):
                raise _Bail("goto/label")

        # Collect every declaration the generated code can touch (globals +
        # main's locals, in declaration order) and reject duplicate names:
        # with unique names, environment-dict scoping collapses to one fixed
        # cell list per declaration.
        names: set[str] = set()
        for decl in unit.globals():
            self._register(decl, names)
        for node in main.body.walk():
            if isinstance(node, ast.VarDecl):
                self._register(node, names)

        header: list[str] = []
        for decl in self._decls:
            slot = self._slot_of[id(decl)]
            if isinstance(decl.var_type, ArrayType):
                fill = "0" if decl.is_global else "None"
                header.append(f"    c{slot} = [{fill}] * {decl.var_type.size}")
            else:
                fill = "0" if decl.is_global else "None"
                header.append(f"    c{slot} = [{fill}]")
        slots = ", ".join(f"c{self._slot_of[id(decl)]}" for decl in self._decls)
        if self._decls:
            trailing = "," if len(self._decls) == 1 else ""
            header.append(f"    _S = ({slots}{trailing})")
            header.append("    HC = [_S[i] for i in H]")
        header.append("    s = 0")

        # Global initializers run before main, in declaration order, with
        # ordinary expression ticks (the interpreter evaluates them through
        # the same per-node accounting).
        for decl in unit.globals():
            self._declare(decl)
        self._stmt_list(main.body.items)
        self._flush()
        self._emit("return None")

        body = "\n".join(header + self._lines)
        source = f"def _skeleton_main(H, HN, _ms, _out):\n{body}\n"
        return source, dict(self._slot_of)

    def _stmt_list(self, items: list[ast.Stmt]) -> None:
        for item in items:
            self._stmt(item)

    def _register(self, decl: ast.VarDecl, names: set[str]) -> None:
        if decl.is_param:
            raise _Bail("parameters are outside the subset")
        if decl.name in names:
            raise _Bail(f"duplicate declared name {decl.name!r}")
        names.add(decl.name)
        if not (_is_plain_int(decl.var_type) or _is_int_array(decl.var_type)):
            raise _Bail(f"declaration of type {decl.var_type.spelling()!r}")
        self._slot_of[id(decl)] = len(self._decls)
        self._decls.append(decl)


def _binds_continue(body: ast.Stmt) -> bool:
    """Does ``body`` lexically contain a ``continue`` bound to this loop?"""
    stack = [body]
    while stack:
        node = stack.pop()
        cls = node.__class__
        if cls is ast.Continue:
            return True
        if cls in (ast.While, ast.DoWhile, ast.For):
            continue  # an inner loop captures its own continues
        stack.extend(child for child in node.children() if isinstance(child, ast.Stmt))
    return False


def _parse_printf_format(format_string: str) -> list[tuple[str, str]]:
    """Split a printf format into ('lit', text) and conversion segments,
    mirroring ``_builtin_printf``'s specifier scanner exactly."""
    segments: list[tuple[str, str]] = []
    literal: list[str] = []
    position = 0
    while position < len(format_string):
        char = format_string[position]
        if char != "%":
            literal.append(char)
            position += 1
            continue
        specifier = ""
        position += 1
        while position < len(format_string) and format_string[position] in "ldux%c":
            specifier += format_string[position]
            position += 1
            if specifier[-1] in "duxc%":
                break
        if specifier == "%":
            literal.append("%")
            continue
        if literal:
            segments.append(("lit", "".join(literal)))
            literal = []
        if specifier.endswith("d"):
            segments.append(("d", specifier))
        elif specifier.endswith("u"):
            segments.append(("u", specifier))
        elif specifier.endswith("x"):
            segments.append(("x", specifier))
        elif specifier.endswith("c"):
            segments.append(("c", specifier))
        else:
            # A bare/length-only specifier ("%l", "%" at end) consumes an
            # argument and prints it as decimal, like the interpreter's
            # fall-through branch.
            segments.append(("d", specifier))
    if literal:
        segments.append(("lit", "".join(literal)))
    return segments


#: The vectorized trampoline, compiled once into each skeleton's namespace
#: (next to ``_skeleton_main``): a whole chunk of characteristic vectors runs
#: through one Python-level entry call, with the per-vector try/except and
#: :class:`ExecutionResult` construction inside compiled code instead of the
#: interpreter-visible ``run`` wrapper.  The exception ladder, the detail
#: strings and the exit-code normalisation mirror :meth:`SkeletonRunner.run`
#: exactly -- the vectorized tier is observationally identical to calling
#: ``run`` per vector.
_BATCH_SOURCE = """\
def _skeleton_batch(_frames, _ms, _results):
    _append = _results.append
    _join = ''.join
    _main = _skeleton_main
    for H, HN in _frames:
        _out = []
        try:
            _code = _main(H, HN, _ms, _out)
        except _UB as _e:
            _append(_R(_UNDEFINED, None, _join(_out), _e.reason))
            continue
        except _TO:
            _append(_R(_TIMEOUT, None, _join(_out), 'step budget exhausted'))
            continue
        except _RE as _e:
            _append(_R(_ERROR, None, _join(_out), str(_e)))
            continue
        _append(_R(_OK, _code & 0xFF if type(_code) is int else 0, _join(_out)))
"""


class SkeletonRunner:
    """One compiled skeleton body plus per-vector hole-slot resolution."""

    __slots__ = ("_fn", "_batch", "_hole_slots")

    def __init__(self, fn, hole_slots: list[dict[str, int]], batch=None):
        self._fn = fn
        self._batch = batch
        self._hole_slots = hole_slots

    def run(self, vector, max_steps: int = 200_000) -> ExecutionResult:
        """Execute one characteristic vector; mirrors ``Interpreter.run``."""
        hole_slots = self._hole_slots
        names = tuple(vector)
        H = tuple(hole_slots[k][name] for k, name in enumerate(names))
        out: list[str] = []
        try:
            code = self._fn(H, names, max_steps, out)
        except UndefinedBehaviour as ub:
            return ExecutionResult(
                ExecutionStatus.UNDEFINED, stdout="".join(out), detail=ub.reason
            )
        except _Timeout:
            return ExecutionResult(
                ExecutionStatus.TIMEOUT, stdout="".join(out), detail="step budget exhausted"
            )
        except MiniCRuntimeError as error:
            return ExecutionResult(
                ExecutionStatus.ERROR, stdout="".join(out), detail=str(error)
            )
        exit_code = code & 0xFF if type(code) is int else 0
        return ExecutionResult(ExecutionStatus.OK, exit_code=exit_code, stdout="".join(out))

    def run_batch(self, vectors, max_steps: int = 200_000) -> list[ExecutionResult]:
        """Execute a whole batch of characteristic vectors through the one
        compiled body -- the tight loop the campaign's batch tier calls.

        The argument frames (hole-slot tuple + name tuple per vector) are
        precomputed in bulk, then the whole batch enters the generated
        ``_skeleton_batch`` trampoline in **one** Python call; falls back to
        per-vector :meth:`run` for runners compiled before the vectorized
        tier existed (pickled/cached runners without a batch function).
        """
        batch = self._batch
        if batch is None:
            run = self.run
            return [run(vector, max_steps) for vector in vectors]
        hole_slots = self._hole_slots
        frames = []
        append = frames.append
        for vector in vectors:
            names = tuple(vector)
            append(
                (tuple(slots[name] for slots, name in zip(hole_slots, names)), names)
            )
        results: list[ExecutionResult] = []
        batch(frames, max_steps, results)
        return results


def compile_skeleton_runner(unit: ast.TranslationUnit, identifiers, binding_maps) -> SkeletonRunner | None:
    """Translate one skeleton's unit into a :class:`SkeletonRunner`.

    Args:
        unit: the skeleton's parsed + resolved translation unit.
        identifiers: the hole ``Identifier`` nodes, in hole order.
        binding_maps: per hole, ``candidate name -> VarDecl``.

    Returns ``None`` when any construct is outside the raw subset; callers
    fall back to the closure-compiled interpreter tiers.
    """
    hole_index = {id(node): k for k, node in enumerate(identifiers)}
    hole_initialized = [
        bool(candidates) and all(_decl_initialized(decl) for decl in candidates.values())
        for candidates in binding_maps
    ]
    emitter = _Emitter(unit, hole_index, hole_initialized, binding_maps)
    try:
        source, slot_of = emitter.translate()
    except _Bail:
        return None
    namespace = {
        "_UB": UndefinedBehaviour,
        "_TO": _Timeout,
        "_RE": MiniCRuntimeError,
        "_ONCE": (0,),
        "_R": ExecutionResult,
        "_OK": ExecutionStatus.OK,
        "_UNDEFINED": ExecutionStatus.UNDEFINED,
        "_TIMEOUT": ExecutionStatus.TIMEOUT,
        "_ERROR": ExecutionStatus.ERROR,
    }
    try:
        exec(compile(source, "<skeleton-codegen>", "exec"), namespace)
        exec(compile(_BATCH_SOURCE, "<skeleton-codegen-batch>", "exec"), namespace)
    except SyntaxError:  # pragma: no cover - a codegen bug, not an input property
        return None
    fn = namespace["_skeleton_main"]
    hole_slots = [
        {name: slot_of.get(id(decl), 0) for name, decl in candidates.items()}
        for candidates in binding_maps
    ]
    return SkeletonRunner(fn, hole_slots, batch=namespace["_skeleton_batch"])


def runner_for_skeleton(skeleton) -> SkeletonRunner | None:
    """The memoised per-skeleton runner (``False`` sentinel caches bails)."""
    cached = skeleton.metadata.get("codegen_runner", None)
    if cached is None:
        binder = skeleton.metadata.get("binder")
        if binder is None:
            cached = False
        else:
            runner = compile_skeleton_runner(
                binder.unit, binder.identifiers, binder.binding_maps
            )
            cached = runner if runner is not None else False
        skeleton.metadata["codegen_runner"] = cached
    return cached if cached is not False else None


__all__ = ["SkeletonRunner", "compile_skeleton_runner", "runner_for_skeleton"]
