"""Figure 8 -- distribution of per-file variant counts and reduction ratios.

Figure 8(a) plots, for both the naive and the SPE enumeration, the fraction
of corpus files whose variant count falls in each decade bucket
``[1,10), [10,100), ...``; Figure 8(b) plots the average fraction of variants
that SPE eliminates within each bucket.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spe import SkeletonEnumerator
from repro.experiments.reporting import format_histogram
from repro.experiments.table1 import build_corpus
from repro.minic.errors import MiniCError
from repro.minic.skeleton import extract_skeleton

BUCKETS = 11  # [1,10) ... [1e9,1e10) and >= 1e10


@dataclass
class Fig8Result:
    naive_distribution: list[float] = field(default_factory=list)
    spe_distribution: list[float] = field(default_factory=list)
    reduction_ratio: list[float] = field(default_factory=list)
    labels: list[str] = field(default_factory=list)
    files: int = 0


def _bucket(count: int) -> int:
    if count <= 0:
        return 0
    bucket = 0
    while count >= 10 and bucket < BUCKETS - 1:
        count //= 10
        bucket += 1
    return bucket


def run(files: int = 120, seed: int = 2017) -> Fig8Result:
    corpus = build_corpus(files=files, seed=seed)
    naive_counts: list[int] = []
    spe_counts: list[int] = []
    for name, source in corpus.items():
        try:
            skeleton = extract_skeleton(source, name=name)
        except MiniCError:
            continue
        enumerator = SkeletonEnumerator(skeleton)
        naive_counts.append(enumerator.naive_count())
        spe_counts.append(enumerator.count())

    total = len(naive_counts)
    naive_hist = [0] * BUCKETS
    spe_hist = [0] * BUCKETS
    ratio_sum = [0.0] * BUCKETS
    ratio_n = [0] * BUCKETS
    for naive, spe in zip(naive_counts, spe_counts):
        naive_hist[_bucket(naive)] += 1
        spe_hist[_bucket(spe)] += 1
        bucket = _bucket(naive)
        if naive > 0:
            ratio_sum[bucket] += 1.0 - (spe / naive)
            ratio_n[bucket] += 1

    labels = [f"[1e{i},1e{i+1})" for i in range(BUCKETS - 1)] + [f">=1e{BUCKETS - 1}"]
    return Fig8Result(
        naive_distribution=[count / total if total else 0.0 for count in naive_hist],
        spe_distribution=[count / total if total else 0.0 for count in spe_hist],
        reduction_ratio=[
            (ratio_sum[i] / ratio_n[i]) if ratio_n[i] else 0.0 for i in range(BUCKETS)
        ],
        labels=labels,
        files=total,
    )


def render(result: Fig8Result) -> str:
    parts = [
        format_histogram(
            result.labels,
            [round(value, 3) for value in result.naive_distribution],
            title="Figure 8(a): fraction of files per variant-count decade (naive)",
        ),
        format_histogram(
            result.labels,
            [round(value, 3) for value in result.spe_distribution],
            title="Figure 8(a): fraction of files per variant-count decade (SPE)",
        ),
        format_histogram(
            result.labels,
            [round(value, 3) for value in result.reduction_ratio],
            title="Figure 8(b): average fraction of variants eliminated by SPE",
        ),
    ]
    return "\n\n".join(parts)


__all__ = ["Fig8Result", "render", "run"]
