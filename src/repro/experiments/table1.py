"""Table 1 -- enumeration size reduction: naive vs combinatorial SPE.

For every corpus file we compute the naive (scope/type-aware Cartesian
product) solution size and the canonical SPE solution size, then aggregate
exactly the columns of the paper's Table 1: total size, average size and file
count, first for the whole corpus and then for the subset below the
enumeration threshold (10 000 variants in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.spe import SkeletonEnumerator
from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.corpus.seeds import paper_seed_programs
from repro.experiments.reporting import format_table, scientific
from repro.minic.errors import MiniCError
from repro.minic.skeleton import extract_skeleton


@dataclass
class Table1Row:
    approach: str
    total_size: int
    average_size: float
    files: int


@dataclass
class Table1Result:
    """The four rows of Table 1 (original corpus and thresholded corpus)."""

    original: list[Table1Row] = field(default_factory=list)
    thresholded: list[Table1Row] = field(default_factory=list)
    threshold: int = 10_000
    reduction_orders_of_magnitude: float = 0.0
    per_file: list[dict] = field(default_factory=list)


def build_corpus(files: int = 120, seed: int = 2017) -> dict[str, str]:
    """The default corpus: the hand-written seeds plus synthetic files."""
    corpus = dict(paper_seed_programs())
    generator = CorpusGenerator(GeneratorConfig(seed=seed))
    corpus.update(generator.generate(max(0, files - len(corpus))))
    return corpus


def run(files: int = 120, threshold: int = 10_000, seed: int = 2017) -> Table1Result:
    """Compute Table 1 over ``files`` corpus programs."""
    corpus = build_corpus(files=files, seed=seed)
    result = Table1Result(threshold=threshold)

    naive_sizes: list[int] = []
    spe_sizes: list[int] = []
    names: list[str] = []
    for name, source in corpus.items():
        try:
            skeleton = extract_skeleton(source, name=name)
        except MiniCError:
            continue
        enumerator = SkeletonEnumerator(skeleton)
        naive = enumerator.naive_count()
        spe = enumerator.count()
        naive_sizes.append(naive)
        spe_sizes.append(spe)
        names.append(name)
        result.per_file.append({"file": name, "naive": naive, "spe": spe})

    def rows(naive: list[int], spe: list[int], count: int) -> list[Table1Row]:
        total_naive = sum(naive)
        total_spe = sum(spe)
        return [
            Table1Row("Naive", total_naive, total_naive / count if count else 0.0, count),
            Table1Row("Our", total_spe, total_spe / count if count else 0.0, count),
        ]

    result.original = rows(naive_sizes, spe_sizes, len(names))

    kept = [index for index, size in enumerate(spe_sizes) if size <= threshold]
    result.thresholded = rows(
        [naive_sizes[i] for i in kept], [spe_sizes[i] for i in kept], len(kept)
    )

    naive_total = result.thresholded[0].total_size
    spe_total = result.thresholded[1].total_size
    if naive_total > 0 and spe_total > 0:
        import math

        result.reduction_orders_of_magnitude = math.log10(naive_total) - math.log10(spe_total)
    return result


def render(result: Table1Result) -> str:
    """Render the Table 1 reproduction as text."""
    headers = ["Approach", "Total Size", "Avg. Size", "#Files"]

    def to_rows(rows: list[Table1Row]) -> list[list[object]]:
        return [
            [row.approach, scientific(row.total_size), scientific(int(row.average_size)), row.files]
            for row in rows
        ]

    original = format_table(headers, to_rows(result.original), title="Original corpus")
    thresholded = format_table(
        headers,
        to_rows(result.thresholded),
        title=f"Enumerated corpus (threshold {result.threshold})",
    )
    footer = (
        f"Size reduction on the thresholded corpus: "
        f"{result.reduction_orders_of_magnitude:.1f} orders of magnitude"
    )
    return "\n\n".join([original, thresholded, footer])


__all__ = ["Table1Result", "Table1Row", "build_corpus", "render", "run"]
