"""Table 2 -- test-suite characteristics (original vs. thresholded corpus)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.spe import SkeletonEnumerator
from repro.corpus.stats import SuiteStatistics, corpus_statistics
from repro.experiments.reporting import format_table
from repro.experiments.table1 import build_corpus
from repro.minic.errors import MiniCError
from repro.minic.skeleton import extract_skeleton


@dataclass
class Table2Result:
    original: SuiteStatistics
    thresholded: SuiteStatistics
    threshold: int


def run(files: int = 120, threshold: int = 10_000, seed: int = 2017) -> Table2Result:
    """Compute per-file characteristics of the corpus before/after thresholding."""
    corpus = build_corpus(files=files, seed=seed)
    skeletons = []
    kept = []
    for name, source in corpus.items():
        try:
            skeleton = extract_skeleton(source, name=name)
        except MiniCError:
            continue
        skeletons.append(skeleton)
        if SkeletonEnumerator(skeleton).count() <= threshold:
            kept.append(skeleton)
    return Table2Result(
        original=corpus_statistics(skeletons),
        thresholded=corpus_statistics(kept),
        threshold=threshold,
    )


def render(result: Table2Result) -> str:
    headers = ["Test-Suite", "#Holes", "#Scopes", "#Funcs", "#Types", "#Vars", "#Files"]
    rows = []
    for label, stats in (("Original", result.original), ("Enumerated", result.thresholded)):
        row = stats.as_row()
        rows.append(
            [
                label,
                row["#Holes"],
                row["#Scopes"],
                row["#Funcs"],
                row["#Types"],
                row["#Vars"],
                int(row["#Files"]),
            ]
        )
    note = (
        "Paper reference (GCC-4.8.5 suite): 7.34 holes, 2.77 scopes, 1.85 funcs, "
        "1.38 types, 3.46 vars/hole"
    )
    return format_table(headers, rows, title="Corpus characteristics") + "\n" + note


__all__ = ["Table2Result", "render", "run"]
