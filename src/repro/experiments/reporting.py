"""Small text-rendering helpers shared by the experiment drivers."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render an ASCII table with right-aligned numeric-ish columns."""
    columns = [str(h) for h in headers]
    string_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in string_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(columns))
    parts.append("-+-".join("-" * width for width in widths))
    parts.extend(line(row) for row in string_rows)
    return "\n".join(parts)


def format_histogram(labels: Sequence[str], values: Sequence[float], width: int = 40, title: str = "") -> str:
    """Render a horizontal ASCII bar chart (used for the figure reproductions)."""
    peak = max(values) if values else 1.0
    peak = peak if peak > 0 else 1.0
    lines = [title] if title else []
    label_width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}")
    return "\n".join(lines)


def scientific(value: int | float) -> str:
    """Format very large counts the way the paper does (e.g. 5.24e163).

    Handles integers far beyond float range (naive enumeration counts reach
    hundreds of digits).
    """
    if value == 0:
        return "0"
    if isinstance(value, int):
        if value < 1_000_000:
            return str(value)
        digits = str(value)
        exponent = len(digits) - 1
        mantissa = float(f"{digits[0]}.{digits[1:4]}")
        return f"{mantissa:.2f}e{exponent}"
    return f"{float(value):.2e}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


__all__ = ["format_histogram", "format_table", "scientific"]
