"""Figure 9 -- coverage improvement: SPE variants vs Orion-style mutation.

The paper compiles a 100-file sample, measures baseline gcov coverage, and
then reports the additional coverage contributed by (a) Orion mutants that
delete 10/20/30 statements (PM-10/20/30) and (b) SPE variants of the same
files.  Our analogue uses the pass-event coverage of the simulated compiler
(see :mod:`repro.testing.coverage`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.pipeline import OptimizationLevel
from repro.core.spe import SkeletonEnumerator
from repro.experiments.reporting import format_table
from repro.experiments.table1 import build_corpus
from repro.minic.errors import MiniCError
from repro.minic.skeleton import extract_skeleton
from repro.testing.coverage import CoverageMeter
from repro.testing.mutation import OrionMutator


@dataclass
class Fig9Result:
    baseline_function: int = 0
    baseline_line: int = 0
    improvements: dict[str, dict[str, float]] = field(default_factory=dict)
    files: int = 0
    compiler: str = "reference"


def run(
    files: int = 30,
    variants_per_file: int = 20,
    mutants_per_file: int = 10,
    seed: int = 2017,
    compiler: str = "reference",
    opt_level: OptimizationLevel = OptimizationLevel.O3,
    sample: bool = True,
) -> Fig9Result:
    """Measure baseline coverage and the improvement from PM-10/20/30 and SPE.

    ``sample=True`` (the default) tests a uniform sample of each file's
    canonical variants; ``sample=False`` recovers the historical behaviour of
    testing the first ``variants_per_file`` of the enumeration prefix.
    """
    corpus = build_corpus(files=files, seed=seed)
    sources = list(corpus.items())
    meter = CoverageMeter(version=compiler, opt_level=opt_level)

    baseline = meter.measure(source for _, source in sources)

    # Orion-style mutants at three deletion budgets.
    improvements: dict[str, dict[str, float]] = {}
    for deletions in (10, 20, 30):
        mutator = OrionMutator(deletions=deletions, seed=seed)
        mutants: list[str] = []
        for _, source in sources:
            mutants.extend(mutator.mutants(source, count=mutants_per_file))
        report = meter.measure(mutants)
        improvements[f"PM-{deletions}"] = report.improvement_over(baseline)

    # SPE variants: a uniform sample of each file's canonical solution set.
    # Sampling by rank/unrank spreads the tested variants across the whole
    # space instead of over-representing the enumeration prefix (which reuses
    # few variables), matching how the sharded campaign pipeline samples.
    variants: list[str] = []
    for name, source in sources:
        try:
            skeleton = extract_skeleton(source, name=name)
        except MiniCError:
            continue
        enumerator = SkeletonEnumerator(skeleton)
        if sample:
            programs = enumerator.sample_programs(variants_per_file, seed=f"{seed}:{name}")
        else:
            programs = enumerator.programs(limit=variants_per_file)
        for _, program in programs:
            variants.append(program)
    spe_report = meter.measure(variants)
    improvements["SPE"] = spe_report.improvement_over(baseline)

    return Fig9Result(
        baseline_function=baseline.function_coverage,
        baseline_line=baseline.line_coverage,
        improvements=improvements,
        files=len(sources),
        compiler=compiler,
    )


def render(result: Fig9Result) -> str:
    headers = ["Approach", "Function coverage improvement (%)", "Line coverage improvement (%)"]

    def cell(value: float):
        # An empty baseline reports float("inf") (see CoverageReport.
        # improvement_over); render the sentinel rather than round(inf).
        if value == float("inf"):
            return "inf"
        return round(value, 2)

    rows = [
        [name, cell(values["function"]), cell(values["line"])]
        for name, values in result.improvements.items()
    ]
    table = format_table(
        headers,
        rows,
        title=(
            f"Figure 9: coverage improvements over the {result.files}-file baseline "
            f"(compiler={result.compiler}, baseline: {result.baseline_function} pass events, "
            f"{result.baseline_line} event-count buckets)"
        ),
    )
    return table


__all__ = ["Fig9Result", "render", "run"]
