"""Table 3 -- crash signatures found when enumerating the compilers' own suite.

The paper enumerates GCC-4.8.5's test-suite and lists the crash signatures
hit in the *stable* releases (GCC-4.8.5 and Clang-3.6.1).  Our analogue runs
an SPE campaign over the corpus against the stable simulated versions
(``scc-4.8`` and ``lcc-3.6``) and reports the distinct crash signatures plus
the bug counts per compiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.pipeline import OptimizationLevel
from repro.core.spe import EnumerationBudget
from repro.experiments.reporting import format_table
from repro.experiments.table1 import build_corpus
from repro.testing.harness import Campaign, CampaignConfig, CampaignResult


@dataclass
class Table3Result:
    campaign: CampaignResult
    signatures: list[str] = field(default_factory=list)
    bugs_per_compiler: dict[str, int] = field(default_factory=dict)


def run(
    files: int = 24,
    max_variants_per_file: int = 30,
    seed: int = 2017,
    versions: tuple[str, str] = ("scc-4.8", "lcc-3.6"),
    sample_per_file: int | None = None,
    jobs: int = 1,
) -> Table3Result:
    """Run the stable-release campaign and collect crash signatures.

    ``sample_per_file`` switches from prefix truncation to a uniform sample
    of each file's canonical variants; ``jobs`` shards the campaign over
    worker processes (both via the sharded campaign pipeline).
    """
    corpus = build_corpus(files=files, seed=seed)
    config = CampaignConfig(
        versions=list(versions),
        opt_levels=[OptimizationLevel.O0, OptimizationLevel.O3],
        budget=EnumerationBudget(max_variants=10_000),
        max_variants_per_file=max_variants_per_file,
        sample_per_file=sample_per_file,
        sample_seed=seed,
        jobs=jobs,
    )
    campaign_result = Campaign(config).run_sources(corpus)
    signatures = sorted(set(campaign_result.bugs.crash_signatures()))
    per_compiler: dict[str, int] = {}
    for lineage, reports in campaign_result.bugs.by_lineage().items():
        per_compiler[lineage] = len(reports)
    return Table3Result(
        campaign=campaign_result, signatures=signatures, bugs_per_compiler=per_compiler
    )


def render(result: Table3Result) -> str:
    rows = [[signature] for signature in result.signatures] or [["(no crashes observed)"]]
    table = format_table(["Crash signature"], rows, title="Table 3: crash signatures on stable releases")
    counts = format_table(
        ["Compiler lineage", "Distinct bugs"],
        [[lineage, count] for lineage, count in sorted(result.bugs_per_compiler.items())],
    )
    return table + "\n\n" + counts + "\n\n" + result.campaign.summary()


__all__ = ["Table3Result", "render", "run"]
