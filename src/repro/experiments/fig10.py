"""Figure 10 -- characteristics of the bugs found in the scc (GCC-like) trunk.

Four panels: (a) priorities, (b) affected optimization levels, (c) affected
versions, (d) affected components.  We aggregate the same dimensions from the
trunk campaign's deduplicated bug reports (every report carries the seeded
fault's metadata).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.pipeline import OptimizationLevel
from repro.core.spe import EnumerationBudget
from repro.experiments.reporting import format_histogram
from repro.experiments.table1 import build_corpus
from repro.testing.harness import Campaign, CampaignConfig, CampaignResult


@dataclass
class Fig10Result:
    campaign: CampaignResult
    priorities: dict[str, int] = field(default_factory=dict)
    opt_levels: dict[str, int] = field(default_factory=dict)
    affected_versions: dict[str, int] = field(default_factory=dict)
    components: dict[str, int] = field(default_factory=dict)
    lineage: str = "scc"


def run(
    files: int = 24,
    max_variants_per_file: int = 30,
    seed: int = 2017,
    lineage: str = "scc",
    sample_per_file: int | None = None,
    jobs: int = 1,
) -> Fig10Result:
    """Run the trunk campaign for one lineage and aggregate bug characteristics.

    ``sample_per_file`` switches from prefix truncation to a uniform sample
    of each file's canonical variants; ``jobs`` shards the campaign over
    worker processes (both via the sharded campaign pipeline).
    """
    corpus = build_corpus(files=files, seed=seed)
    trunk = f"{lineage}-trunk"
    config = CampaignConfig(
        versions=[trunk],
        opt_levels=[
            OptimizationLevel.O0,
            OptimizationLevel.O1,
            OptimizationLevel.O2,
            OptimizationLevel.O3,
        ],
        budget=EnumerationBudget(max_variants=10_000),
        max_variants_per_file=max_variants_per_file,
        sample_per_file=sample_per_file,
        sample_seed=seed,
        jobs=jobs,
    )
    campaign_result = Campaign(config).run_sources(corpus)
    bugs = campaign_result.bugs

    # Affected optimization levels: a bug "affects" every level at or above
    # the level it was observed at (crashes found at -O0 affect all levels).
    opt_counts: dict[str, int] = {}
    for report in bugs.reports:
        for level in OptimizationLevel:
            if level >= report.opt_level:
                opt_counts[str(level)] = opt_counts.get(str(level), 0) + 1

    return Fig10Result(
        campaign=campaign_result,
        priorities=bugs.by_priority(),
        opt_levels=opt_counts,
        affected_versions=bugs.by_affected_version(lineage=lineage),
        components=bugs.by_component(),
        lineage=lineage,
    )


def render(result: Fig10Result) -> str:
    def chart(title: str, counts: dict[str, int]) -> str:
        labels = sorted(counts)
        return format_histogram(labels, [counts[label] for label in labels], title=title)

    parts = [
        chart("Figure 10(a): bug priorities", result.priorities),
        chart("Figure 10(b): affected optimization levels", result.opt_levels),
        chart("Figure 10(c): affected versions", result.affected_versions),
        chart("Figure 10(d): affected components", result.components),
        "",
        result.campaign.summary(),
    ]
    return "\n\n".join(parts)


__all__ = ["Fig10Result", "render", "run"]
