"""Table 4 -- summary and classification of bugs found in the trunk compilers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.pipeline import OptimizationLevel
from repro.core.spe import EnumerationBudget
from repro.experiments.reporting import format_table
from repro.experiments.table1 import build_corpus
from repro.testing.bugs import BugKind
from repro.testing.harness import Campaign, CampaignConfig, CampaignResult


@dataclass
class Table4Result:
    campaign: CampaignResult
    rows: list[dict] = field(default_factory=list)


def run(
    files: int = 24,
    max_variants_per_file: int = 30,
    seed: int = 2017,
    versions: tuple[str, str] = ("scc-trunk", "lcc-trunk"),
    sample_per_file: int | None = None,
    jobs: int = 1,
) -> Table4Result:
    """Run the trunk campaign and classify the bugs per compiler lineage.

    ``sample_per_file`` switches from prefix truncation to a uniform sample
    of each file's canonical variants; ``jobs`` shards the campaign over
    worker processes (both via the sharded campaign pipeline).
    """
    corpus = build_corpus(files=files, seed=seed)
    config = CampaignConfig(
        versions=list(versions),
        opt_levels=[OptimizationLevel.O0, OptimizationLevel.O1, OptimizationLevel.O2, OptimizationLevel.O3],
        budget=EnumerationBudget(max_variants=10_000),
        max_variants_per_file=max_variants_per_file,
        sample_per_file=sample_per_file,
        sample_seed=seed,
        jobs=jobs,
    )
    campaign_result = Campaign(config).run_sources(corpus)

    rows = []
    for lineage, reports in sorted(campaign_result.bugs.by_lineage().items()):
        duplicates = sum(report.duplicate_count for report in reports)
        rows.append(
            {
                "compiler": lineage,
                "reported": len(reports),
                "duplicate_observations": duplicates,
                "crash": sum(1 for report in reports if report.kind is BugKind.CRASH),
                "wrong code": sum(1 for report in reports if report.kind is BugKind.WRONG_CODE),
                "performance": sum(1 for report in reports if report.kind is BugKind.PERFORMANCE),
            }
        )
    return Table4Result(campaign=campaign_result, rows=rows)


def render(result: Table4Result) -> str:
    headers = ["Compiler", "Reported", "Dup. obs.", "Crash", "Wrong code", "Performance"]
    rows = [
        [
            row["compiler"],
            row["reported"],
            row["duplicate_observations"],
            row["crash"],
            row["wrong code"],
            row["performance"],
        ]
        for row in result.rows
    ]
    table = format_table(headers, rows, title="Table 4: bugs found in trunk compilers")
    return table + "\n\n" + result.campaign.summary()


__all__ = ["Table4Result", "render", "run"]
