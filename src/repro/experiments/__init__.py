"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every module exposes ``run(...)`` returning a result dataclass and
``render(result)`` returning the textual table/figure.  The benchmarks in
``benchmarks/`` call ``run`` with small parameters; ``python -m repro
experiments`` runs them all and prints the reports (the content recorded in
EXPERIMENTS.md).

| paper artifact | module |
|----------------|--------|
| Table 1 (size reduction)            | :mod:`repro.experiments.table1` |
| Table 2 (test-suite characteristics)| :mod:`repro.experiments.table2` |
| Table 3 (crash signatures, stable)  | :mod:`repro.experiments.table3` |
| Table 4 (trunk bug summary)         | :mod:`repro.experiments.table4` |
| Figure 8 (variant distributions)    | :mod:`repro.experiments.fig8`   |
| Figure 9 (coverage improvements)    | :mod:`repro.experiments.fig9`   |
| Figure 10 (bug characteristics)     | :mod:`repro.experiments.fig10`  |
"""

from repro.experiments import fig8, fig9, fig10, table1, table2, table3, table4
from repro.experiments.reporting import format_table

ALL_EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
}

__all__ = ["ALL_EXPERIMENTS", "format_table"] + list(ALL_EXPERIMENTS)
