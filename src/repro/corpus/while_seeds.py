"""WHILE seed corpus: hand-written seeds plus a deterministic generator.

The WHILE counterpart of :mod:`repro.corpus.seeds` / :mod:`repro.corpus.
generator`.  Each hand-written seed is correct as written; the interesting
behaviour only appears in SPE-enumerated variants whose variable-usage
patterns reach one of the ``wc`` lineage's seeded faults
(:mod:`repro.lang.compile`): self-subtraction (`x - x`), reflexive
comparisons (`x <= x`), name-ordered subtraction operands, self-assignment
(`x := x`) and structurally identical branches.

Skeleton sizes are kept under the paper's 10 000-variant enumeration
threshold: with one shared scope the canonical count for ``n`` holes over
``k`` variables is ``sum_i S(n, i)`` (Stirling numbers), so programs stay
within 8 occurrences for 4 variables and 10 occurrences for 3 variables.
"""

from __future__ import annotations

import random


def while_seed_programs() -> dict[str, str]:
    """Named WHILE seed programs used by campaigns, tests and examples."""
    return dict(_SEEDS)


_SEEDS: list[tuple[str, str]] = [
    (
        # Subtraction pairs: variants that collapse `a - b` to `x - x` reach
        # the wfold-sub-self crash; name-order swaps reach wsub-name-commute.
        "sub_pairs.while",
        """
a := 7 ;
b := 2 ;
c := a - b ;
d := c - b
""",
    ),
    (
        # Reflexive comparison guards: `c >= b` variants with both sides the
        # same variable hit wcmp-self-reflexive (<=/>= folded to false).
        "guard_ge.while",
        """
a := 4 ;
b := 1 ;
if (a >= b) then c := a - b else c := b
""",
    ),
    (
        # Same-shape branches: variants that make then/else render
        # identically crash the wc-1.0/wc-2.0 frontend (wfrontend-dup-branches).
        "twin_branches.while",
        """
a := 1 ;
b := 2 ;
if (a < b) then c := a else c := b
""",
    ),
    (
        # Straight-line copies: variants realizing `x := x` trip the
        # pass-manager blow-up (wopt-fixpoint-blowup, a performance bug).
        "copy_chain.while",
        """
a := 5 ;
b := a ;
c := b ;
a := c
""",
    ),
    (
        # The paper's Figure 5 loop; renamed guards/bodies also exercise
        # timeout filtering (variants whose loop no longer decrements).
        "fig5_loop.while",
        """
a := 10 ;
b := 1 ;
while (a > 0) do (
  a := a - b
)
""",
    ),
    (
        # A bounded accumulation loop mixing comparisons and subtraction.
        "acc_loop.while",
        """
i := 3 ;
s := 0 ;
while (i > 0) do (
  s := s + i ;
  i := i - 1
)
""",
    ),
]


class WhileCorpusGenerator:
    """Generate small, deterministic WHILE programs below the SPE threshold.

    Statements are drawn from fault-adjacent templates (subtractions,
    comparisons guarding branches, copies, bounded loops).  The generator
    tracks variable occurrences and stops each program before its skeleton's
    canonical solution set can exceed the enumeration threshold.
    """

    #: (variables used, max occurrences) pairs keeping sum_i S(n, i) <= 10_000.
    _SHAPE_LIMITS = {3: 10, 4: 8}

    def __init__(self, seed: int = 2017) -> None:
        self.seed = seed

    def generate(self, count: int) -> dict[str, str]:
        """Produce ``count`` named programs (deterministic in the seed)."""
        programs: dict[str, str] = {}
        for index in range(max(0, count)):
            rng = random.Random(f"{self.seed}:while:{index}")
            programs[f"gen_{index:03d}.while"] = self._program(rng)
        return programs

    def _program(self, rng: random.Random) -> str:
        num_vars = rng.choice([3, 3, 4])
        limit = self._SHAPE_LIMITS[num_vars]
        names = ["a", "b", "c", "d"][:num_vars]

        lines = [f"{name} := {rng.randint(1, 9)}" for name in names[: rng.randint(2, 3)]]
        # Assignment targets are occurrences too, so the initial lines have
        # already spent part of the budget.
        used: list[int] = [len(lines)]

        def var() -> str:
            used[0] += 1
            return rng.choice(names)

        builders = [
            lambda: f"{var()} := {var()} - {var()}",
            lambda: f"{var()} := {var()} + {rng.randint(0, 3)}",
            lambda: f"{var()} := {var()}",
            lambda: (
                f"if ({var()} >= {var()}) then {var()} := {var()} "
                f"else {var()} := {var()}"
            ),
            lambda: (
                f"if ({var()} < {rng.randint(1, 5)}) then {var()} := {var()} "
                f"else {var()} := {rng.randint(0, 9)}"
            ),
        ]
        while used[0] < limit - 3:
            line = rng.choice(builders)()
            if used[0] > limit:
                break
            lines.append(line)
        return " ;\n".join(lines) + "\n"


def build_while_corpus(files: int = 25, seed: int = 2017) -> dict[str, str]:
    """The default WHILE corpus: hand-written seeds plus synthetic programs."""
    corpus = while_seed_programs()
    generator = WhileCorpusGenerator(seed=seed)
    corpus.update(generator.generate(max(0, files - len(corpus))))
    return corpus


__all__ = ["WhileCorpusGenerator", "build_while_corpus", "while_seed_programs"]
