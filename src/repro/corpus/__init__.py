"""Corpus: the c-torture-like seed programs SPE enumerates from.

* :mod:`repro.corpus.seeds` -- hand-written seed programs mirroring the
  shapes of the paper's motivating bugs (aliasing through pointers, nested
  conditionals with repeated operands, gotos into scopes, loops over arrays);
* :mod:`repro.corpus.generator` -- a deterministic synthetic generator
  calibrated to the GCC-4.8.5 test-suite statistics of Table 2 (average
  holes/scopes/functions/types per file);
* :mod:`repro.corpus.stats` -- corpus-level statistics (the Table 2 columns);
* :mod:`repro.corpus.while_seeds` -- the WHILE-language counterpart: seeds
  and a generator shaped around the ``wc`` lineage's seeded faults, used by
  ``repro campaign --lang while``.
"""

from repro.corpus.generator import CorpusGenerator, GeneratorConfig
from repro.corpus.seeds import paper_seed_programs
from repro.corpus.stats import SuiteStatistics, corpus_statistics
from repro.corpus.while_seeds import (
    WhileCorpusGenerator,
    build_while_corpus,
    while_seed_programs,
)

__all__ = [
    "CorpusGenerator",
    "GeneratorConfig",
    "SuiteStatistics",
    "WhileCorpusGenerator",
    "build_while_corpus",
    "corpus_statistics",
    "paper_seed_programs",
    "while_seed_programs",
]
