"""Hand-written seed programs.

Each seed mirrors the *shape* of one of the paper's reported bug triggers
(Figures 1-3, 11 and 12), restricted to the mini-C subset.  The seeds are
deliberately correct and UB-free as written; the interesting behaviour only
appears in SPE-enumerated variants -- exactly the paper's point that the GCC
test-suite passes while its variable-usage variants expose latent bugs.
"""

from __future__ import annotations


def paper_seed_programs() -> dict[str, str]:
    """Named seed programs used by the bug-hunting experiments and examples."""
    return dict(_SEEDS)


_SEEDS: list[tuple[str, str]] = [
    (
        # Figure 1: straight-line arithmetic whose usage pattern decides which
        # optimizations (constant propagation, DCE, uninitialised warnings) fire.
        "fig1_deps.c",
        """
int main(void) {
    int a = 2, b = 1;
    b = b - a;
    if (a) {
        a = a - b;
    }
    return a + b + 10;
}
""",
    ),
    (
        # Figure 2: aliasing through pointers; the enumerated variant that makes
        # both pointers reference the same variable exposes the alias bug.
        "fig2_alias.c",
        """
int a = 0;
int b = 0;
int main(void) {
    int *p = &a;
    int *q = &b;
    a = 1;
    *p = 1;
    *q = 2;
    return b;
}
""",
    ),
    (
        # Figure 3: nested conditional expressions; making the second and third
        # operands identical crashes the folder.
        "fig3_cond.c",
        """
int d = 0;
int e = 0;
int main(void) {
    int r;
    r = e ? (d == 0 ? 1 : 2) : (e == 0 ? 1 : 2);
    return r;
}
""",
    ),
    (
        # Figure 11(b): a goto that can form an irreducible loop once the
        # variables used in the two conditions coincide.
        "fig11b_goto.c",
        """
int a = 0;
int b = 3;
int main(void) {
    int c = 0;
    if (a) goto l1;
    c = 1;
l1:
    c = c + 1;
    b = b - 1;
    if (b) goto l1;
    return c;
}
""",
    ),
    (
        # Figure 11(c): nested loops over an array through a pointer.
        "fig11c_loops.c",
        """
int a = 0;
int u[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int main(void) {
    int p1 = 0;
    int i = 0;
    for (i = 4; i >= a; i--) {
        p1 = p1 + u[i];
    }
    return p1;
}
""",
    ),
    (
        # Figure 11(d): a pointer that becomes non-null after a backward goto.
        "fig11d_lifetime.c",
        """
int main(void) {
    int x = 0;
    int y = 5;
    int rounds = 0;
    int *p = &y;
trick:
    if (rounds) {
        return *p;
    }
    x = 7;
    p = &x;
    rounds = rounds + 1;
    goto trick;
    return 0;
}
""",
    ),
    (
        # Figure 12(b): loop with an array index built from two variables.
        "fig12b_index.c",
        """
int u[64];
int a = 0;
int b = 0;
int main(void) {
    int c = 0;
    for (a = 0; a < 6; a++) {
        b = 0;
        for (b = 0; b < 6; b++) {
            c = c + u[a + 6 * b];
        }
        u[7 * a] = 2;
    }
    return c;
}
""",
    ),
    (
        # Address-taken local whose stores must survive DCE.
        "addr_taken.c",
        """
int main(void) {
    int x = 5;
    int y = 1;
    int *p = &x;
    x = 9;
    y = y + *p;
    return y;
}
""",
    ),
    (
        # Repeated subtraction shapes: CSE and folding territory.
        "sub_pairs.c",
        """
int main(void) {
    int a = 7, b = 3;
    int x = 0, y = 0, z = 0;
    x = a - b;
    y = a - b;
    z = a + b;
    return x * 16 + y * 4 + z;
}
""",
    ),
    (
        # A loop whose condition variable is decoupled from its body: variants
        # where the two coincide become empty or constant-bound loops.
        "loop_bounds.c",
        """
int main(void) {
    int i = 0;
    int stop = 1;
    int total = 0;
    while (i < 3) {
        total = total + stop;
        i = i + 1;
    }
    return total;
}
""",
    ),
    (
        # Two functions sharing globals: intra- vs inter-procedural enumeration differ.
        "two_functions.c",
        """
int g = 2;
int h = 5;

int helper(int x) {
    int local = 0;
    local = x + g;
    return local * 2;
}

int main(void) {
    int a = 0, b = 0;
    a = helper(h);
    b = helper(g);
    return a + b;
}
""",
    ),
    (
        # Block scopes: the Figure 6 shape used throughout Section 3.
        "fig6_scopes.c",
        """
int main(void) {
    int a = 1, b = 0;
    if (a) {
        int c = 3, d = 5;
        b = c + d;
    }
    printf("%d", a);
    printf("%d", b);
    return 0;
}
""",
    ),
    (
        # Ternary chain whose nesting depth grows in some variants.
        "ternary_chain.c",
        """
int s = 1;
int t = 2;
int main(void) {
    int r = 0, q = 0;
    r = s ? (t ? 1 : 2) : 3;
    q = t ? r : s;
    return r * 10 + q;
}
""",
    ),
    (
        # printf-observable arithmetic: wrong-code bugs show in stdout too.
        "printf_obs.c",
        """
int main(void) {
    int a = 4;
    int b = 9;
    int c = 0;
    c = b - a;
    printf("%d ", c);
    printf("%d", a + b);
    return 0;
}
""",
    ),
]


__all__ = ["paper_seed_programs"]
