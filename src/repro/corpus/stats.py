"""Corpus statistics: the columns of the paper's Table 2.

For a set of skeletons we report the average number of holes, scopes,
functions and distinct variable types per file, plus the average number of
candidate variables per hole (the paper's "#Vars" column).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.holes import Skeleton


@dataclass(frozen=True)
class SuiteStatistics:
    """Average per-file characteristics of a corpus of skeletons."""

    files: int
    holes: float
    scopes: float
    functions: float
    types: float
    vars_per_hole: float

    def as_row(self) -> dict[str, float]:
        return {
            "#Files": float(self.files),
            "#Holes": round(self.holes, 2),
            "#Scopes": round(self.scopes, 2),
            "#Funcs": round(self.functions, 2),
            "#Types": round(self.types, 2),
            "#Vars": round(self.vars_per_hole, 2),
        }


def corpus_statistics(skeletons: list[Skeleton]) -> SuiteStatistics:
    """Aggregate Table 2-style statistics over a list of skeletons."""
    if not skeletons:
        return SuiteStatistics(0, 0.0, 0.0, 0.0, 0.0, 0.0)
    per_file = [skeleton.stats() for skeleton in skeletons]

    def mean(key: str) -> float:
        return sum(stats[key] for stats in per_file) / len(per_file)

    return SuiteStatistics(
        files=len(skeletons),
        holes=mean("holes"),
        scopes=mean("scopes"),
        functions=mean("functions"),
        types=mean("types"),
        vars_per_hole=mean("vars_per_hole"),
    )


__all__ = ["SuiteStatistics", "corpus_statistics"]
