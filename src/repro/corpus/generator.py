"""Synthetic corpus generation calibrated to the paper's Table 2.

The GCC-4.8.5 test-suite the paper enumerates from averages 7.34 holes, 2.77
scopes, 1.85 functions and 1.38 variable types per file, with about 3.46
candidate variables per hole.  ``CorpusGenerator`` produces small,
deterministic, UB-free mini-C programs whose skeleton statistics match those
first moments, so the Table 1 / Figure 8 size-reduction shapes are
reproducible without the original suite.

Every generated program:

* initialises every variable at its declaration (no uninitialised reads);
* bounds every loop with a dedicated counter (no non-termination);
* divides only by non-zero constants (no division UB);
* keeps arithmetic small (no signed overflow for the original filling --
  enumerated variants can of course still reach UB, which the oracle's
  reference interpreter filters, as in the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass
class GeneratorConfig:
    """Tunable knobs of the synthetic corpus generator."""

    seed: int = 2017
    mean_functions: float = 1.85
    mean_globals: float = 1.2
    mean_locals_per_function: float = 1.8
    block_probability: float = 0.4
    loop_probability: float = 0.3
    pointer_probability: float = 0.18
    array_probability: float = 0.12
    goto_probability: float = 0.1
    ternary_probability: float = 0.22
    long_probability: float = 0.18
    statements_per_function: tuple[int, int] = (1, 3)
    # Fraction of files generated as "tiny" single-function programs (the GCC
    # c-torture suite is dominated by such files, which is what keeps most of
    # the corpus under the 10K-variant threshold in Table 1).
    small_file_probability: float = 0.5


@dataclass
class CorpusGenerator:
    """Deterministic generator of c-torture-like seed programs."""

    config: GeneratorConfig = field(default_factory=GeneratorConfig)

    def generate(self, count: int) -> dict[str, str]:
        """Generate ``count`` named programs (name -> source)."""
        programs: dict[str, str] = {}
        for index in range(count):
            rng = random.Random(self.config.seed * 1_000_003 + index)
            name = f"gen_{index:05d}.c"
            programs[name] = self._program(rng)
        return programs

    # -- program construction ----------------------------------------------------

    def _program(self, rng: random.Random) -> str:
        config = self.config
        if rng.random() < config.small_file_probability:
            return self._tiny_program(rng)
        lines: list[str] = []

        num_globals = self._poissonish(rng, config.mean_globals, maximum=4)
        global_names: list[str] = []
        for i in range(num_globals):
            name = f"g{i}"
            global_names.append(name)
            lines.append(f"int {name} = {rng.randint(0, 5)};")

        array_name = None
        if rng.random() < config.array_probability:
            array_name = "arr"
            size = rng.choice([4, 8])
            values = ", ".join(str(rng.randint(0, 9)) for _ in range(size))
            lines.append(f"int {array_name}[{size}] = {{{values}}};")

        num_functions = max(1, self._poissonish(rng, config.mean_functions - 1, maximum=2) + 1)
        helpers: list[tuple[str, int]] = []
        for i in range(num_functions - 1):
            helper = f"fn{i}"
            lines.append("")
            body, arity = self._function(rng, helper, global_names, array_name, helpers=[])
            lines.extend(body)
            helpers.append((helper, arity))

        lines.append("")
        body, _ = self._function(rng, "main", global_names, array_name, helpers=helpers)
        lines.extend(body)
        return "\n".join(lines) + "\n"

    def _tiny_program(self, rng: random.Random) -> str:
        """A c-torture-style micro test: a couple of globals, one small main."""
        lines: list[str] = []
        num_globals = rng.randint(0, 2)
        names = []
        for i in range(num_globals):
            names.append(f"g{i}")
            lines.append(f"int g{i} = {rng.randint(0, 5)};")
        lines.append("")
        lines.append("int main(void) {")
        local_count = rng.randint(1, 2)
        for i in range(local_count):
            names.append(f"m{i}")
            lines.append(f"    int m{i} = {rng.randint(0, 9)};")
        for _ in range(rng.randint(1, 2)):
            target = rng.choice(names)
            lines.append(f"    {target} = {self._expression(rng, names)};")
        if rng.random() < 0.4:
            condition = rng.choice(names)
            target = rng.choice(names)
            lines.append(f"    if ({condition}) {{")
            lines.append(f"        {target} = {self._small_term(rng, names)};")
            lines.append("    }")
        lines.append(f"    return {rng.choice(names)};")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def _function(
        self,
        rng: random.Random,
        name: str,
        global_names: list[str],
        array_name: str | None,
        helpers: list[tuple[str, int]],
    ) -> tuple[list[str], int]:
        config = self.config
        params: list[str] = []
        if name != "main" and rng.random() < 0.7:
            params = [f"p{i}" for i in range(rng.randint(1, 2))]
        header_params = ", ".join(f"int {p}" for p in params) or "void"
        lines = [f"int {name}({header_params}) {{"]

        locals_count = max(1, self._poissonish(rng, config.mean_locals_per_function, maximum=4))
        local_names = [f"{name[0]}{i}" for i in range(locals_count)]
        use_long = rng.random() < config.long_probability
        for index, local in enumerate(local_names):
            type_name = "long" if use_long and index == locals_count - 1 else "int"
            lines.append(f"    {type_name} {local} = {rng.randint(0, 9)};")

        visible = params + local_names + global_names
        int_visible = [v for v in visible if not (use_long and v == local_names[-1])]

        pointer_target = None
        if rng.random() < config.pointer_probability and int_visible:
            pointer_target = rng.choice(int_visible)
            lines.append(f"    int *ptr = &{pointer_target};")

        statement_count = rng.randint(*config.statements_per_function)
        for _ in range(statement_count):
            lines.extend(self._statement(rng, int_visible, array_name, pointer_target, helpers, indent=1))

        if rng.random() < config.block_probability and int_visible:
            inner = [f"b{i}" for i in range(rng.randint(1, 2))]
            condition = rng.choice(int_visible)
            lines.append(f"    if ({condition}) {{")
            for local in inner:
                lines.append(f"        int {local} = {rng.randint(1, 6)};")
            inner_visible = int_visible + inner
            for _ in range(rng.randint(1, 2)):
                lines.extend(
                    self._statement(rng, inner_visible, array_name, pointer_target, helpers, indent=2)
                )
            lines.append("    }")

        if rng.random() < config.goto_probability and int_visible:
            flag = rng.choice(int_visible)
            lines.append(f"    if ({flag} > 20) goto done;")
            lines.append(f"    {rng.choice(int_visible)} = {rng.choice(int_visible)} + 1;")
            lines.append("done:")
            lines.append("    ;")

        returned = rng.choice(int_visible) if int_visible else "0"
        lines.append(f"    return {returned};")
        lines.append("}")
        return lines, len(params)

    def _statement(
        self,
        rng: random.Random,
        visible: list[str],
        array_name: str | None,
        pointer_target: str | None,
        helpers: list[tuple[str, int]],
        indent: int,
    ) -> list[str]:
        config = self.config
        pad = "    " * indent
        if not visible:
            return [f"{pad};"]
        choice = rng.random()
        target = rng.choice(visible)

        if choice < 0.45:
            return [f"{pad}{target} = {self._expression(rng, visible)};"]
        if choice < 0.45 + 0.15 and rng.random() < config.ternary_probability:
            cond = rng.choice(visible)
            left = self._expression(rng, visible)
            right = self._expression(rng, visible)
            return [f"{pad}{target} = {cond} ? ({left}) : ({right});"]
        if choice < 0.70 and rng.random() < config.loop_probability:
            bound = rng.randint(2, 5)
            counter = f"i{indent}{rng.randint(0, 9)}"
            body_target = rng.choice(visible)
            lines = [
                f"{pad}for (int {counter} = 0; {counter} < {bound}; {counter}++) {{",
                f"{pad}    {body_target} = {body_target} + {self._small_term(rng, visible)};",
            ]
            if array_name is not None and rng.random() < 0.5:
                lines.append(f"{pad}    {body_target} = {body_target} + {array_name}[{counter}];")
            lines.append(f"{pad}}}")
            return lines
        if choice < 0.80 and pointer_target is not None:
            return [f"{pad}*ptr = {self._small_term(rng, visible)};"]
        if choice < 0.88 and helpers:
            callee, arity = rng.choice(helpers)
            call_args = ", ".join(rng.choice(visible) for _ in range(arity))
            return [f"{pad}{target} = {callee}({call_args});"]
        if choice < 0.95:
            condition = f"{rng.choice(visible)} {rng.choice(['<', '>', '==', '!='])} {rng.randint(0, 8)}"
            return [
                f"{pad}if ({condition}) {{",
                f"{pad}    {target} = {self._expression(rng, visible)};",
                f"{pad}}} else {{",
                f"{pad}    {target} = {self._small_term(rng, visible)};",
                f"{pad}}}",
            ]
        return [f"{pad}printf(\"%d \", {target});"]

    def _expression(self, rng: random.Random, visible: list[str]) -> str:
        left = self._small_term(rng, visible)
        op = rng.choice(["+", "-", "*", "+", "-"])
        right = self._small_term(rng, visible)
        if rng.random() < 0.3:
            third = self._small_term(rng, visible)
            return f"{left} {op} {right} + {third}"
        return f"{left} {op} {right}"

    @staticmethod
    def _small_term(rng: random.Random, visible: list[str]) -> str:
        if rng.random() < 0.65 and visible:
            return rng.choice(visible)
        return str(rng.randint(0, 7))

    @staticmethod
    def _poissonish(rng: random.Random, mean: float, maximum: int) -> int:
        """A crude discrete sample with the requested mean, clamped to [0, maximum]."""
        value = 0
        remaining = mean
        while remaining > 0 and value < maximum:
            if rng.random() < min(1.0, remaining):
                value += 1
            remaining -= 1.0
        return value


__all__ = ["CorpusGenerator", "GeneratorConfig"]
