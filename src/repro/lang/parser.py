"""Recursive-descent parser for the WHILE language.

Concrete syntax (statement separators are semicolons; ``do`` and ``then``
introduce either a single statement or a ``begin``-free braced-by-indentation
form -- we simply use parentheses-free single statements or ``{ ... }``
blocks for clarity)::

    program   := stmt_list
    stmt_list := stmt (';' stmt)* [';']
    stmt      := 'skip'
               | ident ':=' aexpr
               | 'while' '(' bexpr ')' 'do' block
               | 'if' '(' bexpr ')' 'then' block 'else' block
    block     := stmt | '{' stmt_list '}'
    bexpr     := bterm ('or' bterm)*
    bterm     := bfactor ('and' bfactor)*
    bfactor   := 'true' | 'false' | 'not' bfactor | aexpr relop aexpr
               | '(' bexpr ')'          -- when it parses as a boolean
    aexpr     := term (('+'|'-') term)*
    term      := factor (('*'|'/') factor)*
    factor    := number | ident | '(' aexpr ')' | '-' factor
"""

from __future__ import annotations

from repro.lang.ast import (
    Assign,
    BinaryArith,
    BoolBinary,
    BoolLit,
    Compare,
    If,
    Not,
    Num,
    Seq,
    Skip,
    Var,
    While,
    WhileNode,
)
from repro.lang.lexer import Token, tokenize

_REL_OPS = ("==", "!=", "<=", ">=", "<", ">")


class ParseError(SyntaxError):
    """Raised when the source does not conform to the WHILE grammar."""

    def __init__(self, message: str, token: Token) -> None:
        super().__init__(f"{message} (at line {token.line}, column {token.column}, near {token.text!r})")
        self.token = token


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.position = 0

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.position + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, text: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (text is None or token.text == text)

    def expect(self, kind: str, text: str | None = None) -> Token:
        if not self.check(kind, text):
            expected = text if text is not None else kind
            raise ParseError(f"expected {expected!r}", self.peek())
        return self.advance()

    # -- grammar -----------------------------------------------------------

    def parse_program(self) -> WhileNode:
        statements = self.parse_stmt_list()
        self.expect("eof")
        return statements

    def parse_stmt_list(self) -> WhileNode:
        statements = [self.parse_stmt()]
        while self.check("op", ";"):
            self.advance()
            if self.check("eof") or self.check("op", "}"):
                break
            statements.append(self.parse_stmt())
        if len(statements) == 1:
            return statements[0]
        return Seq(tuple(statements))

    def parse_stmt(self) -> WhileNode:
        if self.check("keyword", "skip"):
            self.advance()
            return Skip()
        if self.check("keyword", "while"):
            self.advance()
            self.expect("op", "(")
            condition = self.parse_bexpr()
            self.expect("op", ")")
            self.expect("keyword", "do")
            body = self.parse_block()
            return While(condition, body)
        if self.check("keyword", "if"):
            self.advance()
            self.expect("op", "(")
            condition = self.parse_bexpr()
            self.expect("op", ")")
            self.expect("keyword", "then")
            then_branch = self.parse_block()
            self.expect("keyword", "else")
            else_branch = self.parse_block()
            return If(condition, then_branch, else_branch)
        if self.check("ident"):
            name = self.advance().text
            self.expect("op", ":=")
            value = self.parse_aexpr()
            return Assign(Var(name), value)
        raise ParseError("expected a statement", self.peek())

    def parse_block(self) -> WhileNode:
        if self.check("op", "{"):
            raise ParseError("'{' blocks are not part of the WHILE syntax; use ';' sequences", self.peek())
        if self.check("op", "("):
            # Parenthesised statement groups: (S1 ; S2)
            self.advance()
            body = self.parse_stmt_list()
            self.expect("op", ")")
            return body
        return self.parse_stmt()

    # boolean expressions

    def parse_bexpr(self) -> WhileNode:
        left = self.parse_bterm()
        while self.check("keyword", "or"):
            self.advance()
            right = self.parse_bterm()
            left = BoolBinary("or", left, right)
        return left

    def parse_bterm(self) -> WhileNode:
        left = self.parse_bfactor()
        while self.check("keyword", "and"):
            self.advance()
            right = self.parse_bfactor()
            left = BoolBinary("and", left, right)
        return left

    def parse_bfactor(self) -> WhileNode:
        if self.check("keyword", "true"):
            self.advance()
            return BoolLit(True)
        if self.check("keyword", "false"):
            self.advance()
            return BoolLit(False)
        if self.check("keyword", "not"):
            self.advance()
            return Not(self.parse_bfactor())
        # Either a parenthesised boolean or an arithmetic comparison.  We try
        # the comparison route: parse an aexpr and look for a relational op.
        saved = self.position
        try:
            left = self.parse_aexpr()
        except ParseError:
            self.position = saved
            self.expect("op", "(")
            inner = self.parse_bexpr()
            self.expect("op", ")")
            return inner
        if self.peek().kind == "op" and self.peek().text in _REL_OPS:
            op = self.advance().text
            right = self.parse_aexpr()
            return Compare(op, left, right)
        # "while (a)" style truthiness: treat a bare arithmetic expression as
        # "a != 0", matching how the paper's Figure 5 example uses while(a).
        return Compare("!=", left, Num(0))

    # arithmetic expressions

    def parse_aexpr(self) -> WhileNode:
        left = self.parse_term()
        while self.peek().kind == "op" and self.peek().text in ("+", "-"):
            op = self.advance().text
            right = self.parse_term()
            left = BinaryArith(op, left, right)
        return left

    def parse_term(self) -> WhileNode:
        left = self.parse_factor()
        while self.peek().kind == "op" and self.peek().text in ("*", "/"):
            op = self.advance().text
            right = self.parse_factor()
            left = BinaryArith(op, left, right)
        return left

    def parse_factor(self) -> WhileNode:
        if self.check("number"):
            return Num(int(self.advance().text))
        if self.check("ident"):
            return Var(self.advance().text)
        if self.check("op", "-"):
            self.advance()
            operand = self.parse_factor()
            return BinaryArith("-", Num(0), operand)
        if self.check("op", "("):
            self.advance()
            inner = self.parse_aexpr()
            self.expect("op", ")")
            return inner
        raise ParseError("expected an arithmetic expression", self.peek())


def parse_program(source: str) -> WhileNode:
    """Parse WHILE source code into an AST (the program statement)."""
    return _Parser(tokenize(source)).parse_program()


__all__ = ["ParseError", "parse_program"]
