"""Skeleton extraction for the WHILE language.

Every variable occurrence becomes a hole; because WHILE has no lexical
scoping, every hole shares a single hole variable set (all variables of the
program, or an explicitly supplied variable set), exactly as in the paper's
Figure 5 walkthrough.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.holes import CharacteristicVector, Hole, Skeleton
from repro.core.scopes import ScopeKind, ScopeTree
from repro.lang.ast import Var, WhileNode, substitute_variables
from repro.lang.parser import parse_program
from repro.lang.printer import to_source


def extract_skeleton(
    source_or_ast: str | WhileNode,
    name: str = "<while-program>",
    variables: Sequence[str] | None = None,
) -> Skeleton:
    """Build a :class:`~repro.core.holes.Skeleton` from a WHILE program.

    Args:
        source_or_ast: WHILE source text or an already-parsed AST.
        name: label attached to the skeleton.
        variables: the variable set ``V``; defaults to the variables occurring
            in the program (in first-use order).

    The returned skeleton's ``realize`` renders complete WHILE source for any
    filling, so SPE-enumerated variants can be parsed and executed directly.
    """
    program = parse_program(source_or_ast) if isinstance(source_or_ast, str) else source_or_ast

    occurrences: list[str] = [node.name for node in program.walk() if isinstance(node, Var)]
    if variables is None:
        seen: list[str] = []
        for occurrence in occurrences:
            if occurrence not in seen:
                seen.append(occurrence)
        variables = seen
    if not variables:
        raise ValueError("cannot build a skeleton for a program without variables")

    tree = ScopeTree(root_kind=ScopeKind.FILE, root_name=name)
    function_scope = tree.add_scope(tree.root_id, kind=ScopeKind.FUNCTION, name="<main>")
    for variable in variables:
        tree.declare(function_scope, variable, type="int")

    holes = [
        Hole(
            index=index,
            scope_id=function_scope,
            type="int",
            original_name=original,
            function="<main>",
        )
        for index, original in enumerate(occurrences)
    ]

    def realize(vector: Sequence[str]) -> str:
        filled = substitute_variables(program, list(vector))
        return to_source(filled)

    return Skeleton(
        name=name,
        holes=holes,
        scope_tree=tree,
        original_vector=CharacteristicVector(occurrences),
        realize_fn=realize,
        metadata={"language": "while"},
    )


__all__ = ["extract_skeleton"]
