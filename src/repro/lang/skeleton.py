"""Skeleton extraction for the WHILE language.

Every variable occurrence becomes a hole; because WHILE has no lexical
scoping, every hole shares a single hole variable set (all variables of the
program, or an explicitly supplied variable set), exactly as in the paper's
Figure 5 walkthrough.

The program is parsed **once**.  Variants are realized by *rebinding*: the
binder holds the ``Var`` occurrence nodes (in pre-order, the hole order) and
patches their names in place, so moving the shared AST from one
characteristic vector to another is O(holes) -- no rebuild, no re-render, no
re-parse.  WHILE has no declarations, so every vector is declaration-order
clean and the campaign harness can always take the AST fast path.
"""

from __future__ import annotations

import copy
from typing import Sequence

from repro.core.holes import CharacteristicVector, Hole, IdentifierBinder, Skeleton
from repro.core.scopes import ScopeKind, ScopeTree
from repro.lang.ast import Var, WhileNode
from repro.lang.parser import parse_program
from repro.lang.printer import to_source


class SkeletonExtractionError(ValueError):
    """Raised when a WHILE program cannot form a skeleton (no variables).

    A ``ValueError`` subclass for backwards compatibility, but distinct from
    the binder's invalid-vector ``ValueError`` so the frontend's
    ``parse_error_types`` can name exactly the rejection cases.
    """


class WhileSkeletonBinder(IdentifierBinder):
    """Rebinds one parsed WHILE program to characteristic vectors.

    ``Var`` nodes are frozen dataclasses (program *construction* treats them
    as immutable values), so rebinding patches the shared occurrence nodes
    through ``object.__setattr__`` -- the binder is the single owner of these
    nodes and the interpreter reads names at execution time, which makes the
    rebound AST indistinguishable from parsing the rendered text.
    """

    __slots__ = ()

    def _rebind(self, identifier: Var, name: str, binding: str) -> None:
        object.__setattr__(identifier, "name", name)

    def _render(self, unit: WhileNode) -> str:
        return to_source(unit)


def extract_skeleton(
    source_or_ast: str | WhileNode,
    name: str = "<while-program>",
    variables: Sequence[str] | None = None,
) -> Skeleton:
    """Build a :class:`~repro.core.holes.Skeleton` from a WHILE program.

    Args:
        source_or_ast: WHILE source text or an already-parsed AST.
        name: label attached to the skeleton.
        variables: the variable set ``V``; defaults to the variables occurring
            in the program (in first-use order).

    The returned skeleton's ``realize`` renders complete WHILE source for any
    filling and its ``bind`` rebinds the parse-once AST in O(holes), so
    SPE-enumerated variants can be parsed/executed directly or fed to the
    campaign harness's AST fast path.
    """
    if isinstance(source_or_ast, str):
        program = parse_program(source_or_ast)
    else:
        # The binder rebinds Var nodes in place; never mutate a caller's tree.
        program = copy.deepcopy(source_or_ast)

    occurrence_nodes: list[Var] = [node for node in program.walk() if isinstance(node, Var)]
    occurrences: list[str] = [node.name for node in occurrence_nodes]
    if variables is None:
        seen: list[str] = []
        for occurrence in occurrences:
            if occurrence not in seen:
                seen.append(occurrence)
        variables = seen
    if not variables:
        raise SkeletonExtractionError(
            "cannot build a skeleton for a program without variables"
        )

    tree = ScopeTree(root_kind=ScopeKind.FILE, root_name=name)
    function_scope = tree.add_scope(tree.root_id, kind=ScopeKind.FUNCTION, name="<main>")
    for variable in variables:
        tree.declare(function_scope, variable, type="int")

    holes = [
        Hole(
            index=index,
            scope_id=function_scope,
            type="int",
            original_name=original,
            function="<main>",
        )
        for index, original in enumerate(occurrences)
    ]

    candidates = {variable: variable for variable in variables}
    binder = WhileSkeletonBinder(
        program, occurrence_nodes, [candidates] * len(occurrence_nodes)
    )

    return Skeleton(
        name=name,
        holes=holes,
        scope_tree=tree,
        original_vector=CharacteristicVector(occurrences),
        realize_fn=binder.render,
        bind_fn=binder.bind,
        order_clean_fn=binder.order_clean,
        metadata={
            "language": "while",
            # The binder itself, for consumers needing the parsed program
            # plus the hole occurrence nodes (the batched codegen tier maps
            # hole indices to Var sites from it; see repro.lang.codegen).
            "binder": binder,
            "declaration_order_clean": True,
        },
    )


__all__ = ["SkeletonExtractionError", "WhileSkeletonBinder", "extract_skeleton"]
