"""A small-step-free, direct interpreter for the WHILE language.

The interpreter is used by tests to validate Theorem 1 in the unscoped
setting: alpha-equivalent WHILE programs compute alpha-related final stores.
A fuel limit guards against non-terminating loops produced by enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.ast import (
    Assign,
    BinaryArith,
    BoolBinary,
    BoolLit,
    Compare,
    If,
    Not,
    Num,
    Seq,
    Skip,
    Var,
    While,
    WhileNode,
)


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a WHILE program exceeds its step budget."""


class WhileRuntimeError(RuntimeError):
    """Raised on runtime errors such as division by zero."""


@dataclass
class WhileInterpreter:
    """Evaluate WHILE programs over an integer store.

    Attributes:
        max_steps: statement-execution budget before
            :class:`ExecutionLimitExceeded` is raised.
        default_value: value of variables read before being assigned (the
            WHILE language has no declarations; 0 keeps enumerated variants
            executable, mirroring a zero-initialised store).
    """

    max_steps: int = 100_000
    default_value: int = 0
    _steps: int = field(default=0, init=False, repr=False)

    def run(self, program: WhileNode, initial: dict[str, int] | None = None) -> dict[str, int]:
        """Execute ``program`` and return the final store."""
        store = dict(initial or {})
        self._steps = 0
        self._exec(program, store)
        return store

    # -- statements --------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise ExecutionLimitExceeded(f"exceeded {self.max_steps} steps")

    def _exec(self, node: WhileNode, store: dict[str, int]) -> None:
        self._tick()
        if isinstance(node, Skip):
            return
        if isinstance(node, Assign):
            store[node.target.name] = self._eval_arith(node.value, store)
            return
        if isinstance(node, Seq):
            for statement in node.statements:
                self._exec(statement, store)
            return
        if isinstance(node, While):
            while self._eval_bool(node.condition, store):
                self._exec(node.body, store)
                self._tick()
            return
        if isinstance(node, If):
            if self._eval_bool(node.condition, store):
                self._exec(node.then_branch, store)
            else:
                self._exec(node.else_branch, store)
            return
        raise TypeError(f"not a statement node: {node!r}")

    # -- expressions --------------------------------------------------------

    def _eval_arith(self, node: WhileNode, store: dict[str, int]) -> int:
        if isinstance(node, Num):
            return node.value
        if isinstance(node, Var):
            return store.get(node.name, self.default_value)
        if isinstance(node, BinaryArith):
            left = self._eval_arith(node.left, store)
            right = self._eval_arith(node.right, store)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            if node.op == "/":
                if right == 0:
                    raise WhileRuntimeError("division by zero")
                return int(left / right)  # C-style truncation toward zero
            raise TypeError(f"unknown arithmetic operator {node.op!r}")
        raise TypeError(f"not an arithmetic node: {node!r}")

    def _eval_bool(self, node: WhileNode, store: dict[str, int]) -> bool:
        if isinstance(node, BoolLit):
            return node.value
        if isinstance(node, Not):
            return not self._eval_bool(node.operand, store)
        if isinstance(node, BoolBinary):
            if node.op == "and":
                return self._eval_bool(node.left, store) and self._eval_bool(node.right, store)
            return self._eval_bool(node.left, store) or self._eval_bool(node.right, store)
        if isinstance(node, Compare):
            left = self._eval_arith(node.left, store)
            right = self._eval_arith(node.right, store)
            return {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[node.op]
        raise TypeError(f"not a boolean node: {node!r}")


def run_program(source_or_ast: str | WhileNode, initial: dict[str, int] | None = None, max_steps: int = 100_000) -> dict[str, int]:
    """Convenience wrapper: parse (if needed) and execute a WHILE program."""
    from repro.lang.parser import parse_program

    program = parse_program(source_or_ast) if isinstance(source_or_ast, str) else source_or_ast
    return WhileInterpreter(max_steps=max_steps).run(program, initial)


__all__ = ["ExecutionLimitExceeded", "WhileInterpreter", "WhileRuntimeError", "run_program"]
