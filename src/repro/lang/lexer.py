"""Tokenizer for the WHILE language.

Token kinds: identifiers, integer literals, keywords (``while do if then
else not and or true false skip``), operators and punctuation.  Positions
are tracked for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "while",
    "do",
    "if",
    "then",
    "else",
    "not",
    "and",
    "or",
    "true",
    "false",
    "skip",
}

_TWO_CHAR_OPS = (":=", "==", "!=", "<=", ">=")
_ONE_CHAR_OPS = "+-*/<>();"


class LexerError(ValueError):
    """Raised when the source contains a character the lexer cannot handle."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # 'ident', 'number', 'keyword', 'op', 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r})"


def tokenize(source: str) -> list[Token]:
    """Tokenize WHILE source code into a list of tokens ending with ``eof``."""
    tokens: list[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def error(message: str) -> LexerError:
        return LexerError(message, line, column)

    while index < length:
        char = source[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":  # comment to end of line
            while index < length and source[index] != "\n":
                index += 1
            continue
        two = source[index : index + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("op", two, line, column))
            index += 2
            column += 2
            continue
        if char.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            text = source[start:index]
            tokens.append(Token("number", text, line, column))
            column += len(text)
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += len(text)
            continue
        if char in _ONE_CHAR_OPS:
            tokens.append(Token("op", char, line, column))
            index += 1
            column += 1
            continue
        raise error(f"unexpected character {char!r}")

    tokens.append(Token("eof", "", line, column))
    return tokens


__all__ = ["KEYWORDS", "LexerError", "Token", "tokenize"]
