"""AST node definitions for the WHILE language (paper Figure 4a).

The grammar::

    a ::= x | n | a1 opa a2
    b ::= true | false | not b | b1 opb b2 | a1 opr a2
    S ::= x := a | S1 ; S2 | while (b) do S | if (b) then S1 else S2 | skip

Nodes are immutable dataclasses; program transformation (e.g. filling skeleton
holes) rebuilds trees rather than mutating them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator


class WhileNode:
    """Base class for every WHILE AST node."""

    def children(self) -> Iterator["WhileNode"]:
        """Yield child nodes in syntactic order."""
        for name in getattr(self, "__dataclass_fields__", {}):
            value = getattr(self, name)
            if isinstance(value, WhileNode):
                yield value

    def walk(self) -> Iterator["WhileNode"]:
        """Pre-order traversal of the subtree rooted at this node."""
        yield self
        for child in self.children():
            yield from child.walk()


# -- arithmetic expressions ----------------------------------------------------


@dataclass(frozen=True)
class Var(WhileNode):
    """A variable occurrence ``x`` (a hole site for skeleton extraction)."""

    name: str


@dataclass(frozen=True)
class Num(WhileNode):
    """An integer literal ``n``."""

    value: int


@dataclass(frozen=True)
class BinaryArith(WhileNode):
    """An arithmetic binary expression ``a1 opa a2`` with opa in + - * /."""

    op: str
    left: WhileNode
    right: WhileNode

    _VALID = ("+", "-", "*", "/")

    def __post_init__(self) -> None:
        if self.op not in self._VALID:
            raise ValueError(f"unknown arithmetic operator {self.op!r}")


# -- boolean expressions -------------------------------------------------------


@dataclass(frozen=True)
class BoolLit(WhileNode):
    """``true`` or ``false``."""

    value: bool


@dataclass(frozen=True)
class Not(WhileNode):
    """``not b``."""

    operand: WhileNode


@dataclass(frozen=True)
class BoolBinary(WhileNode):
    """``b1 opb b2`` with opb in ``and`` / ``or``."""

    op: str
    left: WhileNode
    right: WhileNode

    _VALID = ("and", "or")

    def __post_init__(self) -> None:
        if self.op not in self._VALID:
            raise ValueError(f"unknown boolean operator {self.op!r}")


@dataclass(frozen=True)
class Compare(WhileNode):
    """``a1 opr a2`` with opr a relational operator."""

    op: str
    left: WhileNode
    right: WhileNode

    _VALID = ("==", "!=", "<", "<=", ">", ">=")

    def __post_init__(self) -> None:
        if self.op not in self._VALID:
            raise ValueError(f"unknown relational operator {self.op!r}")


# -- statements ----------------------------------------------------------------


@dataclass(frozen=True)
class Skip(WhileNode):
    """The no-op statement."""


@dataclass(frozen=True)
class Assign(WhileNode):
    """``x := a``.  ``target`` is a Var node so it participates in holes."""

    target: Var
    value: WhileNode


@dataclass(frozen=True)
class Seq(WhileNode):
    """``S1 ; S2 ; ...`` -- a statement sequence."""

    statements: tuple[WhileNode, ...] = field(default_factory=tuple)

    def children(self) -> Iterator[WhileNode]:
        yield from self.statements


@dataclass(frozen=True)
class While(WhileNode):
    """``while (b) do S``."""

    condition: WhileNode
    body: WhileNode


@dataclass(frozen=True)
class If(WhileNode):
    """``if (b) then S1 else S2``."""

    condition: WhileNode
    then_branch: WhileNode
    else_branch: WhileNode


def variables_of(node: WhileNode) -> list[str]:
    """Collect the distinct variable names of a subtree, in first-use order."""
    names: list[str] = []
    for current in node.walk():
        if isinstance(current, Var) and current.name not in names:
            names.append(current.name)
    return names


def substitute_variables(node: WhileNode, names: list[str], counter: list[int] | None = None) -> WhileNode:
    """Rebuild ``node`` replacing the i-th variable occurrence with ``names[i]``.

    Occurrences are numbered in pre-order (the same order used by
    :func:`repro.lang.skeleton.extract_skeleton`).
    """
    if counter is None:
        counter = [0]

    if isinstance(node, Var):
        name = names[counter[0]]
        counter[0] += 1
        return Var(name)
    if isinstance(node, Num) or isinstance(node, BoolLit) or isinstance(node, Skip):
        return node
    if isinstance(node, BinaryArith):
        left = substitute_variables(node.left, names, counter)
        right = substitute_variables(node.right, names, counter)
        return BinaryArith(node.op, left, right)
    if isinstance(node, BoolBinary):
        left = substitute_variables(node.left, names, counter)
        right = substitute_variables(node.right, names, counter)
        return BoolBinary(node.op, left, right)
    if isinstance(node, Compare):
        left = substitute_variables(node.left, names, counter)
        right = substitute_variables(node.right, names, counter)
        return Compare(node.op, left, right)
    if isinstance(node, Not):
        return Not(substitute_variables(node.operand, names, counter))
    if isinstance(node, Assign):
        target = substitute_variables(node.target, names, counter)
        value = substitute_variables(node.value, names, counter)
        assert isinstance(target, Var)
        return Assign(target, value)
    if isinstance(node, Seq):
        return Seq(tuple(substitute_variables(stmt, names, counter) for stmt in node.statements))
    if isinstance(node, While):
        condition = substitute_variables(node.condition, names, counter)
        body = substitute_variables(node.body, names, counter)
        return While(condition, body)
    if isinstance(node, If):
        condition = substitute_variables(node.condition, names, counter)
        then_branch = substitute_variables(node.then_branch, names, counter)
        else_branch = substitute_variables(node.else_branch, names, counter)
        return If(condition, then_branch, else_branch)
    raise TypeError(f"unknown WHILE node {node!r}")


def rename_variables(node: WhileNode, mapping: dict[str, str]) -> WhileNode:
    """Apply an alpha-renaming (name -> name) to a WHILE subtree."""
    if isinstance(node, Var):
        return Var(mapping.get(node.name, node.name))
    if isinstance(node, (Num, BoolLit, Skip)):
        return node
    if isinstance(node, BinaryArith):
        return BinaryArith(node.op, rename_variables(node.left, mapping), rename_variables(node.right, mapping))
    if isinstance(node, BoolBinary):
        return BoolBinary(node.op, rename_variables(node.left, mapping), rename_variables(node.right, mapping))
    if isinstance(node, Compare):
        return Compare(node.op, rename_variables(node.left, mapping), rename_variables(node.right, mapping))
    if isinstance(node, Not):
        return Not(rename_variables(node.operand, mapping))
    if isinstance(node, Assign):
        target = rename_variables(node.target, mapping)
        assert isinstance(target, Var)
        return Assign(target, rename_variables(node.value, mapping))
    if isinstance(node, Seq):
        return Seq(tuple(rename_variables(stmt, mapping) for stmt in node.statements))
    if isinstance(node, While):
        return While(rename_variables(node.condition, mapping), rename_variables(node.body, mapping))
    if isinstance(node, If):
        return If(
            rename_variables(node.condition, mapping),
            rename_variables(node.then_branch, mapping),
            rename_variables(node.else_branch, mapping),
        )
    raise TypeError(f"unknown WHILE node {node!r}")


__all__ = [
    "Assign",
    "BinaryArith",
    "BoolBinary",
    "BoolLit",
    "Compare",
    "If",
    "Not",
    "Num",
    "Seq",
    "Skip",
    "Var",
    "While",
    "WhileNode",
    "rename_variables",
    "substitute_variables",
    "variables_of",
]
