"""Statement-level test-case reduction for WHILE programs.

The WHILE counterpart of :mod:`repro.testing.reducer`: before a bug is
"filed" the campaign deletes statements (greedily, restarting from the
smaller program after every successful deletion) while the caller's
predicate -- "the compiler still crashes with this signature" -- keeps
holding.  WHILE ASTs are immutable, so candidate programs are produced by
rebuilding the tree without one statement rather than deleting in place.

:func:`deletion_candidates` / :func:`delete_candidates` are the WHILE
implementation of the frontend deletion-candidate hooks: they expose the
deletable statements as an indexed list (deterministic pre-order) so the
chunked ddmin reducer of :mod:`repro.triage.reduce` can remove whole chunks
per predicate evaluation.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.lang.ast import If, Seq, Skip, While, WhileNode
from repro.lang.lexer import LexerError
from repro.lang.parser import ParseError, parse_program
from repro.lang.printer import to_source

Predicate = Callable[[str], bool]


def _without_statements(node: WhileNode, targets: set[int]) -> WhileNode:
    """Rebuild ``node`` with every statement in ``targets`` (ids) removed."""
    if id(node) in targets:
        return Skip()
    if isinstance(node, Seq):
        statements = tuple(
            _without_statements(statement, targets)
            for statement in node.statements
            if id(statement) not in targets
        )
        if not statements:
            return Skip()
        if len(statements) == 1:
            return statements[0]
        return Seq(statements)
    if isinstance(node, While):
        return While(node.condition, _without_statements(node.body, targets))
    if isinstance(node, If):
        return If(
            node.condition,
            _without_statements(node.then_branch, targets),
            _without_statements(node.else_branch, targets),
        )
    return node


def _without_statement(node: WhileNode, target: WhileNode) -> WhileNode:
    """Rebuild ``node`` with the statement ``target`` (by identity) removed."""
    return _without_statements(node, {id(target)})


def _deletable_statements(program: WhileNode) -> Iterator[WhileNode]:
    """Every statement node whose removal yields a smaller candidate."""
    for node in program.walk():
        if isinstance(node, Seq):
            yield from node.statements
        elif isinstance(node, (While, If)) and node is not program:
            yield node


# -- deletion-candidate hooks (the ddmin surface) -------------------------------


def deletion_candidates(source: str) -> int:
    """Count the deletable statements of ``source`` (0 when unparsable)."""
    try:
        program = parse_program(source)
    except (ParseError, LexerError):
        return 0
    return len(list(_deletable_statements(program)))


def delete_candidates(source: str, indices: Sequence[int]) -> str | None:
    """Render ``source`` with the indexed deletable statements removed.

    Returns ``None`` when the source is unparsable, an index is out of
    range, or the deletion changes nothing (a nested statement whose
    enclosing statement is also selected disappears with it, so the render
    check is what decides progress).
    """
    try:
        program = parse_program(source)
    except (ParseError, LexerError):
        return None
    statements = list(_deletable_statements(program))
    chosen = set(indices)
    if not chosen or any(not 0 <= index < len(statements) for index in chosen):
        return None
    targets = {id(statements[index]) for index in chosen}
    rendered = to_source(_without_statements(program, targets))
    if rendered == to_source(program):
        return None
    return rendered


# -- the legacy greedy reducer ---------------------------------------------------


def reduce_while_program(source: str, predicate: Predicate, max_rounds: int = 25) -> str:
    """Greedily minimise ``source`` while ``predicate(source)`` stays true.

    The input program is returned unchanged if it does not satisfy the
    predicate (nothing to preserve) or cannot be parsed.
    """
    try:
        program = parse_program(source)
    except (ParseError, LexerError):
        return source
    if not predicate(source):
        return source

    current = program
    current_source = to_source(current)
    for _ in range(max_rounds):
        changed = False
        for target in list(_deletable_statements(current)):
            candidate = _without_statement(current, target)
            rendered = to_source(candidate)
            if rendered == current_source:
                continue
            if predicate(rendered):
                current = candidate
                current_source = rendered
                changed = True
                break  # restart from the smaller program
        if not changed:
            break
    return current_source


__all__ = ["delete_candidates", "deletion_candidates", "reduce_while_program"]
