"""Statement-level test-case reduction for WHILE programs.

The WHILE counterpart of :mod:`repro.testing.reducer`: before a bug is
"filed" the campaign deletes statements (greedily, restarting from the
smaller program after every successful deletion) while the caller's
predicate -- "the compiler still crashes with this signature" -- keeps
holding.  WHILE ASTs are immutable, so candidate programs are produced by
rebuilding the tree without one statement rather than deleting in place.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.lang.ast import If, Seq, Skip, While, WhileNode
from repro.lang.lexer import LexerError
from repro.lang.parser import ParseError, parse_program
from repro.lang.printer import to_source

Predicate = Callable[[str], bool]


def _without_statement(node: WhileNode, target: WhileNode) -> WhileNode:
    """Rebuild ``node`` with the statement ``target`` (by identity) removed."""
    if node is target:
        return Skip()
    if isinstance(node, Seq):
        statements = tuple(
            _without_statement(statement, target)
            for statement in node.statements
            if statement is not target
        )
        if not statements:
            return Skip()
        if len(statements) == 1:
            return statements[0]
        return Seq(statements)
    if isinstance(node, While):
        return While(node.condition, _without_statement(node.body, target))
    if isinstance(node, If):
        return If(
            node.condition,
            _without_statement(node.then_branch, target),
            _without_statement(node.else_branch, target),
        )
    return node


def _deletable_statements(program: WhileNode) -> Iterator[WhileNode]:
    """Every statement node whose removal yields a smaller candidate."""
    for node in program.walk():
        if isinstance(node, Seq):
            yield from node.statements
        elif isinstance(node, (While, If)) and node is not program:
            yield node


def reduce_while_program(source: str, predicate: Predicate, max_rounds: int = 25) -> str:
    """Greedily minimise ``source`` while ``predicate(source)`` stays true.

    The input program is returned unchanged if it does not satisfy the
    predicate (nothing to preserve) or cannot be parsed.
    """
    try:
        program = parse_program(source)
    except (ParseError, LexerError):
        return source
    if not predicate(source):
        return source

    current = program
    current_source = to_source(current)
    for _ in range(max_rounds):
        changed = False
        for target in list(_deletable_statements(current)):
            candidate = _without_statement(current, target)
            rendered = to_source(candidate)
            if rendered == current_source:
                continue
            if predicate(rendered):
                current = candidate
                current_source = rendered
                changed = True
                break  # restart from the smaller program
        if not changed:
            break
    return current_source


__all__ = ["reduce_while_program"]
