"""Pretty-printer for WHILE programs.

``parse_program(to_source(ast))`` is the identity up to trivial formatting,
which the round-trip property tests rely on.
"""

from __future__ import annotations

from repro.lang.ast import (
    Assign,
    BinaryArith,
    BoolBinary,
    BoolLit,
    Compare,
    If,
    Not,
    Num,
    Seq,
    Skip,
    Var,
    While,
    WhileNode,
)


def _expr(node: WhileNode) -> str:
    if isinstance(node, Var):
        return node.name
    if isinstance(node, Num):
        return str(node.value)
    if isinstance(node, BoolLit):
        return "true" if node.value else "false"
    if isinstance(node, BinaryArith):
        return f"({_expr(node.left)} {node.op} {_expr(node.right)})"
    if isinstance(node, Compare):
        return f"{_expr(node.left)} {node.op} {_expr(node.right)}"
    if isinstance(node, BoolBinary):
        return f"({_expr(node.left)} {node.op} {_expr(node.right)})"
    if isinstance(node, Not):
        return f"not ({_expr(node.operand)})"
    raise TypeError(f"not an expression node: {node!r}")


def _stmt(node: WhileNode, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(node, Skip):
        return [f"{pad}skip"]
    if isinstance(node, Assign):
        return [f"{pad}{node.target.name} := {_expr(node.value)}"]
    if isinstance(node, Seq):
        lines: list[str] = []
        for index, statement in enumerate(node.statements):
            body = _stmt(statement, indent)
            if index < len(node.statements) - 1:
                body[-1] = body[-1] + " ;"
            lines.extend(body)
        return lines
    if isinstance(node, While):
        lines = [f"{pad}while ({_expr(node.condition)}) do ("]
        lines.extend(_stmt(node.body, indent + 1))
        lines.append(f"{pad})")
        return lines
    if isinstance(node, If):
        lines = [f"{pad}if ({_expr(node.condition)}) then ("]
        lines.extend(_stmt(node.then_branch, indent + 1))
        lines.append(f"{pad}) else (")
        lines.extend(_stmt(node.else_branch, indent + 1))
        lines.append(f"{pad})")
        return lines
    raise TypeError(f"not a statement node: {node!r}")


def to_source(program: WhileNode) -> str:
    """Render a WHILE AST back to concrete syntax."""
    return "\n".join(_stmt(program, 0)) + "\n"


__all__ = ["to_source"]
