"""The WHILE toy language of the paper (Figure 4).

The WHILE language has no lexical scoping -- every variable is global -- which
makes it the cleanest setting to explain skeletal program enumeration
(Sections 3 and 4.1 of the paper).  The package provides a lexer, parser, AST,
pretty-printer, interpreter and skeleton extractor, so the paper's Figure 5
example can be reproduced end to end and SPE-generated WHILE variants can be
executed to confirm that alpha-equivalent programs are semantically
equivalent (Theorem 1 in the unscoped setting).

Beyond the paper walkthrough, WHILE is a full campaign language: the
parse-once skeleton binder (:mod:`repro.lang.skeleton`), the optimizing
compiler-under-test with seeded ``wc-*`` versions (:mod:`repro.lang.compile`)
and the statement reducer (:mod:`repro.lang.reduce`) implement everything the
frontend plug-in protocol (:mod:`repro.frontends`) needs, so
``repro campaign --lang while`` runs the same differential-testing pipeline
as mini-C.
"""

from repro.lang.ast import (
    Assign,
    BinaryArith,
    BoolBinary,
    BoolLit,
    Compare,
    If,
    Not,
    Num,
    Seq,
    Skip,
    Var,
    While,
    WhileNode,
)
from repro.lang.compile import WhileCompiler, WhileModule, execute_while
from repro.lang.interp import ExecutionLimitExceeded, WhileInterpreter, run_program
from repro.lang.lexer import LexerError, Token, tokenize
from repro.lang.parser import ParseError, parse_program
from repro.lang.printer import to_source
from repro.lang.reduce import reduce_while_program
from repro.lang.skeleton import SkeletonExtractionError, extract_skeleton

__all__ = [
    "Assign",
    "BinaryArith",
    "BoolBinary",
    "BoolLit",
    "Compare",
    "ExecutionLimitExceeded",
    "If",
    "LexerError",
    "Not",
    "Num",
    "ParseError",
    "Seq",
    "Skip",
    "SkeletonExtractionError",
    "Token",
    "Var",
    "While",
    "WhileCompiler",
    "WhileInterpreter",
    "WhileModule",
    "WhileNode",
    "execute_while",
    "extract_skeleton",
    "parse_program",
    "reduce_while_program",
    "run_program",
    "to_source",
    "tokenize",
]
