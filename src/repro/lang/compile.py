"""An optimizing "compiled" evaluator for WHILE: the compiler under test.

The paper's campaign methodology needs *two* executors per language: a
trusted reference (for WHILE, the direct interpreter of
:mod:`repro.lang.interp`) and a compiler under test whose produced code can
disagree with it.  :class:`WhileCompiler` plays the second role the same way
:class:`repro.compiler.driver.Compiler` does for mini-C:

1. parse (or accept an already-bound skeleton AST -- the parse-once path);
2. frontend checks (seeded frontend faults);
3. an optimization pipeline over the immutable WHILE AST -- constant
   folding, self-comparison folding, dead-branch elimination, ``skip``
   elision -- gated by the ``-O`` level, with pass-level seeded faults;
4. on request, execution of the *optimized* program on the interpreter to
   observe the produced "binary"'s behaviour.

Compiler versions form the ``wc`` lineage (registered with
:func:`repro.compiler.versions.register_lineage`), mirroring the scc/lcc
model: every version is the same pipeline plus a version-specific set of
seeded faults, so the bug database, affected-version queries and Table 3/4
style aggregation work for WHILE campaigns unchanged.

The optimizer always *rebuilds* the AST (it never aliases nodes of its
input): variant ASTs are shared, mutable-in-place structures owned by the
skeleton binder, so a compiled module must not change retroactively when the
binder moves the skeleton to the next characteristic vector.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.compiler.driver import CompileOutcome, PipelineCache, PipelineRecord
from repro.compiler.errors import CompilationError, InternalCompilerError
from repro.compiler.faults import Fault, FaultKind, FaultSet
from repro.compiler.pipeline import OptimizationLevel
from repro.compiler.versions import CompilerVersion, get_version, register_lineage
from repro.core.execution import ExecutionResult, ExecutionStatus
from repro.core.holes import BoundVariant
from repro.lang.ast import (
    Assign,
    BinaryArith,
    BoolBinary,
    BoolLit,
    Compare,
    If,
    Not,
    Num,
    Seq,
    Skip,
    Var,
    While,
    WhileNode,
)
from repro.lang.codegen import compile_program_runner
from repro.lang.interp import ExecutionLimitExceeded, WhileInterpreter, WhileRuntimeError
from repro.lang.lexer import LexerError
from repro.lang.parser import ParseError, parse_program
from repro.lang.printer import to_source

# Version ordering within the WHILE-compiler lineage (older first).
WC_ORDER = ["wc-1.0", "wc-2.0", "wc-trunk"]

WC_BUG_CATALOGUE: list[Fault] = [
    Fault(
        id="wfold-sub-self",
        component="middle-end",
        kind=FaultKind.CRASH,
        description="constant folding asserts when both operands of '-' are the same variable",
        priority="P1",
        min_opt_level=1,
        introduced_in="wc-1.0",
        fixed_in=None,
        crash_signature="in wfold_binary, at wfold.c:118",
    ),
    Fault(
        id="wcmp-self-reflexive",
        component="tree-optimization",
        kind=FaultKind.WRONG_CODE,
        description="self-comparison folding treats <= and >= like < and > (folds them to false)",
        priority="P2",
        min_opt_level=1,
        introduced_in="wc-2.0",
        fixed_in=None,
        crash_signature="",
    ),
    Fault(
        id="wsub-name-commute",
        component="tree-optimization",
        kind=FaultKind.WRONG_CODE,
        description="reassociation canonicalises variable subtraction into name order",
        priority="P2",
        min_opt_level=2,
        introduced_in="wc-trunk",
        fixed_in=None,
        crash_signature="",
    ),
    Fault(
        id="wopt-fixpoint-blowup",
        component="middle-end",
        kind=FaultKind.PERFORMANCE,
        description="the pass manager re-runs the whole pipeline per self-assignment",
        priority="P4",
        min_opt_level=1,
        introduced_in="wc-1.0",
        fixed_in=None,
        crash_signature="",
    ),
    Fault(
        id="wfrontend-dup-branches",
        component="frontend",
        kind=FaultKind.CRASH,
        description="branch deduplication crashes when then/else render identically",
        priority="P3",
        min_opt_level=0,
        introduced_in="wc-1.0",
        fixed_in="wc-trunk",
        crash_signature="in wcheck_branches, at wfront.c:77",
    ),
]

register_lineage("wc", WC_ORDER, WC_BUG_CATALOGUE)

#: How many times the faulty pass manager re-runs the pipeline per
#: self-assignment (the performance fault's compile-time blow-up).
_BLOWUP_RERUNS = 120

#: Sentinel distinguishing "memo not computed" from a computed ``None``.
_UNSET = object()

#: Process-wide memo of compiled oracle-side runners, keyed by optimized
#: module content sha (the same identity the VM-result cache uses): distinct
#: configurations and campaigns frequently produce identical optimized
#: programs, so each is translated to Python once.  FIFO-bounded like the
#: other campaign caches; ``None`` caches "not translatable".
_PROGRAM_RUNNER_ENTRIES = 4096
_program_runners: dict = {}


@dataclass
class WhileModule:
    """The "binary" a WHILE compilation produces: the optimized program.

    ``str()`` renders the optimized source -- the differential oracle uses it
    as the key for sharing execution results between configurations that
    produced identical modules.
    """

    name: str
    program: WhileNode
    # Rendered-source memo: the oracle stringifies the module once per
    # configuration for its result-sharing cache key, and the program is
    # never mutated after compilation (the optimizer rebuilds, see module
    # docstring), so rendering once is safe.
    _source: str | None = field(default=None, repr=False, compare=False)

    def __str__(self) -> str:
        if self._source is None:
            self._source = to_source(self.program)
        return self._source


def execute_while(program: WhileNode, max_steps: int = 100_000) -> ExecutionResult:
    """Run a WHILE program and convert its final store to an ExecutionResult.

    The observable behaviour is the final store rendered one ``name=value``
    line per variable in name order (WHILE's stand-in for stdout) with exit
    code 0.  Division by zero maps to ``ERROR`` and exhausted fuel to
    ``TIMEOUT``; either makes the oracle skip the wrong-code comparison, the
    same role undefined behaviour plays for mini-C.
    """
    interpreter = WhileInterpreter(max_steps=max_steps)
    try:
        store = interpreter.run(program)
    except ExecutionLimitExceeded as limit:
        return ExecutionResult(ExecutionStatus.TIMEOUT, detail=str(limit))
    except WhileRuntimeError as error:
        return ExecutionResult(ExecutionStatus.ERROR, detail=str(error))
    stdout = "".join(f"{name}={value}\n" for name, value in sorted(store.items()))
    return ExecutionResult(ExecutionStatus.OK, exit_code=0, stdout=stdout)


class WhileCompiler:
    """A simulated WHILE compiler binary: one version at one optimization level.

    Mirrors the surface of :class:`repro.compiler.driver.Compiler` (the
    frontend-protocol executor contract): ``compile_source``,
    ``compile_variant``, ``run`` and ``vm_max_steps``.
    """

    def __init__(
        self,
        version: str | CompilerVersion = "reference",
        opt_level: OptimizationLevel | int = OptimizationLevel.O2,
        machine_bits: int = 64,
        # Above the oracle's reference-interpreter budget (200k), like the
        # mini-C VM: a program the reference completes must never time out
        # in the produced code unless a seeded fault really changed it.
        vm_max_steps: int = 500_000,
    ) -> None:
        self.version = get_version(version) if isinstance(version, str) else version
        self.opt_level = OptimizationLevel(int(opt_level))
        self.machine_bits = machine_bits
        self.vm_max_steps = vm_max_steps
        self._fault_dict = {fault.id: fault for fault in self.version.faults}
        #: Optional campaign-scoped pipeline-outcome cache, mirroring
        #: :attr:`repro.compiler.driver.Compiler.pipeline_cache`.
        self.pipeline_cache: PipelineCache | None = None
        #: Mirrors :attr:`repro.compiler.driver.Compiler.verify_ir` so the
        #: oracle can set the policy uniformly; WHILE compiles by rewriting
        #: its own AST (no three-address IR), so there is nothing to verify
        #: and the flag is accepted but inert.
        self.verify_ir = False

    def _fresh_faults(self) -> FaultSet:
        return FaultSet(faults=self._fault_dict, opt_level=int(self.opt_level))

    # -- compilation -------------------------------------------------------------

    def compile_source(self, source: str, name: str = "<while>") -> CompileOutcome:
        """Compile WHILE source text; crashes are captured, never raised."""

        def build(faults: FaultSet, outcome: CompileOutcome) -> WhileModule:
            try:
                program = parse_program(source)
            except (ParseError, LexerError) as error:
                raise CompilationError(str(error)) from None
            return self._build_module(program, name, faults, outcome)

        return self._compile(name, build)

    def compile_variant(self, variant: BoundVariant, name: str = "<variant>") -> CompileOutcome:
        """Compile a bound variant through the parse-once fast path.

        The variant's program is the skeleton's shared AST rebound in
        O(holes); no render or re-parse happens.  The optimizer rebuilds its
        output, so the produced module stays valid after the next rebind.

        With a :attr:`pipeline_cache` wired, the fold pipeline is keyed on
        the content sha of the variant's rendered source (the printer is
        injective on programs, so equal text means equal pre-opt AST) per
        configuration, and repeats replay the recorded optimized program,
        triggered faults and effort -- observationally identical to the
        uncached path.
        """
        cache = self.pipeline_cache
        if cache is None:

            def build(faults: FaultSet, outcome: CompileOutcome) -> WhileModule:
                return self._build_module(variant.program, name, faults, outcome)

            return self._compile(name, build)
        return self._compile_variant_cached(variant, name, cache)

    def _compile_variant_cached(
        self, variant: BoundVariant, name: str, cache: PipelineCache
    ) -> CompileOutcome:
        """The pipeline-dedup fast path of :meth:`compile_variant`."""
        outcome = CompileOutcome(
            source_name=name,
            version=self.version.name,
            opt_level=self.opt_level,
            machine_bits=self.machine_bits,
        )
        faults = self._fresh_faults()
        try:
            program = variant.program
            self._frontend_checks_variant(variant, program, faults, outcome)
            sha = variant.cache.get("while_source_sha")
            if sha is None:
                sha = hashlib.sha256(variant.source.encode()).hexdigest()
                variant.cache["while_source_sha"] = sha
            key = (self.version.name, int(self.opt_level), self.machine_bits, sha)
            record = cache.get(key)
            if record is None:
                record = self._run_pipeline_recorded(program, faults)
                cache.put(key, record)
            else:
                faults.triggered.extend(record.triggered)
            outcome.compile_effort = record.compile_effort
            if record.crash is not None:
                raise record.crash
            # A fresh wrapper per outcome (the record's module is shared and
            # carries no caller name); program and rendered source are reused.
            template = record.module
            outcome.module = WhileModule(
                name=name, program=template.program, _source=str(template)
            )
            outcome.module_sha = record.module_sha
            outcome.success = True
        except InternalCompilerError as crash:
            outcome.crash = crash
        except CompilationError as rejection:
            outcome.rejected = str(rejection)
        outcome.triggered_faults = list(dict.fromkeys(faults.triggered))
        return outcome

    def _run_pipeline_recorded(self, program: WhileNode, faults: FaultSet) -> PipelineRecord:
        """Run the fold pipeline once and capture its effects as a record.

        The WHILE pipeline records no coverage (only the frontend check
        does, and that runs outside the cached region per configuration),
        so the record's coverage tuple is empty.  A crash leaves the effort
        at 0, exactly like the legacy path where the effort assignment in
        ``_build_module`` is never reached.
        """
        base = len(faults.triggered)
        effort = [0]
        crash: InternalCompilerError | None = None
        optimized: WhileNode | None = None
        try:
            optimized = self._run_pipeline(program, faults, effort)
        except InternalCompilerError as error:
            crash = error
        triggered = tuple(dict.fromkeys(faults.triggered[base:]))
        if crash is not None:
            return PipelineRecord(None, None, crash, triggered, (), 0)
        module = WhileModule(name="<module>", program=optimized)
        module_sha = hashlib.sha256(str(module).encode()).hexdigest()
        return PipelineRecord(module, module_sha, None, triggered, (), effort[0])

    def _frontend_checks_variant(
        self, variant: BoundVariant, program: WhileNode, faults: FaultSet, outcome: CompileOutcome
    ) -> None:
        """:meth:`_frontend_checks` with a per-variant verdict memo.

        The dup-branches verdict is a pure function of the program (the
        fault set only gates whether it fires), so the walk -- and its
        ``to_source`` renders -- run once per variant instead of once per
        configuration.
        """
        outcome.coverage.record("wfrontend.program")
        if faults.active("wfrontend-dup-branches"):
            detail = variant.cache.get("wfe_dup_branches", _UNSET)
            if detail is _UNSET:
                detail = None
                for node in program.walk():
                    if isinstance(node, If) and to_source(node.then_branch) == to_source(
                        node.else_branch
                    ):
                        detail = f"'{to_source(node.then_branch).strip()}'"
                        break
                variant.cache["wfe_dup_branches"] = detail
            if detail is not None:
                faults.crash("wfrontend-dup-branches", detail=detail)

    def _compile(self, name: str, build_module) -> CompileOutcome:
        outcome = CompileOutcome(
            source_name=name,
            version=self.version.name,
            opt_level=self.opt_level,
            machine_bits=self.machine_bits,
        )
        faults = self._fresh_faults()
        try:
            outcome.module = build_module(faults, outcome)
            outcome.success = True
        except InternalCompilerError as crash:
            outcome.crash = crash
        except CompilationError as rejection:
            outcome.rejected = str(rejection)
        outcome.triggered_faults = list(dict.fromkeys(faults.triggered))
        return outcome

    def _build_module(
        self, program: WhileNode, name: str, faults: FaultSet, outcome: CompileOutcome
    ) -> WhileModule:
        self._frontend_checks(program, faults, outcome)
        effort = [0]
        optimized = self._run_pipeline(program, faults, effort)
        outcome.compile_effort = effort[0]
        return WhileModule(name=name, program=optimized)

    # -- execution ----------------------------------------------------------------

    def run(self, outcome: CompileOutcome, entry: str = "main") -> ExecutionResult:
        """Execute the compiled (optimized) program.

        The produced "binary" runs through the concrete codegen tier
        (:func:`repro.lang.codegen.compile_program_runner`) -- the program
        is translated once per distinct optimized module (content-sha
        memo shared process-wide) and every execution is one call into
        compiled bytecode, observationally identical to the interpreter
        by the codegen exactness contract.  Programs outside the
        translatable subset (defensive; the language is closed) fall back
        to :func:`execute_while`.
        """
        if not outcome.success or outcome.module is None:
            return ExecutionResult(ExecutionStatus.ERROR, detail="compilation did not succeed")
        module = outcome.module
        sha = outcome.module_sha
        if sha is None:
            sha = hashlib.sha256(str(module).encode()).hexdigest()
        runner = _program_runners.get(sha, _UNSET)
        if runner is _UNSET:
            runner = compile_program_runner(module.program)
            _program_runners[sha] = runner
            while len(_program_runners) > _PROGRAM_RUNNER_ENTRIES:
                del _program_runners[next(iter(_program_runners))]
        if runner is None:
            return execute_while(module.program, max_steps=self.vm_max_steps)
        return runner.run((), max_steps=self.vm_max_steps)

    # -- frontend ------------------------------------------------------------------

    def _frontend_checks(
        self, program: WhileNode, faults: FaultSet, outcome: CompileOutcome
    ) -> None:
        outcome.coverage.record("wfrontend.program")
        if faults.active("wfrontend-dup-branches"):
            for node in program.walk():
                if isinstance(node, If) and to_source(node.then_branch) == to_source(
                    node.else_branch
                ):
                    faults.crash(
                        "wfrontend-dup-branches",
                        detail=f"'{to_source(node.then_branch).strip()}'",
                    )

    # -- the optimization pipeline ----------------------------------------------------

    def _run_pipeline(self, program: WhileNode, faults: FaultSet, effort: list[int]) -> WhileNode:
        """Fold to a fixpoint (bounded), honouring the opt level and faults.

        At ``-O0`` the program is only rebuilt (no rewriting), like a real
        compiler's unoptimized pipeline.  The performance fault re-runs the
        whole pipeline per self-assignment, inflating ``compile_effort`` by
        orders of magnitude without changing the produced code.  The faulty
        reruns are pure repetition -- every rerun starts from the same
        ``program``, the folds are deterministic, and fault triggers
        deduplicate -- so the simulator runs the pipeline *once* and scales
        the effort delta by the rerun count: every observable
        (``compile_effort`` included) is identical to actually looping.
        """
        reruns = 1
        if faults.active("wopt-fixpoint-blowup") and any(
            isinstance(node, Assign)
            and isinstance(node.value, Var)
            and node.value.name == node.target.name
            for node in program.walk()
        ):
            faults.trigger("wopt-fixpoint-blowup")
            reruns = _BLOWUP_RERUNS
        optimize = int(self.opt_level) >= 1
        base = effort[0]
        result = program
        if not optimize:
            result = self._rebuild(result, effort)
        else:
            for _ in range(4):  # fixpoint bound; folds converge quickly
                folded = self._fold(result, faults, effort)
                # Structural equality: the nodes are frozen dataclasses and
                # the printer is injective on them, so this is exactly the
                # historical `to_source(folded) == to_source(result)` check
                # without rendering both trees per iteration.  The effort
                # counter is untouched either way (rendering never counted).
                if folded == result:
                    result = folded
                    break
                result = folded
        if reruns > 1:
            effort[0] += (reruns - 1) * (effort[0] - base)
        return result

    def _rebuild(self, node: WhileNode, effort: list[int]) -> WhileNode:
        """Structure-preserving deep copy (no aliasing with the input AST)."""
        effort[0] += 1
        if isinstance(node, Var):
            return Var(node.name)
        if isinstance(node, (Num, BoolLit, Skip)):
            return node
        if isinstance(node, BinaryArith):
            return BinaryArith(node.op, self._rebuild(node.left, effort), self._rebuild(node.right, effort))
        if isinstance(node, Compare):
            return Compare(node.op, self._rebuild(node.left, effort), self._rebuild(node.right, effort))
        if isinstance(node, BoolBinary):
            return BoolBinary(node.op, self._rebuild(node.left, effort), self._rebuild(node.right, effort))
        if isinstance(node, Not):
            return Not(self._rebuild(node.operand, effort))
        if isinstance(node, Assign):
            target = self._rebuild(node.target, effort)
            assert isinstance(target, Var)
            return Assign(target, self._rebuild(node.value, effort))
        if isinstance(node, Seq):
            return Seq(tuple(self._rebuild(stmt, effort) for stmt in node.statements))
        if isinstance(node, While):
            return While(self._rebuild(node.condition, effort), self._rebuild(node.body, effort))
        if isinstance(node, If):
            return If(
                self._rebuild(node.condition, effort),
                self._rebuild(node.then_branch, effort),
                self._rebuild(node.else_branch, effort),
            )
        raise TypeError(f"unknown WHILE node {node!r}")

    def _fold(self, node: WhileNode, faults: FaultSet, effort: list[int]) -> WhileNode:
        effort[0] += 1
        if isinstance(node, Var):
            return Var(node.name)
        if isinstance(node, (Num, BoolLit, Skip)):
            return node
        if isinstance(node, BinaryArith):
            return self._fold_arith(node, faults, effort)
        if isinstance(node, Compare):
            return self._fold_compare(node, faults, effort)
        if isinstance(node, BoolBinary):
            left = self._fold(node.left, faults, effort)
            right = self._fold(node.right, faults, effort)
            if isinstance(left, BoolLit):
                if node.op == "and":
                    return right if left.value else BoolLit(False)
                return BoolLit(True) if left.value else right
            if isinstance(right, BoolLit):
                # Expression evaluation is effect-free, so dropping the left
                # operand of `b and false` / `b or true` is sound.
                if node.op == "and" and not right.value:
                    return BoolLit(False)
                if node.op == "or" and right.value:
                    return BoolLit(True)
            return BoolBinary(node.op, left, right)
        if isinstance(node, Not):
            operand = self._fold(node.operand, faults, effort)
            if isinstance(operand, BoolLit):
                return BoolLit(not operand.value)
            return Not(operand)
        if isinstance(node, Assign):
            target = self._fold(node.target, faults, effort)
            assert isinstance(target, Var)
            return Assign(target, self._fold(node.value, faults, effort))
        if isinstance(node, Seq):
            statements = []
            for statement in node.statements:
                folded = self._fold(statement, faults, effort)
                if isinstance(folded, Skip):
                    continue
                statements.append(folded)
            if not statements:
                return Skip()
            if len(statements) == 1:
                return statements[0]
            return Seq(tuple(statements))
        if isinstance(node, While):
            condition = self._fold(node.condition, faults, effort)
            if isinstance(condition, BoolLit) and not condition.value:
                return Skip()
            return While(condition, self._fold(node.body, faults, effort))
        if isinstance(node, If):
            condition = self._fold(node.condition, faults, effort)
            then_branch = self._fold(node.then_branch, faults, effort)
            else_branch = self._fold(node.else_branch, faults, effort)
            if isinstance(condition, BoolLit):
                return then_branch if condition.value else else_branch
            return If(condition, then_branch, else_branch)
        raise TypeError(f"unknown WHILE node {node!r}")

    def _fold_arith(self, node: BinaryArith, faults: FaultSet, effort: list[int]) -> WhileNode:
        left = self._fold(node.left, faults, effort)
        right = self._fold(node.right, faults, effort)
        if isinstance(left, Num) and isinstance(right, Num):
            if node.op == "+":
                return Num(left.value + right.value)
            if node.op == "-":
                return Num(left.value - right.value)
            if node.op == "*":
                return Num(left.value * right.value)
            if right.value != 0:  # leave division by zero for the runtime
                return Num(int(left.value / right.value))
            return BinaryArith(node.op, left, right)
        if node.op == "-" and isinstance(left, Var) and isinstance(right, Var):
            if left.name == right.name:
                if faults.active("wfold-sub-self"):
                    faults.crash(
                        "wfold-sub-self", detail=f"'{left.name} - {right.name}'"
                    )
                return Num(0)
            if faults.active("wsub-name-commute") and left.name > right.name:
                # The seeded wrong-code bug: x - y "canonicalised" to y - x.
                faults.trigger("wsub-name-commute")
                return BinaryArith("-", right, left)
        if node.op == "+" and isinstance(right, Num) and right.value == 0:
            return left
        if node.op == "+" and isinstance(left, Num) and left.value == 0:
            return right
        if node.op == "-" and isinstance(right, Num) and right.value == 0:
            return left
        if node.op == "*" and isinstance(right, Num) and right.value == 1:
            return left
        if node.op == "*" and isinstance(left, Num) and left.value == 1:
            return right
        return BinaryArith(node.op, left, right)

    def _fold_compare(self, node: Compare, faults: FaultSet, effort: list[int]) -> WhileNode:
        left = self._fold(node.left, faults, effort)
        right = self._fold(node.right, faults, effort)
        if isinstance(left, Num) and isinstance(right, Num):
            value = {
                "==": left.value == right.value,
                "!=": left.value != right.value,
                "<": left.value < right.value,
                "<=": left.value <= right.value,
                ">": left.value > right.value,
                ">=": left.value >= right.value,
            }[node.op]
            return BoolLit(value)
        if isinstance(left, Var) and isinstance(right, Var) and left.name == right.name:
            if node.op in ("<", ">", "!="):
                return BoolLit(False)
            if node.op == "==":
                return BoolLit(True)
            # op is <= or >=: reflexively true -- unless the seeded fault
            # lumps them in with the strict comparisons.
            if faults.active("wcmp-self-reflexive"):
                faults.trigger("wcmp-self-reflexive")
                return BoolLit(False)
            return BoolLit(True)
        return Compare(node.op, left, right)


__all__ = [
    "WC_BUG_CATALOGUE",
    "WC_ORDER",
    "WhileCompiler",
    "WhileModule",
    "execute_while",
]
