"""Batched reference execution for WHILE skeletons: one generated Python
function per skeleton.

The campaign's reference side pays the tree-walking interpreter
(:mod:`repro.lang.interp`) once per variant even though every variant of a
skeleton shares the *same* program structure -- only the names at the hole
sites (the ``Var`` occurrences) change.  This module translates the
skeleton's program **once** into a Python function parameterised by the
characteristic vector; each variant then costs one call into already-compiled
bytecode instead of ~steps dictionary dispatches.

Exactness contract -- the generated code must be observably
indistinguishable from ``execute_while(variant.program, max_steps)``
(:func:`repro.lang.compile.execute_while`) for every vector and step budget:

* the store is a plain dict, reads default to 0 (``store.get(name, 0)``),
  and the OK observable is the sorted ``name=value`` rendering with exit 0;
* step accounting mirrors :class:`~repro.lang.interp.WhileInterpreter`
  exactly: +1 at every statement-node entry (``Skip``/``Assign``/``Seq``/
  ``While``/``If`` -- expressions never tick) and +1 per loop iteration
  after the body.  Pending ticks are kept in a local counter and *flushed*
  (checked against the budget) at every point where the interpreter could
  observably raise before the next flush: before evaluating any expression
  containing a division (the sole runtime error, and ``TIMEOUT`` must win
  over ``ERROR`` exactly when the interpreter's earlier tick would have
  fired), at every loop back-edge (so non-terminating loops still exhaust
  the budget), and at function exit (so a straight-line overrun still times
  out instead of returning OK);
* division is ``int(left / right)`` after a zero check, byte-for-byte the
  interpreter's semantics (including C-style truncation toward zero and any
  ``OverflowError`` a huge quotient would raise);
* ``and``/``or`` short-circuit exactly as the interpreter's Python
  ``and``/``or`` do -- WHILE expressions are pure, so evaluation order is
  unobservable beyond short-circuiting.

Every WHILE program is eligible (the language is closed over the node set
below); an unknown node type bails to the interpreter fallback rather than
guessing.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.execution import ExecutionResult, ExecutionStatus
from repro.core.holes import CharacteristicVector, Skeleton
from repro.lang.ast import (
    Assign,
    BinaryArith,
    BoolBinary,
    BoolLit,
    Compare,
    If,
    Not,
    Num,
    Seq,
    Skip,
    Var,
    While,
    WhileNode,
)


class _Bail(Exception):
    """The skeleton is outside the translatable subset (defensive only)."""


class _Timeout(Exception):
    """Internal: step budget exhausted (maps to TIMEOUT)."""


class _RuntimeFault(Exception):
    """Internal: WHILE runtime error (maps to ERROR, e.g. division by zero)."""


def _div(left: int, right: int) -> int:
    if right == 0:
        raise _RuntimeFault("division by zero")
    return int(left / right)  # C-style truncation toward zero


def _has_division(node: WhileNode) -> bool:
    return any(
        isinstance(child, BinaryArith) and child.op == "/" for child in node.walk()
    )


class _Emitter:
    """Translates one skeleton program into the body of a Python function.

    ``hole_of`` maps ``id(var_node)`` to the hole index; every ``Var``
    occurrence is a hole in WHILE, so a site reads/writes ``_s[N[k]]`` where
    ``N`` is the vector's name tuple.  A ``hole_of`` of ``None`` selects
    *concrete* mode: the program has no holes to parameterise, so every
    name is embedded as a string literal (the vector argument is ignored)
    -- used to compile the optimizer's *output* for oracle-side execution.
    """

    def __init__(self, hole_of: dict[int, int] | None) -> None:
        self._hole_of = hole_of
        self._lines: list[str] = []
        self._indent = 1
        self._pending = 0

    def _emit(self, line: str) -> None:
        self._lines.append("    " * self._indent + line)

    def _tick(self, count: int = 1) -> None:
        self._pending += count

    def _flush(self) -> None:
        """Materialise pending ticks and check the budget."""
        if self._pending:
            self._emit(f"s += {self._pending}" if self._pending > 1 else "s += 1")
            self._pending = 0
        self._emit("if s > _ms: raise _TO()")

    def _spill(self) -> None:
        """Materialise pending ticks without a budget check (before emitting
        a control-flow construct whose branches flush independently)."""
        if self._pending:
            self._emit(f"s += {self._pending}" if self._pending > 1 else "s += 1")
            self._pending = 0

    # -- expressions -------------------------------------------------------

    def _site(self, node: Var) -> str:
        if self._hole_of is None:
            return repr(node.name)
        return f"N[{self._hole_of[id(node)]}]"

    def _expr(self, node: WhileNode) -> str:
        if isinstance(node, Num):
            return repr(node.value)
        if isinstance(node, Var):
            return f"_s.get({self._site(node)}, 0)"
        if isinstance(node, BinaryArith):
            left, right = self._expr(node.left), self._expr(node.right)
            if node.op == "/":
                return f"_div({left}, {right})"
            return f"({left} {node.op} {right})"
        if isinstance(node, BoolLit):
            return "True" if node.value else "False"
        if isinstance(node, Not):
            return f"(not {self._expr(node.operand)})"
        if isinstance(node, BoolBinary):
            return f"({self._expr(node.left)} {node.op} {self._expr(node.right)})"
        if isinstance(node, Compare):
            return f"({self._expr(node.left)} {node.op} {self._expr(node.right)})"
        raise _Bail(f"untranslatable expression node {type(node).__name__}")

    # -- statements --------------------------------------------------------

    def _stmt(self, node: WhileNode) -> None:
        self._tick()  # _exec entry tick, for every statement node
        if isinstance(node, Skip):
            return
        if isinstance(node, Assign):
            if _has_division(node.value):
                self._flush()
            self._emit(f"_s[{self._site(node.target)}] = {self._expr(node.value)}")
            return
        if isinstance(node, Seq):
            for statement in node.statements:
                self._stmt(statement)
            return
        if isinstance(node, While):
            self._spill()
            condition_divides = _has_division(node.condition)
            self._emit("while True:")
            self._indent += 1
            if condition_divides:
                self._flush()
            self._emit(f"if not {self._expr(node.condition)}: break")
            self._stmt_block(node.body)
            self._tick()  # per-iteration tick, after the body
            self._flush()  # back-edge: budget check every iteration
            self._indent -= 1
            return
        if isinstance(node, If):
            if _has_division(node.condition):
                self._flush()
            else:
                self._spill()
            self._emit(f"if {self._expr(node.condition)}:")
            self._indent += 1
            self._stmt_block(node.then_branch)
            self._spill()
            self._indent -= 1
            self._emit("else:")
            self._indent += 1
            self._stmt_block(node.else_branch)
            self._spill()
            self._indent -= 1
            return
        raise _Bail(f"untranslatable statement node {type(node).__name__}")

    def _stmt_block(self, node: WhileNode) -> None:
        """One branch/body statement, guaranteed to emit at least one line."""
        before = len(self._lines)
        self._stmt(node)
        if len(self._lines) == before:
            self._emit("pass")

    # -- entry -------------------------------------------------------------

    def translate(self, program: WhileNode) -> str:
        self._emit("_s = {}")
        self._emit("s = 0")
        self._stmt(program)
        self._flush()  # a straight-line overrun must still time out
        self._emit("return _s")
        body = "\n".join(self._lines)
        return f"def _skeleton_main(N, _ms):\n{body}\n"


#: Vectorized trampoline, compiled once into each skeleton's namespace: a
#: whole chunk of vectors enters the generated code in one Python call, with
#: the try/except ladder, the detail strings and the sorted-store rendering
#: inside compiled code -- observationally identical to calling
#: :meth:`WhileSkeletonRunner.run` per vector (``'%s=%s\\n' %`` renders the
#: same text as the scalar path's f-string for the str/int store).
_BATCH_SOURCE = """\
def _skeleton_batch(_frames, _ms, _results):
    _append = _results.append
    _join = ''.join
    _main = _skeleton_main
    _to_detail = 'exceeded %s steps' % (_ms,)
    for N in _frames:
        try:
            _store = _main(N, _ms)
        except _TO:
            _append(_R(_TIMEOUT, None, '', _to_detail))
            continue
        except _RF as _e:
            _append(_R(_ERROR, None, '', str(_e)))
            continue
        _append(_R(_OK, 0, _join(['%s=%s\\n' % _kv for _kv in sorted(_store.items())])))
"""


class WhileSkeletonRunner:
    """Executes characteristic vectors through a compiled skeleton body."""

    __slots__ = ("_fn", "_batch")

    def __init__(self, fn, batch=None) -> None:
        self._fn = fn
        self._batch = batch

    def run(self, vector: Sequence[str], max_steps: int = 200_000) -> ExecutionResult:
        try:
            store = self._fn(tuple(vector), max_steps)
        except _Timeout:
            return ExecutionResult(
                ExecutionStatus.TIMEOUT, detail=f"exceeded {max_steps} steps"
            )
        except _RuntimeFault as error:
            return ExecutionResult(ExecutionStatus.ERROR, detail=str(error))
        stdout = "".join(f"{name}={value}\n" for name, value in sorted(store.items()))
        return ExecutionResult(ExecutionStatus.OK, exit_code=0, stdout=stdout)

    def run_batch(
        self, vectors: Sequence[CharacteristicVector], max_steps: int = 200_000
    ) -> list[ExecutionResult]:
        """One generated-trampoline call for the whole batch (argument frames
        precomputed in bulk); per-vector :meth:`run` fallback for runners
        built before the vectorized tier existed."""
        batch = self._batch
        if batch is None:
            return [self.run(vector, max_steps=max_steps) for vector in vectors]
        frames = [tuple(vector) for vector in vectors]
        results: list[ExecutionResult] = []
        batch(frames, max_steps, results)
        return results


def _compile_runner(source: str, filename: str) -> WhileSkeletonRunner:
    namespace = {
        "_TO": _Timeout,
        "_div": _div,
        "_RF": _RuntimeFault,
        "_R": ExecutionResult,
        "_OK": ExecutionStatus.OK,
        "_TIMEOUT": ExecutionStatus.TIMEOUT,
        "_ERROR": ExecutionStatus.ERROR,
    }
    exec(compile(source, filename, "exec"), namespace)  # noqa: S102
    exec(compile(_BATCH_SOURCE, filename + "-batch", "exec"), namespace)  # noqa: S102
    return WhileSkeletonRunner(
        namespace["_skeleton_main"], batch=namespace["_skeleton_batch"]
    )


def compile_skeleton_runner(program: WhileNode, identifiers: Sequence[Var]) -> WhileSkeletonRunner | None:
    """Translate one skeleton program; ``None`` when outside the subset."""
    hole_of = {id(node): index for index, node in enumerate(identifiers)}
    try:
        source = _Emitter(hole_of).translate(program)
    except (_Bail, KeyError):
        return None
    return _compile_runner(source, "<while-skeleton>")


def compile_program_runner(program: WhileNode) -> WhileSkeletonRunner | None:
    """Translate one concrete (hole-free) program; names become literals.

    This is the oracle-side twin of :func:`compile_skeleton_runner`: the
    compiler under test executes its *optimized output* through the same
    generated-code tier the reference uses for skeletons, under the same
    exactness contract with the interpreter.  Call ``run(())`` -- the
    vector argument is ignored.
    """
    try:
        source = _Emitter(None).translate(program)
    except _Bail:
        return None
    return _compile_runner(source, "<while-program>")


def runner_for_skeleton(skeleton: Skeleton) -> WhileSkeletonRunner | None:
    """The skeleton's compiled runner, built once and memoised in metadata.

    ``False`` caches "not translatable" so ineligible skeletons are probed
    exactly once.
    """
    cached = skeleton.metadata.get("codegen_runner")
    if cached is not None:
        return cached or None
    binder = skeleton.metadata.get("binder")
    runner = (
        compile_skeleton_runner(binder.unit, binder.identifiers)
        if binder is not None
        else None
    )
    skeleton.metadata["codegen_runner"] = runner if runner is not None else False
    return runner


__all__ = [
    "WhileSkeletonRunner",
    "compile_program_runner",
    "compile_skeleton_runner",
    "runner_for_skeleton",
]
