"""An optimizing compiler for mini-C: the compiler-under-test substrate.

The paper evaluates SPE by feeding enumerated variants to GCC/Clang and
watching for crashes and miscompilations.  Offline and deterministically, we
reproduce that observable with a from-scratch optimizing compiler:

* :mod:`repro.compiler.ir` -- a three-address, basic-block IR;
* :mod:`repro.compiler.lowering` -- AST to IR translation;
* :mod:`repro.compiler.cfg` -- control-flow graph utilities (dominators,
  natural loops, reachability);
* :mod:`repro.compiler.dataflow` -- a generic forward/backward dataflow
  engine (reaching constants, live variables, available expressions);
* :mod:`repro.compiler.passes` -- the optimization passes (constant folding
  and propagation, copy propagation, DCE, local CSE, algebraic
  simplification, CFG simplification, loop-invariant code motion) driven by a
  pass manager with event-level coverage instrumentation;
* :mod:`repro.compiler.vm` -- an IR interpreter producing the same
  observable behaviour tuple as the reference interpreter;
* :mod:`repro.compiler.faults` / :mod:`repro.compiler.versions` -- the
  seeded-bug framework and the catalogue of "compiler versions" used by the
  bug-finding experiments (Tables 3-4, Figure 10).
"""

from repro.compiler.driver import CompilationError, Compiler, CompileOutcome, InternalCompilerError
from repro.compiler.faults import Fault, FaultKind, FaultSet
from repro.compiler.pipeline import OptimizationLevel, build_pass_pipeline
from repro.compiler.versions import CompilerVersion, available_versions, get_version

__all__ = [
    "CompilationError",
    "CompileOutcome",
    "Compiler",
    "CompilerVersion",
    "Fault",
    "FaultKind",
    "FaultSet",
    "InternalCompilerError",
    "OptimizationLevel",
    "available_versions",
    "build_pass_pipeline",
    "get_version",
]
