"""Static undefined-behaviour sanitizer over frontend ASTs.

The differential oracle already refuses a wrong-code verdict on programs the
reference interpreter classifies as undefined -- but only after paying for a
full interpretation and a compilation per configuration.  The sanitizer is
the static pre-filter the ROADMAP calls for (diopter's ``sanitizer.py`` is
the exemplar): it classifies a variant ``clean`` or ``tainted`` before the
oracle runs, from the AST alone.

Taint rules (see ``docs/ARCHITECTURE.md`` section 12 for the lattice):

* **use-before-init** (mini-C) -- a local scalar is read on some path along
  which it was never assigned, established by a definite-assignment walk
  (branch join = set intersection; loop bodies may not execute; statements
  after ``return``/``break``/``continue`` are vacuously assigned).  Globals
  (zero-initialised), parameters, arrays and address-taken locals are
  conservatively treated as initialised; functions containing ``goto`` are
  skipped (a tree walk cannot follow the edges soundly).
* **div-by-zero / mod-by-zero** (mini-C and WHILE) -- a division or
  remainder whose right operand constant-folds to zero.
* **shift-out-of-range** (mini-C) -- a shift whose count constant-folds to a
  negative value or to at least the promoted width of the left operand.
* **index-out-of-range** (mini-C) -- a subscript of a declared array whose
  index constant-folds outside ``[0, size)``.

The constant-expression rules only fire on *guaranteed* values, so a tainted
verdict means the flagged expression misbehaves whenever it executes; the
use-before-init rule is a may-analysis (the read might sit behind a branch),
matching the interpreter's dynamic UB verdict on the paths that reach it.
WHILE has no undefined behaviour for uninitialised reads (variables default
to zero) and no shifts or arrays, so only the division rule applies there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.lang import ast as wast
from repro.minic import ast
from repro.minic.ctypes import ArrayType, IntType, integer_promote


@dataclass(frozen=True)
class Finding:
    """One sanitizer finding, machine-renderable for ``repro lint``."""

    kind: str
    function: str
    subject: str
    detail: str

    def render(self) -> str:
        return f"{self.function}:{self.kind}:{self.detail}"


# -- mini-C ---------------------------------------------------------------------------


def sanitize_minic_unit(unit: ast.TranslationUnit) -> list[Finding]:
    """All sanitizer findings of a resolved mini-C translation unit."""
    findings: list[Finding] = []
    for function in unit.functions():
        findings.extend(_constant_findings(function))
        if not any(isinstance(node, ast.Goto) for node in function.walk()):
            findings.extend(_use_before_init(function))
    return findings


# -- constant-expression rules --


def _const_value(expr: ast.Expr | None) -> int | None:
    """The guaranteed integer value of an expression, or None."""
    if isinstance(expr, (ast.IntLiteral, ast.CharLiteral)):
        return expr.value
    if isinstance(expr, ast.Unary) and not expr.postfix:
        value = _const_value(expr.operand)
        if value is None:
            return None
        if expr.op == "-":
            return -value
        if expr.op == "+":
            return value
        if expr.op == "~":
            return ~value
        if expr.op == "!":
            return int(value == 0)
        return None
    if isinstance(expr, ast.Binary):
        left = _const_value(expr.left)
        right = _const_value(expr.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: int(left / right),
                "%": lambda: left - int(left / right) * right,
            }[expr.op]()
        except (KeyError, ZeroDivisionError):
            return None
    if isinstance(expr, ast.Cast):
        value = _const_value(expr.operand)
        if value is not None and isinstance(expr.target_type, IntType):
            return expr.target_type.wrap(value)
        return None
    return None


def _shift_width(left: ast.Expr) -> int:
    """The promoted bit width of a shift's left operand (32 when unknown)."""
    if isinstance(left, ast.Identifier) and left.decl is not None:
        promoted = integer_promote(left.decl.var_type)
        if isinstance(promoted, IntType):
            return promoted.bits
    if isinstance(left, ast.Cast) and isinstance(left.target_type, IntType):
        promoted = integer_promote(left.target_type)
        if isinstance(promoted, IntType):
            return promoted.bits
    return 32


def _constant_findings(function: ast.FunctionDef) -> list[Finding]:
    findings: list[Finding] = []

    def flag(kind: str, subject: str, detail: str) -> None:
        findings.append(Finding(kind, function.name, subject, detail))

    for node in function.walk():
        if isinstance(node, ast.Binary) and node.op in ("/", "%"):
            if _const_value(node.right) == 0:
                kind = "div-by-zero" if node.op == "/" else "mod-by-zero"
                flag(kind, node.op, f"right operand of {node.op!r} is the constant 0")
        elif isinstance(node, ast.Assignment) and node.op in ("/=", "%="):
            if _const_value(node.value) == 0:
                kind = "div-by-zero" if node.op == "/=" else "mod-by-zero"
                flag(kind, node.op, f"right operand of {node.op!r} is the constant 0")
        elif isinstance(node, ast.Binary) and node.op in ("<<", ">>"):
            count = _const_value(node.right)
            if count is not None and (count < 0 or count >= _shift_width(node.left)):
                flag("shift-out-of-range", node.op, f"shift count {count} out of range")
        elif isinstance(node, ast.Assignment) and node.op in ("<<=", ">>="):
            count = _const_value(node.value)
            if count is not None and (count < 0 or count >= _shift_width(node.target)):
                flag("shift-out-of-range", node.op, f"shift count {count} out of range")
        elif isinstance(node, ast.Index):
            base = node.base
            if isinstance(base, ast.Identifier) and base.decl is not None:
                var_type = base.decl.var_type
                index = _const_value(node.index)
                if isinstance(var_type, ArrayType) and index is not None:
                    if index < 0 or index >= var_type.size:
                        flag(
                            "index-out-of-range",
                            base.name,
                            f"index {index} outside {base.name}[{var_type.size}]",
                        )
    return findings


# -- definite assignment --

#: Sentinel state for "this point is unreachable" (after return/break/...):
#: vacuously every variable is assigned, and joins ignore it.
_UNREACHABLE = None


def _use_before_init(function: ast.FunctionDef) -> list[Finding]:
    findings: list[Finding] = []
    flagged: set[int] = set()  # one finding per declaration
    address_taken = {
        id(node.operand.decl)
        for node in function.walk()
        if isinstance(node, ast.Unary)
        and node.op == "&"
        and not node.postfix
        and isinstance(node.operand, ast.Identifier)
        and node.operand.decl is not None
    }

    def tracked(decl: ast.VarDecl | None) -> bool:
        return (
            decl is not None
            and not decl.is_global
            and not decl.is_param
            and not isinstance(decl.var_type, ArrayType)
            and id(decl) not in address_taken
        )

    def read(identifier: ast.Identifier, state: set[int]) -> None:
        decl = identifier.decl
        if tracked(decl) and id(decl) not in state and id(decl) not in flagged:
            flagged.add(id(decl))
            findings.append(
                Finding(
                    "use-before-init",
                    function.name,
                    identifier.name,
                    f"{identifier.name!r} may be read before initialization",
                )
            )

    def expr(node: ast.Expr | None, state: set[int]) -> None:
        """Walk an expression: check reads, apply assignment effects."""
        if node is None:
            return
        if isinstance(node, ast.Identifier):
            read(node, state)
            return
        if isinstance(node, ast.Assignment):
            if node.op != "=":
                expr(node.target, state)  # compound assignment reads first
            elif not isinstance(node.target, ast.Identifier):
                expr(node.target, state)  # e.g. a[i] = ...: i (and a) are read
            expr(node.value, state)
            if isinstance(node.target, ast.Identifier) and node.target.decl is not None:
                state.add(id(node.target.decl))
            return
        if isinstance(node, ast.Unary):
            if node.op == "&" and isinstance(node.operand, ast.Identifier):
                return  # taking an address is not a read
            expr(node.operand, state)
            if node.op in ("++", "--") and isinstance(node.operand, ast.Identifier):
                if node.operand.decl is not None:
                    state.add(id(node.operand.decl))
            return
        if isinstance(node, ast.Binary) and node.op in ("&&", "||"):
            expr(node.left, state)
            branch = set(state)
            expr(node.right, branch)  # right side may not execute
            return
        if isinstance(node, ast.Conditional):
            expr(node.condition, state)
            then_state, else_state = set(state), set(state)
            expr(node.then_expr, then_state)
            expr(node.else_expr, else_state)
            state |= then_state & else_state
            return
        for child in node.children():
            if isinstance(child, ast.Expr):
                expr(child, state)

    def join(left: set[int] | None, right: set[int] | None) -> set[int] | None:
        if left is _UNREACHABLE:
            return right
        if right is _UNREACHABLE:
            return left
        return left & right

    def stmt(node: ast.Stmt, state: set[int] | None) -> set[int] | None:
        """Transfer one statement; None propagates "unreachable"."""
        if state is _UNREACHABLE:
            return _UNREACHABLE
        if isinstance(node, ast.DeclStmt):
            for decl in node.decls:
                expr(decl.init, state)
                for item in decl.init_list or []:
                    expr(item, state)
                if decl.init is not None or decl.init_list is not None:
                    state.add(id(decl))
            return state
        if isinstance(node, ast.ExprStmt):
            expr(node.expr, state)
            return state
        if isinstance(node, ast.Block):
            for item in node.items:
                state = stmt(item, state)
            return state
        if isinstance(node, ast.If):
            expr(node.condition, state)
            then_state = stmt(node.then_branch, set(state))
            else_state = set(state)
            if node.else_branch is not None:
                else_state = stmt(node.else_branch, else_state)
            return join(then_state, else_state)
        if isinstance(node, ast.While):
            expr(node.condition, state)
            stmt(node.body, set(state))  # body may not execute
            return state
        if isinstance(node, ast.DoWhile):
            state = stmt(node.body, state)  # body executes at least once
            if state is not _UNREACHABLE:
                expr(node.condition, state)
            return state
        if isinstance(node, ast.For):
            if node.init is not None:
                state = stmt(node.init, state)
            if state is _UNREACHABLE:
                return _UNREACHABLE
            expr(node.condition, state)
            body_state = stmt(node.body, set(state))
            if body_state is not _UNREACHABLE:
                expr(node.step, body_state)
            return state
        if isinstance(node, ast.Return):
            expr(node.value, state)
            return _UNREACHABLE
        if isinstance(node, (ast.Break, ast.Continue)):
            return _UNREACHABLE
        if isinstance(node, ast.Label):
            return stmt(node.statement, state)
        return state

    entry: set[int] = set()
    stmt(function.body, entry)
    return findings


# -- WHILE ----------------------------------------------------------------------------


def _while_const(node: wast.WhileNode) -> int | None:
    if isinstance(node, wast.Num):
        return node.value
    if isinstance(node, wast.BinaryArith):
        left = _while_const(node.left)
        right = _while_const(node.right)
        if left is None or right is None:
            return None
        try:
            return {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: int(left / right),
            }[node.op]()
        except (KeyError, ZeroDivisionError):
            return None
    return None


def _while_walk(node: wast.WhileNode):
    yield node
    for child in node.children():
        yield from _while_walk(child)


def sanitize_while_program(program: wast.WhileNode) -> list[Finding]:
    """Sanitizer findings of a WHILE program.

    WHILE's only runtime error is division by zero (uninitialised variables
    read as zero by definition), so the one rule is a division whose right
    operand constant-folds to zero.
    """
    findings: list[Finding] = []
    for node in _while_walk(program):
        if isinstance(node, wast.BinaryArith) and node.op == "/":
            if _while_const(node.right) == 0:
                findings.append(
                    Finding(
                        "div-by-zero",
                        "<program>",
                        "/",
                        "right operand of '/' is the constant 0",
                    )
                )
    return findings


__all__ = ["Finding", "sanitize_minic_unit", "sanitize_while_program"]
