"""The catalogue of seeded bugs and the simulated compiler versions.

Two compiler lineages are modelled, mirroring the paper's GCC and Clang
targets:

* ``scc`` ("simulated C compiler", the GCC stand-in) with versions 4.8, 5.4,
  6.1 and trunk;
* ``lcc`` ("lite C compiler", the Clang stand-in) with versions 3.6 and trunk.

Every version is the same compiler code base plus a specific set of seeded
faults (see :mod:`repro.compiler.faults`); a fault is present in a version if
the version lies in the fault's ``introduced_in`` .. ``fixed_in`` range.  The
fault metadata (component, priority, kind, minimum optimization level)
drives the Figure 10 and Table 3/4 reproductions.

The catalogue is a *registry*: frontend plug-ins register their own compiler
lineages with :func:`register_lineage` (the WHILE frontend registers its
``wc`` lineage this way), so the bug database, the affected-version queries
and the campaign configuration matrix work identically for every language.
The fault-free ``reference`` version is shared by all lineages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.faults import Fault, FaultKind

# Version ordering within each lineage (older first).
_SCC_ORDER = ["scc-4.8", "scc-5.4", "scc-6.1", "scc-trunk"]
_LCC_ORDER = ["lcc-3.6", "lcc-trunk"]


BUG_CATALOGUE: list[Fault] = [
    Fault(
        id="fold-equal-operands",
        component="middle-end",
        kind=FaultKind.CRASH,
        description="operand_equal_p asserts when both operands of -/==/!= are the same value",
        priority="P1",
        min_opt_level=0,
        introduced_in="scc-4.8",
        fixed_in=None,
        crash_signature="in operand_equal_p, at fold-const.c:2817",
    ),
    Fault(
        id="cprop-ignores-aliases",
        component="rtl-optimization",
        kind=FaultKind.WRONG_CODE,
        description="constant propagation keeps stale constants across stores through pointers",
        priority="P2",
        min_opt_level=1,
        introduced_in="scc-4.8",
        fixed_in=None,
        crash_signature="",
    ),
    Fault(
        id="copyprop-self-assign",
        component="target",
        kind=FaultKind.CRASH,
        description="register copy coalescing rejects self assignments 'a = a'",
        priority="P3",
        min_opt_level=2,
        introduced_in="scc-5.4",
        fixed_in="scc-trunk",
        crash_signature="error in backend: Invalid register name for self copy",
    ),
    Fault(
        id="cse-commutes-sub",
        component="tree-optimization",
        kind=FaultKind.WRONG_CODE,
        description="local CSE canonicalises a-b and b-a to the same value number",
        priority="P2",
        min_opt_level=2,
        introduced_in="scc-6.1",
        fixed_in=None,
        crash_signature="",
    ),
    Fault(
        id="dce-addr-taken-store",
        component="tree-optimization",
        kind=FaultKind.WRONG_CODE,
        description="dead store elimination removes stores to address-taken locals",
        priority="P1",
        min_opt_level=1,
        introduced_in="scc-6.1",
        fixed_in=None,
        crash_signature="",
    ),
    Fault(
        id="cfg-self-loop-collapse",
        component="middle-end",
        kind=FaultKind.CRASH,
        description="jump threading loops forever on a block that forwards to itself",
        priority="P1",
        min_opt_level=1,
        introduced_in="scc-4.8",
        fixed_in="scc-6.1",
        crash_signature="in verify_jump_thread, at tree-ssa-threadupdate.c:558",
    ),
    Fault(
        id="licm-irreducible-assert",
        component="rtl-optimization",
        kind=FaultKind.CRASH,
        description="loop optimizer asserts on irreducible control flow created by goto",
        priority="P2",
        min_opt_level=3,
        introduced_in="scc-5.4",
        fixed_in=None,
        crash_signature="in verify_loop_structure, at cfgloop.c:1644",
    ),
    Fault(
        id="cfg-retain-garbage-block",
        component="middle-end",
        kind=FaultKind.ILL_FORMED_IR,
        description="the unreachable-block sweep leaves one orphaned block in the function",
        priority="P2",
        min_opt_level=1,
        introduced_in="scc-6.1",
        fixed_in=None,
        crash_signature="",
        pass_name="simplify-cfg",
    ),
    Fault(
        id="loop-index-strength-reduce",
        component="tree-optimization",
        kind=FaultKind.WRONG_CODE,
        description="loop vectorizer rewrites array indexes that use the same variable twice",
        priority="P2",
        min_opt_level=3,
        introduced_in="scc-trunk",
        fixed_in=None,
        crash_signature="",
    ),
    Fault(
        id="cprop-fixpoint-blowup",
        component="middle-end",
        kind=FaultKind.PERFORMANCE,
        description="constant propagation re-runs quadratically on loops storing conflicting constants",
        priority="P4",
        min_opt_level=1,
        introduced_in="scc-4.8",
        fixed_in=None,
        crash_signature="",
    ),
    Fault(
        id="frontend-identical-arms",
        component="c",
        kind=FaultKind.CRASH,
        description="frontend folding of ?: crashes when the two arms are structurally identical",
        priority="P1",
        min_opt_level=0,
        introduced_in="scc-4.8",
        fixed_in=None,
        crash_signature="in c_fold_cond_expr, at c-fold.c:312",
    ),
    Fault(
        id="frontend-goto-into-scope",
        component="c",
        kind=FaultKind.CRASH,
        description="jump into a block with declarations confuses the lifetime checker",
        priority="P3",
        min_opt_level=0,
        introduced_in="scc-5.4",
        fixed_in=None,
        crash_signature="in check_goto, at c-decl.c:3451",
    ),
    Fault(
        id="frontend-nested-conditional-depth",
        component="c++",
        kind=FaultKind.CRASH,
        description="deeply nested conditional expressions overflow the constexpr evaluator",
        priority="P3",
        min_opt_level=0,
        introduced_in="scc-6.1",
        fixed_in=None,
        crash_signature="in cxx_eval_conditional_expression, at constexpr.c:1840",
    ),
]

# Faults seeded into the lcc (Clang-like) lineage reuse the same mechanics but
# have their own identities so the two compilers fail on different inputs.
LCC_BUG_CATALOGUE: list[Fault] = [
    Fault(
        id="fold-equal-operands",
        component="middle-end",
        kind=FaultKind.CRASH,
        description="instruction simplifier asserts when both operands of -/== are the same SSA value",
        priority="P2",
        min_opt_level=1,
        introduced_in="lcc-3.6",
        fixed_in=None,
        crash_signature="Assertion `Num < NumOperands && \"Invalid child # of SDNode!\"' failed",
    ),
    Fault(
        id="dce-addr-taken-store",
        component="tree-optimization",
        kind=FaultKind.WRONG_CODE,
        description="lifetime markers end too early after a backward goto; the store is dropped",
        priority="P1",
        min_opt_level=1,
        introduced_in="lcc-3.6",
        fixed_in=None,
        crash_signature="",
    ),
    Fault(
        id="licm-irreducible-assert",
        component="rtl-optimization",
        kind=FaultKind.CRASH,
        description="register allocator asserts 'Register use before def' on irreducible loops",
        priority="P2",
        min_opt_level=1,
        introduced_in="lcc-3.6",
        fixed_in="lcc-trunk",
        crash_signature="Assertion `MRI->getVRegDef(reg) && \"Register use before def!\"' failed",
    ),
    Fault(
        id="cfg-self-loop-collapse",
        component="middle-end",
        kind=FaultKind.CRASH,
        description="SimplifyCFG spins on single-block infinite loops",
        priority="P2",
        min_opt_level=1,
        introduced_in="lcc-trunk",
        fixed_in=None,
        crash_signature="error in backend: Access past stack top!",
    ),
    Fault(
        id="cse-commutes-sub",
        component="tree-optimization",
        kind=FaultKind.WRONG_CODE,
        description="GVN treats subtraction as commutative when reassociating",
        priority="P2",
        min_opt_level=2,
        introduced_in="lcc-trunk",
        fixed_in=None,
        crash_signature="",
    ),
    Fault(
        id="frontend-goto-into-scope",
        component="c",
        kind=FaultKind.CRASH,
        description="jump into a block with declarations crashes the CFG builder",
        priority="P3",
        min_opt_level=0,
        introduced_in="lcc-3.6",
        fixed_in=None,
        crash_signature="error in backend: Do not know how to split the result of this operator!",
    ),
]


@dataclass(frozen=True)
class CompilerVersion:
    """One simulated compiler release: a name plus its seeded faults."""

    name: str
    lineage: str
    faults: tuple[Fault, ...] = ()
    is_trunk: bool = False

    def fault_ids(self) -> list[str]:
        return [fault.id for fault in self.faults]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# lineage name -> version names, oldest first.  Extended by register_lineage.
_LINEAGE_ORDERS: dict[str, list[str]] = {}
_CATALOG: dict[str, CompilerVersion] = {
    "reference": CompilerVersion(name="reference", lineage="reference", faults=())
}


def _version_index(name: str, order: list[str]) -> int:
    return order.index(name)


def _faults_for(version: str, order: list[str], catalogue: list[Fault]) -> tuple[Fault, ...]:
    present: list[Fault] = []
    current = _version_index(version, order)
    for fault in catalogue:
        try:
            introduced = _version_index(fault.introduced_in, order)
        except ValueError:
            continue
        if current < introduced:
            continue
        if fault.fixed_in is not None and current >= _version_index(fault.fixed_in, order):
            continue
        present.append(fault)
    return tuple(present)


def register_lineage(lineage: str, order: list[str], catalogue: list[Fault]) -> None:
    """Register a compiler lineage: its version names (oldest first) + faults.

    Each version receives the subset of ``catalogue`` whose
    ``introduced_in``/``fixed_in`` range contains it.  Re-registering the same
    lineage replaces its versions (convenient for tests); version names must
    be globally unique across lineages.
    """
    for name in order:
        owner = _CATALOG.get(name)
        if owner is not None and owner.lineage != lineage:
            raise ValueError(
                f"version name {name!r} already registered by lineage {owner.lineage!r}"
            )
    for stale in _LINEAGE_ORDERS.get(lineage, []):
        _CATALOG.pop(stale, None)
    _LINEAGE_ORDERS[lineage] = list(order)
    for name in order:
        _CATALOG[name] = CompilerVersion(
            name=name,
            lineage=lineage,
            faults=_faults_for(name, order, catalogue),
            is_trunk=name.endswith("trunk"),
        )


register_lineage("scc", _SCC_ORDER, BUG_CATALOGUE)
register_lineage("lcc", _LCC_ORDER, LCC_BUG_CATALOGUE)


def available_versions() -> list[str]:
    """Names of all simulated compiler versions (plus the fault-free 'reference')."""
    return list(_CATALOG)


def get_version(name: str) -> CompilerVersion:
    """Look up a simulated compiler version by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown compiler version {name!r}; available: {', '.join(_CATALOG)}"
        ) from None


def lineage_versions(lineage: str) -> list[str]:
    """The registered version names of one lineage, oldest first.

    The triage engine's version bisection walks this order to attribute a
    bug to the release that introduced it.  Unknown lineages return an empty
    list (e.g. the fault-free ``reference`` pseudo-lineage, which has no
    registered order and nothing to bisect).
    """
    return list(_LINEAGE_ORDERS.get(lineage, []))


def affected_versions(fault_id: str, lineage: str = "scc") -> list[str]:
    """All versions of a lineage that carry the given fault."""
    return [
        name
        for name, version in _CATALOG.items()
        if version.lineage == lineage and fault_id in version.fault_ids()
    ]


__all__ = [
    "BUG_CATALOGUE",
    "CompilerVersion",
    "LCC_BUG_CATALOGUE",
    "affected_versions",
    "available_versions",
    "get_version",
    "lineage_versions",
    "register_lineage",
]
