"""Optimization pipelines: which passes run at -O0 .. -O3.

Mirrors the structure of a production compiler: -O0 runs nothing, -O1 runs
the cheap scalar clean-ups, -O2 adds redundancy elimination, -O3 adds the
loop optimizations.  The bug-finding experiments compile every program at
-O0 and -O3 (plus 32/64-bit "machine modes" -- modelled as a flag that only
affects the reported configuration, as the paper only uses them to diversify
configurations).
"""

from __future__ import annotations

import enum
import functools

from repro.compiler.passes import (
    ALL_PASSES,
    CommonSubexpressionElimination,
    ConstantFolding,
    ConstantPropagation,
    CopyPropagation,
    DeadCodeElimination,
    FunctionPass,
    LoopInvariantCodeMotion,
    SimplifyCFG,
)


class OptimizationLevel(enum.IntEnum):
    """-O0 .. -O3."""

    O0 = 0
    O1 = 1
    O2 = 2
    O3 = 3

    def __str__(self) -> str:
        return f"-O{int(self)}"


_PIPELINES: dict[OptimizationLevel, list[str]] = {
    OptimizationLevel.O0: [],
    OptimizationLevel.O1: [
        ConstantFolding.name,
        ConstantPropagation.name,
        ConstantFolding.name,
        DeadCodeElimination.name,
        SimplifyCFG.name,
    ],
    OptimizationLevel.O2: [
        ConstantFolding.name,
        ConstantPropagation.name,
        ConstantFolding.name,
        CopyPropagation.name,
        CommonSubexpressionElimination.name,
        ConstantFolding.name,
        DeadCodeElimination.name,
        SimplifyCFG.name,
        ConstantPropagation.name,
        ConstantFolding.name,
        DeadCodeElimination.name,
        SimplifyCFG.name,
    ],
    OptimizationLevel.O3: [
        ConstantFolding.name,
        ConstantPropagation.name,
        ConstantFolding.name,
        CopyPropagation.name,
        CommonSubexpressionElimination.name,
        ConstantFolding.name,
        LoopInvariantCodeMotion.name,
        DeadCodeElimination.name,
        SimplifyCFG.name,
        ConstantPropagation.name,
        ConstantFolding.name,
        CommonSubexpressionElimination.name,
        ConstantFolding.name,
        DeadCodeElimination.name,
        SimplifyCFG.name,
    ],
}


def pass_names(level: OptimizationLevel) -> list[str]:
    """The pass schedule (by name) for an optimization level."""
    return list(_PIPELINES[level])


@functools.lru_cache(maxsize=None)
def build_pass_pipeline(level: OptimizationLevel) -> tuple[FunctionPass, ...]:
    """The passes for an optimization level, in execution order.

    Memoized process-wide: passes are stateless (all per-run state lives in
    the :class:`~repro.compiler.passes.PassContext`), so every compiler
    instance at the same level shares one pipeline tuple instead of
    re-instantiating the pass objects per driver.  The tuple is immutable so
    no caller can perturb another driver's schedule.
    """
    return tuple(ALL_PASSES[name]() for name in pass_names(level))


__all__ = ["OptimizationLevel", "build_pass_pipeline", "pass_names"]
