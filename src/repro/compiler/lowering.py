"""Lowering: mini-C AST to three-address IR.

The lowering is deliberately straightforward (every variable access is an
explicit Load/Store, every sub-expression gets its own temp) so that the
optimization passes have plenty of redundancy to remove -- just like the
naive IR a real frontend produces before -O1.

Control flow is fully structured into basic blocks: short-circuit ``&&``/``||``,
the ternary operator, all loop forms, ``break``/``continue``, and
``goto``/labels (labels become block boundaries, which is how irreducible
control flow from the GCC-style seeds reaches the optimizer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.minic import ast
from repro.minic.ctypes import (
    ArrayType,
    CType,
    INT,
    IntType,
    PointerType,
    usual_arithmetic_conversion,
)
from repro.compiler.errors import CompilationError
from repro.compiler.ir import (
    AddrOf,
    BasicBlock,
    BinOp,
    CJump,
    Call,
    Const,
    Copy,
    IRFunction,
    IRModule,
    Jump,
    Load,
    LoadElem,
    LoadPtr,
    Operand,
    Return,
    Store,
    StoreElem,
    StorePtr,
    Temp,
    UnOp,
    VarRef,
    VariableSlot,
)


@dataclass
class _Scope:
    """Maps source-level names to unique slot names for the current block."""

    names: dict[str, str] = field(default_factory=dict)


class _FunctionLowerer:
    def __init__(self, module: IRModule, function: ast.FunctionDef) -> None:
        self.module = module
        self.source = function
        self.ir = IRFunction(name=function.name, return_type=function.return_type)
        self.temp_counter = 0
        self.slot_counter = 0
        self.scopes: list[_Scope] = [_Scope()]
        self.block = self.ir.add_block("entry")
        self.break_targets: list[str] = []
        self.continue_targets: list[str] = []
        self.label_blocks: dict[str, str] = {}

    # -- small helpers -----------------------------------------------------------

    def new_temp(self) -> Temp:
        self.temp_counter += 1
        return Temp(f"t{self.temp_counter}")

    def reserve(self, hint: str) -> str:
        """Reserve a fresh block label (and create its empty block) immediately.

        Reserving eagerly prevents nested constructs from claiming the same
        label between the time a label name is chosen and the time its block
        is populated.
        """
        label = self.ir.new_label(hint)
        self.ir.add_block(label)
        return label

    def emit(self, instr) -> None:
        if self.block.terminator is not None:
            # Dead code after a terminator: park it in a fresh unreachable block
            # so the IR stays well formed (simplify-cfg removes it later).
            self.block = self.ir.add_block(self.ir.new_label("dead"))
        self.block.instructions.append(instr)

    def start_block(self, label: str) -> BasicBlock:
        if label in self.ir.blocks:
            block = self.ir.blocks[label]
        else:
            block = self.ir.add_block(label)
        if self.block.terminator is None:
            self.block.instructions.append(Jump(label))
        self.block = block
        return block

    def unique_slot(self, name: str, ctype: CType, size: int = 1, is_param: bool = False) -> str:
        slot_name = name
        while slot_name in self.ir.slots or slot_name in self.module.globals:
            self.slot_counter += 1
            slot_name = f"{name}.{self.slot_counter}"
        self.ir.slots[slot_name] = VariableSlot(slot_name, ctype, size=size, is_param=is_param)
        return slot_name

    def bind(self, source_name: str, slot_name: str) -> None:
        self.scopes[-1].names[source_name] = slot_name

    def lookup(self, name: str) -> tuple[str, VariableSlot]:
        for scope in reversed(self.scopes):
            if name in scope.names:
                slot_name = scope.names[name]
                return slot_name, self.ir.slots[slot_name]
        if name in self.module.globals:
            return name, self.module.globals[name]
        raise CompilationError(f"unknown variable {name!r} in function {self.source.name!r}")

    def label_block_for(self, label: str) -> str:
        if label not in self.label_blocks:
            self.label_blocks[label] = self.ir.new_label(f"label.{label}")
            self.ir.add_block(self.label_blocks[label])
        return self.label_blocks[label]

    # -- typing approximation -------------------------------------------------------

    def type_of(self, expr: ast.Expr) -> CType:
        if expr.ctype is not None:
            return expr.ctype
        if isinstance(expr, ast.IntLiteral):
            return INT
        if isinstance(expr, ast.CharLiteral):
            return INT
        if isinstance(expr, ast.Identifier) and expr.decl is not None:
            return expr.decl.var_type
        if isinstance(expr, ast.Unary):
            if expr.op == "&":
                return PointerType(self.type_of(expr.operand))
            if expr.op == "*":
                inner = self.type_of(expr.operand)
                return inner.base if isinstance(inner, (PointerType, ArrayType)) else INT
            if expr.op in ("!",):
                return INT
            return self.type_of(expr.operand)
        if isinstance(expr, ast.Binary):
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return INT
            left = self.type_of(expr.left)
            right = self.type_of(expr.right)
            if isinstance(left, (PointerType, ArrayType)):
                return left
            if isinstance(right, (PointerType, ArrayType)):
                return right
            return usual_arithmetic_conversion(left, right)
        if isinstance(expr, ast.Assignment):
            return self.type_of(expr.target)
        if isinstance(expr, ast.Conditional):
            return self.type_of(expr.then_expr)
        if isinstance(expr, ast.Index):
            base = self.type_of(expr.base)
            return base.base if isinstance(base, (PointerType, ArrayType)) else INT
        if isinstance(expr, ast.Cast):
            return expr.target_type
        if isinstance(expr, ast.Call):
            function = self.module_function_return(expr.callee)
            return function
        return INT

    def module_function_return(self, name: str) -> CType:
        return INT

    # -- function body -----------------------------------------------------------------

    def lower(self) -> IRFunction:
        for param in self.source.params:
            slot_name = self.unique_slot(param.name, param.var_type, is_param=True)
            self.bind(param.name, slot_name)
            self.ir.params.append(slot_name)
        for item in self.source.body.items:
            self.lower_stmt(item)
        if self.block.terminator is None:
            self.block.instructions.append(Return(None))
        return self.ir

    # -- statements --------------------------------------------------------------------

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.scopes.append(_Scope())
            for item in stmt.items:
                self.lower_stmt(item)
            self.scopes.pop()
            return
        if isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self.lower_decl(decl)
            return
        if isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
            return
        if isinstance(stmt, ast.Empty):
            return
        if isinstance(stmt, ast.If):
            condition = self.lower_condition(stmt.condition)
            then_label = self.reserve("if.then")
            else_label = self.reserve("if.else") if stmt.else_branch is not None else None
            end_label = self.reserve("if.end")
            self.emit(CJump(condition, then_label, else_label or end_label))
            self.block = self.ir.blocks[then_label]
            self.lower_stmt(stmt.then_branch)
            if self.block.terminator is None:
                self.emit(Jump(end_label))
            if else_label is not None:
                self.block = self.ir.blocks[else_label]
                self.lower_stmt(stmt.else_branch)
                if self.block.terminator is None:
                    self.emit(Jump(end_label))
            self.block = self.ir.blocks[end_label]
            return
        if isinstance(stmt, ast.While):
            head = self.reserve("while.head")
            body = self.reserve("while.body")
            end = self.reserve("while.end")
            self.start_block(head)
            condition = self.lower_condition(stmt.condition)
            self.emit(CJump(condition, body, end))
            self.block = self.ir.blocks[body]
            self.break_targets.append(end)
            self.continue_targets.append(head)
            self.lower_stmt(stmt.body)
            self.break_targets.pop()
            self.continue_targets.pop()
            if self.block.terminator is None:
                self.emit(Jump(head))
            self.block = self.ir.blocks[end]
            return
        if isinstance(stmt, ast.DoWhile):
            body = self.reserve("do.body")
            cond = self.reserve("do.cond")
            end = self.reserve("do.end")
            self.start_block(body)
            self.break_targets.append(end)
            self.continue_targets.append(cond)
            self.lower_stmt(stmt.body)
            self.break_targets.pop()
            self.continue_targets.pop()
            self.start_block(cond)
            condition = self.lower_condition(stmt.condition)
            self.emit(CJump(condition, body, end))
            self.block = self.ir.blocks[end]
            return
        if isinstance(stmt, ast.For):
            self.scopes.append(_Scope())
            if stmt.init is not None:
                self.lower_stmt(stmt.init)
            head = self.reserve("for.head")
            body = self.reserve("for.body")
            step = self.reserve("for.step")
            end = self.reserve("for.end")
            self.start_block(head)
            if stmt.condition is not None:
                condition = self.lower_condition(stmt.condition)
                self.emit(CJump(condition, body, end))
            else:
                self.emit(Jump(body))
            self.block = self.ir.blocks[body]
            self.break_targets.append(end)
            self.continue_targets.append(step)
            self.lower_stmt(stmt.body)
            self.break_targets.pop()
            self.continue_targets.pop()
            self.start_block(step)
            if stmt.step is not None:
                self.lower_expr(stmt.step)
            self.emit(Jump(head))
            self.block = self.ir.blocks[end]
            self.scopes.pop()
            return
        if isinstance(stmt, ast.Return):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            self.emit(Return(value))
            return
        if isinstance(stmt, ast.Break):
            if not self.break_targets:
                raise CompilationError("'break' outside a loop")
            self.emit(Jump(self.break_targets[-1]))
            return
        if isinstance(stmt, ast.Continue):
            if not self.continue_targets:
                raise CompilationError("'continue' outside a loop")
            self.emit(Jump(self.continue_targets[-1]))
            return
        if isinstance(stmt, ast.Goto):
            self.emit(Jump(self.label_block_for(stmt.label)))
            return
        if isinstance(stmt, ast.Label):
            label_block = self.label_block_for(stmt.name)
            if self.block.terminator is None:
                self.emit(Jump(label_block))
            self.block = self.ir.blocks[label_block]
            self.lower_stmt(stmt.statement)
            return
        raise CompilationError(f"cannot lower statement {stmt!r}")

    def lower_decl(self, decl: ast.VarDecl) -> None:
        var_type = decl.var_type
        if isinstance(var_type, ArrayType):
            slot_name = self.unique_slot(decl.name, var_type.base, size=var_type.size)
            self.bind(decl.name, slot_name)
            if decl.init_list is not None:
                for index, item in enumerate(decl.init_list):
                    value = self.lower_expr(item)
                    self.emit(StoreElem(VarRef(slot_name), Const(index), value, ctype=var_type.base))
                for index in range(len(decl.init_list), var_type.size):
                    self.emit(StoreElem(VarRef(slot_name), Const(index), Const(0), ctype=var_type.base))
            return
        slot_name = self.unique_slot(decl.name, var_type)
        self.bind(decl.name, slot_name)
        if decl.init is not None:
            value = self.lower_expr(decl.init)
            self.emit(Store(VarRef(slot_name), value, ctype=var_type if isinstance(var_type, IntType) else INT))

    # -- expressions ----------------------------------------------------------------------

    def lower_condition(self, expr: ast.Expr) -> Operand:
        """Lower an expression used as a branch condition to a 0/1 operand."""
        value = self.lower_expr(expr)
        return value

    def lower_expr(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.IntLiteral):
            return Const(expr.value)
        if isinstance(expr, ast.CharLiteral):
            return Const(expr.value)
        if isinstance(expr, ast.StringLiteral):
            raise CompilationError("string literals are only supported as printf formats")
        if isinstance(expr, ast.Identifier):
            slot_name, slot = self.lookup(expr.name)
            if slot.size > 1:
                # Array decays to its address.
                dest = self.new_temp()
                self.emit(AddrOf(dest, VarRef(slot_name)))
                return dest
            dest = self.new_temp()
            self.emit(Load(dest, VarRef(slot_name), ctype=slot.ctype if isinstance(slot.ctype, IntType) else INT))
            return dest
        if isinstance(expr, ast.Index):
            base = self.lower_expr(expr.base)
            index = self.lower_expr(expr.index)
            dest = self.new_temp()
            self.emit(LoadElem(dest, base, index, ctype=self._int_type_of(expr)))
            return dest
        if isinstance(expr, ast.Unary):
            return self.lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return self.lower_binary(expr)
        if isinstance(expr, ast.Assignment):
            return self.lower_assignment(expr)
        if isinstance(expr, ast.Conditional):
            return self.lower_conditional(expr)
        if isinstance(expr, ast.Cast):
            operand = self.lower_expr(expr.operand)
            dest = self.new_temp()
            self.emit(UnOp(dest, "cast", operand, ctype=expr.target_type if isinstance(expr.target_type, IntType) else INT))
            return dest
        if isinstance(expr, ast.Call):
            return self.lower_call(expr)
        raise CompilationError(f"cannot lower expression {expr!r}")

    def _int_type_of(self, expr: ast.Expr) -> IntType:
        inferred = self.type_of(expr)
        return inferred if isinstance(inferred, IntType) else INT

    def lower_unary(self, expr: ast.Unary) -> Operand:
        if expr.op == "&":
            return self.lower_address_of(expr.operand)
        if expr.op == "*":
            pointer = self.lower_expr(expr.operand)
            dest = self.new_temp()
            self.emit(LoadPtr(dest, pointer, ctype=self._int_type_of(expr)))
            return dest
        if expr.op in ("++", "--"):
            return self.lower_increment(expr)
        operand = self.lower_expr(expr.operand)
        if expr.op == "+":
            return operand
        dest = self.new_temp()
        self.emit(UnOp(dest, expr.op, operand, ctype=self._int_type_of(expr)))
        return dest

    def lower_increment(self, expr: ast.Unary) -> Operand:
        target = expr.operand
        old_value = self.lower_expr(target)
        one = Const(1)
        new_value = self.new_temp()
        op = "+" if expr.op == "++" else "-"
        self.emit(BinOp(new_value, op, old_value, one, ctype=self._int_type_of(target)))
        self.lower_store_to(target, new_value)
        return old_value if expr.postfix else new_value

    def lower_address_of(self, expr: ast.Expr) -> Operand:
        if isinstance(expr, ast.Identifier):
            slot_name, _ = self.lookup(expr.name)
            dest = self.new_temp()
            self.emit(AddrOf(dest, VarRef(slot_name)))
            return dest
        if isinstance(expr, ast.Index):
            base = self.lower_expr(expr.base)
            index = self.lower_expr(expr.index)
            dest = self.new_temp()
            self.emit(BinOp(dest, "ptradd", base, index))
            return dest
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self.lower_expr(expr.operand)
        raise CompilationError(f"cannot take the address of {expr!r}")

    def lower_binary(self, expr: ast.Binary) -> Operand:
        if expr.op in ("&&", "||"):
            return self.lower_short_circuit(expr)
        if expr.op == ",":
            self.lower_expr(expr.left)
            return self.lower_expr(expr.right)
        left = self.lower_expr(expr.left)
        right = self.lower_expr(expr.right)
        dest = self.new_temp()
        self.emit(BinOp(dest, expr.op, left, right, ctype=self._int_type_of(expr)))
        return dest

    def lower_short_circuit(self, expr: ast.Binary) -> Operand:
        result_slot = self.unique_slot(f"sc.{expr.op == '&&' and 'and' or 'or'}", INT)
        right_label = self.reserve("sc.rhs")
        end_label = self.reserve("sc.end")
        left = self.lower_expr(expr.left)
        left_bool = self.new_temp()
        self.emit(BinOp(left_bool, "!=", left, Const(0)))
        self.emit(Store(VarRef(result_slot), left_bool))
        if expr.op == "&&":
            self.emit(CJump(left_bool, right_label, end_label))
        else:
            self.emit(CJump(left_bool, end_label, right_label))
        self.block = self.ir.blocks[right_label]
        right = self.lower_expr(expr.right)
        right_bool = self.new_temp()
        self.emit(BinOp(right_bool, "!=", right, Const(0)))
        self.emit(Store(VarRef(result_slot), right_bool))
        self.emit(Jump(end_label))
        self.block = self.ir.blocks[end_label]
        dest = self.new_temp()
        self.emit(Load(dest, VarRef(result_slot)))
        return dest

    def lower_conditional(self, expr: ast.Conditional) -> Operand:
        result_slot = self.unique_slot("cond.value", self._int_type_of(expr))
        then_label = self.reserve("cond.then")
        else_label = self.reserve("cond.else")
        end_label = self.reserve("cond.end")
        condition = self.lower_expr(expr.condition)
        self.emit(CJump(condition, then_label, else_label))
        self.block = self.ir.blocks[then_label]
        then_value = self.lower_expr(expr.then_expr)
        self.emit(Store(VarRef(result_slot), then_value))
        self.emit(Jump(end_label))
        self.block = self.ir.blocks[else_label]
        else_value = self.lower_expr(expr.else_expr)
        self.emit(Store(VarRef(result_slot), else_value))
        self.emit(Jump(end_label))
        self.block = self.ir.blocks[end_label]
        dest = self.new_temp()
        self.emit(Load(dest, VarRef(result_slot)))
        return dest

    def lower_assignment(self, expr: ast.Assignment) -> Operand:
        if expr.op == "=":
            value = self.lower_expr(expr.value)
            self.lower_store_to(expr.target, value)
            return value
        operator = expr.op[:-1]
        current = self.lower_expr(expr.target)
        value = self.lower_expr(expr.value)
        dest = self.new_temp()
        self.emit(BinOp(dest, operator, current, value, ctype=self._int_type_of(expr.target)))
        self.lower_store_to(expr.target, dest)
        return dest

    def lower_store_to(self, target: ast.Expr, value: Operand) -> None:
        if isinstance(target, ast.Identifier):
            slot_name, slot = self.lookup(target.name)
            self.emit(Store(VarRef(slot_name), value, ctype=slot.ctype if isinstance(slot.ctype, IntType) else INT))
            return
        if isinstance(target, ast.Index):
            base = self.lower_expr(target.base)
            index = self.lower_expr(target.index)
            self.emit(StoreElem(base, index, value, ctype=self._int_type_of(target)))
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            pointer = self.lower_expr(target.operand)
            self.emit(StorePtr(pointer, value, ctype=self._int_type_of(target)))
            return
        raise CompilationError(f"invalid assignment target {target!r}")

    def lower_call(self, expr: ast.Call) -> Operand:
        if expr.callee == "printf":
            if not expr.args or not isinstance(expr.args[0], ast.StringLiteral):
                raise CompilationError("printf requires a string-literal format")
            args = [self.lower_expr(arg) for arg in expr.args[1:]]
            dest = self.new_temp()
            self.emit(Call(dest, "printf", args, format=expr.args[0].value))
            return dest
        args = [self.lower_expr(arg) for arg in expr.args]
        dest = self.new_temp()
        self.emit(Call(dest, expr.callee, args))
        return dest


def _constant_value(expr: ast.Expr | None) -> int:
    """Evaluate a global initializer; non-constant initializers default to 0."""
    if expr is None:
        return 0
    if isinstance(expr, ast.IntLiteral) or isinstance(expr, ast.CharLiteral):
        return expr.value
    if isinstance(expr, ast.Unary) and expr.op == "-":
        return -_constant_value(expr.operand)
    if isinstance(expr, ast.Binary):
        left = _constant_value(expr.left)
        right = _constant_value(expr.right)
        try:
            return {
                "+": left + right,
                "-": left - right,
                "*": left * right,
                "/": left // right if right else 0,
            }.get(expr.op, 0)
        except ZeroDivisionError:  # pragma: no cover - defensive
            return 0
    return 0


def lower_module(unit: ast.TranslationUnit) -> IRModule:
    """Lower a resolved translation unit to an IR module."""
    module = IRModule()
    for decl in unit.globals():
        var_type = decl.var_type
        if isinstance(var_type, ArrayType):
            initial = [0] * var_type.size
            if decl.init_list is not None:
                for index, item in enumerate(decl.init_list[: var_type.size]):
                    initial[index] = _constant_value(item)
            module.globals[decl.name] = VariableSlot(
                decl.name, var_type.base, size=var_type.size, initial=initial
            )
        else:
            module.globals[decl.name] = VariableSlot(
                decl.name, var_type, size=1, initial=[_constant_value(decl.init)]
            )
    for function in unit.functions():
        if not function.body.items and function.body.loc.line == 0:
            continue  # prototype
        module.functions[function.name] = _FunctionLowerer(module, function).lower()
    return module


__all__ = ["lower_module"]
