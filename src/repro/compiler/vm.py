"""The IR virtual machine: "executes the binary" the compiler produced.

The VM provides the second half of differential testing: the reference
interpreter runs the source, the VM runs the optimized IR, and for UB-free
programs the two observable behaviours (stdout, exit code) must agree.  The
VM itself is intentionally forgiving about undefined behaviour (it wraps
arithmetic, reads of uninitialized cells yield 0, out-of-range accesses trap
as runtime errors) -- just like running a real miscompiled binary.

Execution translates each basic block to closures on first entry: every
instruction becomes one closure with its operand accessors, destination
name, operator and integer type resolved at translation time, so the hot
loop is "tick, call closure" with no per-step dispatch or attribute
traversal.  A closure returns ``None`` to fall through, a label string to
jump, or a ``("return", value)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import (
    AddrOf,
    BinOp,
    CJump,
    Call,
    Const,
    Copy,
    IRFunction,
    IRModule,
    Jump,
    Load,
    LoadElem,
    LoadPtr,
    Operand,
    Return,
    Store,
    StoreElem,
    StorePtr,
    Temp,
    UnOp,
    VarRef,
)
from repro.minic.ctypes import INT, IntType
from repro.minic.interp import ExecutionResult, ExecutionStatus


@dataclass(frozen=True, slots=True)
class VMPointer:
    """A pointer value inside the VM: a memory cell array plus an offset."""

    block_id: int
    offset: int

    @property
    def is_null(self) -> bool:
        return self.block_id < 0


@dataclass(slots=True)
class _VMBlock:
    id: int
    cells: list


@dataclass
class VMResult:
    """Raw VM outcome before conversion to an ExecutionResult."""

    exit_code: int | None
    stdout: str
    trapped: bool = False
    detail: str = ""
    instructions_executed: int = 0


class VMTrap(Exception):
    """Raised when the produced code performs an operation the VM cannot honour."""


class _Exit(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


@dataclass
class VirtualMachine:
    """Execute an :class:`~repro.compiler.ir.IRModule` starting from ``main``."""

    module: IRModule
    max_steps: int = 500_000
    max_call_depth: int = 200
    _blocks: dict[int, _VMBlock] = field(default_factory=dict, init=False)
    _next_block: int = field(default=0, init=False)
    _globals: dict[str, VMPointer] = field(default_factory=dict, init=False)
    _stdout: list[str] = field(default_factory=list, init=False)
    _steps: int = field(default=0, init=False)
    # Per-function, per-label lists of instruction closures, translated on
    # first entry into a block (see _call and _translate_instr).
    _prepared: dict[int, dict[str, list]] = field(default_factory=dict, init=False)

    # -- memory -----------------------------------------------------------------

    def _alloc(self, size: int, fill) -> VMPointer:
        block = _VMBlock(self._next_block, [fill] * size)
        self._blocks[block.id] = block
        self._next_block += 1
        return VMPointer(block.id, 0)

    def _cell(self, pointer: VMPointer):
        block = self._blocks.get(pointer.block_id)
        if block is None or not (0 <= pointer.offset < len(block.cells)):
            raise VMTrap(f"invalid memory access at {pointer}")
        return block, pointer.offset

    # -- execution ------------------------------------------------------------------

    def run(self, entry: str = "main") -> ExecutionResult:
        """Execute the module and return an observable-behaviour result."""
        for name, slot in self.module.globals.items():
            initial = slot.initial if slot.initial is not None else [0] * slot.size
            pointer = self._alloc(slot.size, 0)
            block, _ = self._cell(pointer)
            for index, value in enumerate(initial[: slot.size]):
                block.cells[index] = value
            self._globals[name] = pointer
        if entry not in self.module.functions:
            return ExecutionResult(ExecutionStatus.ERROR, detail=f"no function named {entry!r}")
        try:
            value = self._call(self.module.functions[entry], [], depth=0)
            exit_code = int(value) & 0xFF if isinstance(value, int) else 0
            return ExecutionResult(ExecutionStatus.OK, exit_code=exit_code, stdout=self.stdout)
        except _Exit as stop:
            return ExecutionResult(ExecutionStatus.OK, exit_code=stop.code & 0xFF, stdout=self.stdout)
        except VMTrap as trap:
            return ExecutionResult(ExecutionStatus.ERROR, stdout=self.stdout, detail=str(trap))
        except _StepLimit:
            return ExecutionResult(ExecutionStatus.TIMEOUT, stdout=self.stdout, detail="step budget exhausted")

    @property
    def stdout(self) -> str:
        return "".join(self._stdout)

    def _call(self, function: IRFunction, args: list, depth: int):
        if depth > self.max_call_depth:
            raise VMTrap("call depth limit exceeded")
        slots: dict[str, VMPointer] = {}
        for name, slot in function.slots.items():
            slots[name] = self._alloc(slot.size, 0)
        for name, value in zip(function.params, args):
            block, offset = self._cell(slots[name])
            block.cells[offset] = value

        temps: dict[str, object] = {}
        label = function.entry
        prepared_blocks = self._prepared.get(id(function))
        if prepared_blocks is None:
            prepared_blocks = self._prepared[id(function)] = {}
        max_steps = self.max_steps
        while True:
            prepared = prepared_blocks.get(label)
            if prepared is None:
                block = function.blocks.get(label)
                if block is None:
                    raise VMTrap(f"jump to unknown block {label!r}")
                prepared = prepared_blocks[label] = [
                    _translate_instr(instr) for instr in block.instructions
                ]
            next_label: str | None = None
            for thunk in prepared:
                # _tick() inlined: the hottest loop of the produced-code path.
                self._steps += 1
                if self._steps > max_steps:
                    raise _StepLimit()
                outcome = thunk(self, slots, temps, depth)
                if outcome is None:
                    continue
                if outcome.__class__ is str:
                    next_label = outcome
                    break
                return outcome[1]
            if next_label is None:
                # Fell off the end of a block without a terminator: implicit return 0.
                return 0
            label = next_label

    # -- helpers ------------------------------------------------------------------------

    def _call_named(self, name: str, args: list, depth: int):
        callee = self.module.functions.get(name)
        if callee is None:
            raise VMTrap(f"call of undefined function {name!r}")
        return self._call(callee, args, depth + 1)

    def _slot_pointer(self, name: str, slots) -> VMPointer:
        pointer = slots.get(name) or self._globals.get(name)
        if pointer is None:
            raise VMTrap(f"unknown variable {name!r}")
        return pointer

    @staticmethod
    def _as_int(value) -> int:
        if isinstance(value, VMPointer):
            # Pointer-to-integer conversions happen only in already-UB programs.
            return value.block_id * 4096 + value.offset
        return int(value)

    @staticmethod
    def _wrapped(value, int_type: IntType):
        if isinstance(value, VMPointer):
            return value
        return int_type.wrap(int(value))

    def _binop_values(self, op: str, int_type: IntType, left, right):
        """Evaluate one binary operation on already-fetched operands."""
        if op == "ptradd":
            if isinstance(left, VMPointer):
                return VMPointer(left.block_id, left.offset + self._as_int(right))
            raise VMTrap("ptradd on a non-pointer")
        if isinstance(left, VMPointer) or isinstance(right, VMPointer):
            return self._pointer_binop(op, left, right)
        left = int(left)
        right = int(right)
        compare = _COMPARISONS.get(op)
        if compare is not None:
            return int(compare(left, right))
        if op in ("/", "%"):
            if right == 0:
                raise VMTrap("division by zero")
            quotient = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                quotient = -quotient
            remainder = left - quotient * right
            return int_type.wrap(quotient if op == "/" else remainder)
        if op in ("<<", ">>"):
            shift = right % max(1, int_type.bits)
            return int_type.wrap(left << shift if op == "<<" else left >> shift)
        if op in ("&", "|", "^"):
            mask = (1 << int_type.bits) - 1
            unsigned = {
                "&": (left & mask) & (right & mask),
                "|": (left & mask) | (right & mask),
                "^": (left & mask) ^ (right & mask),
            }[op]
            return int_type.wrap(unsigned)
        result = {"+": left + right, "-": left - right, "*": left * right}.get(op)
        if result is None:
            raise VMTrap(f"unknown binary operator {op!r}")
        return int_type.wrap(result)

    def _pointer_binop(self, op: str, left, right):
        if op in ("==", "!="):
            if isinstance(left, int) and left == 0:
                left = VMPointer(-1, 0)
            if isinstance(right, int) and right == 0:
                right = VMPointer(-1, 0)
            equal = left == right
            return int(equal) if op == "==" else int(not equal)
        if op == "+" and isinstance(left, VMPointer):
            return VMPointer(left.block_id, left.offset + self._as_int(right))
        if op == "+" and isinstance(right, VMPointer):
            return VMPointer(right.block_id, right.offset + self._as_int(left))
        if op == "-" and isinstance(left, VMPointer) and isinstance(right, VMPointer):
            return left.offset - right.offset
        if op == "-" and isinstance(left, VMPointer):
            return VMPointer(left.block_id, left.offset - self._as_int(right))
        if op in ("<", "<=", ">", ">=") and isinstance(left, VMPointer) and isinstance(right, VMPointer):
            return int(_COMPARISONS[op](left.offset, right.offset))
        raise VMTrap(f"unsupported pointer operation {op!r}")

    def _unop_value(self, op: str, int_type: IntType, value):
        if isinstance(value, VMPointer):
            if op == "!":
                return int(value.is_null)
            raise VMTrap(f"unary {op!r} on a pointer")
        value = int(value)
        if op == "-":
            return int_type.wrap(-value)
        if op == "~":
            return int_type.wrap(~value)
        if op == "!":
            return int(value == 0)
        if op == "cast":
            return int_type.wrap(value)
        raise VMTrap(f"unknown unary operator {op!r}")


class _StepLimit(Exception):
    pass


_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


# -- instruction translation -------------------------------------------------------
# Each maker folds the instruction's fields into a closure taking
# (vm, slots, temps, depth).  Operand reads go through operand thunks that
# are themselves specialised per operand class at translation time.


def _operand_thunk(operand: Operand):
    cls = operand.__class__
    if cls is Temp:
        name = operand.name

        def read_temp(vm, slots, temps):
            return temps.get(name, 0)

        return read_temp
    if cls is Const:
        value = operand.value

        def read_const(vm, slots, temps):
            return value

        return read_const
    if cls is VarRef:
        name = operand.name

        def read_var(vm, slots, temps):
            pointer = slots.get(name) or vm._globals.get(name)
            if pointer is None:
                raise VMTrap(f"unknown variable {name!r}")
            block, offset = vm._cell(pointer)
            value = block.cells[offset]
            return 0 if value is None else value

        return read_var
    raise VMTrap(f"unknown operand {operand!r}")


def _base_thunk(operand: Operand):
    """Element-access base: a named array slot decays to its address."""
    if operand.__class__ is VarRef:
        name = operand.name

        def read_slot(vm, slots, temps):
            return vm._slot_pointer(name, slots)

        return read_slot
    return _operand_thunk(operand)


def _int_type_of(ctype) -> IntType:
    return ctype if isinstance(ctype, IntType) else INT


def _vmc_copy(instr: Copy):
    dest = instr.dest.name
    src = _operand_thunk(instr.src)

    def run(vm, slots, temps, depth):
        temps[dest] = src(vm, slots, temps)

    return run


def _vmc_binop(instr: BinOp):
    dest = instr.dest.name
    op = instr.op
    int_type = _int_type_of(instr.ctype)
    left_thunk = _operand_thunk(instr.left)
    right_thunk = _operand_thunk(instr.right)
    compare = _COMPARISONS.get(op) if op != "ptradd" else None
    if compare is not None:

        def run_cmp(vm, slots, temps, depth):
            left = left_thunk(vm, slots, temps)
            right = right_thunk(vm, slots, temps)
            if type(left) is int and type(right) is int:
                temps[dest] = 1 if compare(left, right) else 0
            else:
                temps[dest] = vm._binop_values(op, int_type, left, right)

        return run_cmp
    if op in ("+", "-", "*"):
        arith = {"+": int.__add__, "-": int.__sub__, "*": int.__mul__}[op]

        def run_arith(vm, slots, temps, depth):
            left = left_thunk(vm, slots, temps)
            right = right_thunk(vm, slots, temps)
            if type(left) is int and type(right) is int:
                temps[dest] = int_type.wrap(arith(left, right))
            else:
                temps[dest] = vm._binop_values(op, int_type, left, right)

        return run_arith

    def run(vm, slots, temps, depth):
        temps[dest] = vm._binop_values(
            op, int_type, left_thunk(vm, slots, temps), right_thunk(vm, slots, temps)
        )

    return run


def _vmc_unop(instr: UnOp):
    dest = instr.dest.name
    op = instr.op
    int_type = _int_type_of(instr.ctype)
    operand_thunk = _operand_thunk(instr.operand)

    def run(vm, slots, temps, depth):
        temps[dest] = vm._unop_value(op, int_type, operand_thunk(vm, slots, temps))

    return run


def _vmc_load(instr: Load):
    dest = instr.dest.name
    var = instr.var.name

    def run(vm, slots, temps, depth):
        pointer = slots.get(var) or vm._globals.get(var)
        if pointer is None:
            raise VMTrap(f"unknown variable {var!r}")
        block, offset = vm._cell(pointer)
        value = block.cells[offset]
        temps[dest] = 0 if value is None else value

    return run


def _vmc_store(instr: Store):
    var = instr.var.name
    src = _operand_thunk(instr.src)
    int_type = _int_type_of(instr.ctype)

    def run(vm, slots, temps, depth):
        pointer = slots.get(var) or vm._globals.get(var)
        if pointer is None:
            raise VMTrap(f"unknown variable {var!r}")
        block, offset = vm._cell(pointer)
        value = src(vm, slots, temps)
        if type(value) is int:
            block.cells[offset] = int_type.wrap(value)
        else:
            block.cells[offset] = vm._wrapped(value, int_type)

    return run


def _vmc_addr_of(instr: AddrOf):
    dest = instr.dest.name
    var = instr.var.name

    def run(vm, slots, temps, depth):
        pointer = slots.get(var) or vm._globals.get(var)
        if pointer is None:
            raise VMTrap(f"unknown variable {var!r}")
        temps[dest] = pointer

    return run


def _vmc_load_elem(instr: LoadElem):
    dest = instr.dest.name
    base_thunk = _base_thunk(instr.base)
    index_thunk = _operand_thunk(instr.index)

    def run(vm, slots, temps, depth):
        base = base_thunk(vm, slots, temps)
        if not isinstance(base, VMPointer):
            raise VMTrap("indexing a non-pointer value")
        index = vm._as_int(index_thunk(vm, slots, temps))
        block, offset = vm._cell(VMPointer(base.block_id, base.offset + index))
        value = block.cells[offset]
        temps[dest] = 0 if value is None else value

    return run


def _vmc_store_elem(instr: StoreElem):
    base_thunk = _base_thunk(instr.base)
    index_thunk = _operand_thunk(instr.index)
    src = _operand_thunk(instr.src)
    int_type = _int_type_of(instr.ctype)

    def run(vm, slots, temps, depth):
        base = base_thunk(vm, slots, temps)
        if not isinstance(base, VMPointer):
            raise VMTrap("indexing a non-pointer value")
        index = vm._as_int(index_thunk(vm, slots, temps))
        block, offset = vm._cell(VMPointer(base.block_id, base.offset + index))
        block.cells[offset] = vm._wrapped(src(vm, slots, temps), int_type)

    return run


def _vmc_load_ptr(instr: LoadPtr):
    dest = instr.dest.name
    ptr_thunk = _operand_thunk(instr.ptr)

    def run(vm, slots, temps, depth):
        pointer = ptr_thunk(vm, slots, temps)
        if not isinstance(pointer, VMPointer):
            raise VMTrap("dereference of a non-pointer value")
        block, offset = vm._cell(pointer)
        value = block.cells[offset]
        temps[dest] = 0 if value is None else value

    return run


def _vmc_store_ptr(instr: StorePtr):
    ptr_thunk = _operand_thunk(instr.ptr)
    src = _operand_thunk(instr.src)
    int_type = _int_type_of(instr.ctype)

    def run(vm, slots, temps, depth):
        pointer = ptr_thunk(vm, slots, temps)
        if not isinstance(pointer, VMPointer):
            raise VMTrap("store through a non-pointer value")
        block, offset = vm._cell(pointer)
        block.cells[offset] = vm._wrapped(src(vm, slots, temps), int_type)

    return run


def _vmc_call(instr: Call):
    dest = instr.dest.name if instr.dest is not None else None
    arg_thunks = [_operand_thunk(arg) for arg in instr.args]
    name = instr.name
    if name == "printf":
        format_string = instr.format or ""

        def run_printf(vm, slots, temps, depth):
            args = [thunk(vm, slots, temps) for thunk in arg_thunks]
            vm._stdout.append(_format_printf(format_string, args))
            if dest is not None:
                temps[dest] = len(args)

        return run_printf
    if name in ("abort", "__builtin_abort"):

        def run_abort(vm, slots, temps, depth):
            for thunk in arg_thunks:
                thunk(vm, slots, temps)
            raise _Exit(134)

        return run_abort
    if name == "exit":

        def run_exit(vm, slots, temps, depth):
            args = [thunk(vm, slots, temps) for thunk in arg_thunks]
            raise _Exit(vm._as_int(args[0]) if args else 0)

        return run_exit
    if name == "putchar":

        def run_putchar(vm, slots, temps, depth):
            args = [thunk(vm, slots, temps) for thunk in arg_thunks]
            value = vm._as_int(args[0]) if args else 0
            vm._stdout.append(chr(value & 0xFF))
            if dest is not None:
                temps[dest] = value

        return run_putchar

    def run_call(vm, slots, temps, depth):
        args = [thunk(vm, slots, temps) for thunk in arg_thunks]
        value = vm._call_named(name, args, depth)
        if dest is not None:
            temps[dest] = value

    return run_call


def _vmc_jump(instr: Jump):
    target = instr.target

    def run(vm, slots, temps, depth):
        return target

    return run


def _vmc_cjump(instr: CJump):
    cond_thunk = _operand_thunk(instr.cond)
    true_target = instr.true_target
    false_target = instr.false_target

    def run(vm, slots, temps, depth):
        condition = cond_thunk(vm, slots, temps)
        if type(condition) is int:
            return true_target if condition != 0 else false_target
        truthy = (
            (not condition.is_null)
            if isinstance(condition, VMPointer)
            else (vm._as_int(condition) != 0)
        )
        return true_target if truthy else false_target

    return run


def _vmc_return(instr: Return):
    if instr.value is None:

        def run_void(vm, slots, temps, depth):
            return ("return", 0)

        return run_void
    value_thunk = _operand_thunk(instr.value)

    def run(vm, slots, temps, depth):
        return ("return", value_thunk(vm, slots, temps))

    return run


_VM_TRANSLATORS = {
    Copy: _vmc_copy,
    BinOp: _vmc_binop,
    UnOp: _vmc_unop,
    Load: _vmc_load,
    Store: _vmc_store,
    AddrOf: _vmc_addr_of,
    LoadElem: _vmc_load_elem,
    StoreElem: _vmc_store_elem,
    LoadPtr: _vmc_load_ptr,
    StorePtr: _vmc_store_ptr,
    Call: _vmc_call,
    Jump: _vmc_jump,
    CJump: _vmc_cjump,
    Return: _vmc_return,
}


def _translate_instr(instr):
    maker = _VM_TRANSLATORS.get(instr.__class__)
    if maker is None:
        raise VMTrap(f"unknown instruction {instr!r}")
    return maker(instr)


def _format_printf(format_string: str, args: list) -> str:
    output: list[str] = []
    position = 0
    value_index = 0
    while position < len(format_string):
        char = format_string[position]
        if char != "%":
            output.append(char)
            position += 1
            continue
        specifier = ""
        position += 1
        while position < len(format_string) and format_string[position] in "ldux%c":
            specifier += format_string[position]
            position += 1
            if specifier[-1] in "duxc%":
                break
        if specifier == "%":
            output.append("%")
            continue
        value = args[value_index] if value_index < len(args) else 0
        value_index += 1
        integer = value if isinstance(value, int) else 0
        if specifier.endswith("u"):
            width = 64 if "l" in specifier else 32
            output.append(str(integer % (1 << width)))
        elif specifier.endswith("x"):
            width = 64 if "l" in specifier else 32
            output.append(format(integer % (1 << width), "x"))
        elif specifier.endswith("c"):
            output.append(chr(integer & 0xFF))
        else:
            output.append(str(integer))
    return "".join(output)


__all__ = ["VMPointer", "VMTrap", "VirtualMachine"]
