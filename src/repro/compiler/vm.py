"""The IR virtual machine: "executes the binary" the compiler produced.

The VM provides the second half of differential testing: the reference
interpreter runs the source, the VM runs the optimized IR, and for UB-free
programs the two observable behaviours (stdout, exit code) must agree.  The
VM itself is intentionally forgiving about undefined behaviour (it wraps
arithmetic, reads of uninitialized cells yield 0, out-of-range accesses trap
as runtime errors) -- just like running a real miscompiled binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import (
    AddrOf,
    BinOp,
    CJump,
    Call,
    Const,
    Copy,
    IRFunction,
    IRModule,
    Jump,
    Load,
    LoadElem,
    LoadPtr,
    Operand,
    Return,
    Store,
    StoreElem,
    StorePtr,
    Temp,
    UnOp,
    VarRef,
)
from repro.minic.ctypes import INT, IntType
from repro.minic.interp import ExecutionResult, ExecutionStatus


@dataclass(frozen=True)
class VMPointer:
    """A pointer value inside the VM: a memory cell array plus an offset."""

    block_id: int
    offset: int

    @property
    def is_null(self) -> bool:
        return self.block_id < 0


@dataclass
class _VMBlock:
    id: int
    cells: list


@dataclass
class VMResult:
    """Raw VM outcome before conversion to an ExecutionResult."""

    exit_code: int | None
    stdout: str
    trapped: bool = False
    detail: str = ""
    instructions_executed: int = 0


class VMTrap(Exception):
    """Raised when the produced code performs an operation the VM cannot honour."""


class _Exit(Exception):
    def __init__(self, code: int) -> None:
        self.code = code


@dataclass
class VirtualMachine:
    """Execute an :class:`~repro.compiler.ir.IRModule` starting from ``main``."""

    module: IRModule
    max_steps: int = 500_000
    max_call_depth: int = 200
    _blocks: dict[int, _VMBlock] = field(default_factory=dict, init=False)
    _next_block: int = field(default=0, init=False)
    _globals: dict[str, VMPointer] = field(default_factory=dict, init=False)
    _stdout: list[str] = field(default_factory=list, init=False)
    _steps: int = field(default=0, init=False)

    # -- memory -----------------------------------------------------------------

    def _alloc(self, size: int, fill) -> VMPointer:
        block = _VMBlock(self._next_block, [fill] * size)
        self._blocks[block.id] = block
        self._next_block += 1
        return VMPointer(block.id, 0)

    def _cell(self, pointer: VMPointer):
        block = self._blocks.get(pointer.block_id)
        if block is None or not (0 <= pointer.offset < len(block.cells)):
            raise VMTrap(f"invalid memory access at {pointer}")
        return block, pointer.offset

    # -- execution ------------------------------------------------------------------

    def run(self, entry: str = "main") -> ExecutionResult:
        """Execute the module and return an observable-behaviour result."""
        for name, slot in self.module.globals.items():
            initial = slot.initial if slot.initial is not None else [0] * slot.size
            pointer = self._alloc(slot.size, 0)
            block, _ = self._cell(pointer)
            for index, value in enumerate(initial[: slot.size]):
                block.cells[index] = value
            self._globals[name] = pointer
        if entry not in self.module.functions:
            return ExecutionResult(ExecutionStatus.ERROR, detail=f"no function named {entry!r}")
        try:
            value = self._call(self.module.functions[entry], [], depth=0)
            exit_code = int(value) & 0xFF if isinstance(value, int) else 0
            return ExecutionResult(ExecutionStatus.OK, exit_code=exit_code, stdout=self.stdout)
        except _Exit as stop:
            return ExecutionResult(ExecutionStatus.OK, exit_code=stop.code & 0xFF, stdout=self.stdout)
        except VMTrap as trap:
            return ExecutionResult(ExecutionStatus.ERROR, stdout=self.stdout, detail=str(trap))
        except _StepLimit:
            return ExecutionResult(ExecutionStatus.TIMEOUT, stdout=self.stdout, detail="step budget exhausted")

    @property
    def stdout(self) -> str:
        return "".join(self._stdout)

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise _StepLimit()

    def _call(self, function: IRFunction, args: list, depth: int):
        if depth > self.max_call_depth:
            raise VMTrap("call depth limit exceeded")
        slots: dict[str, VMPointer] = {}
        for name, slot in function.slots.items():
            slots[name] = self._alloc(slot.size, 0)
        for name, value in zip(function.params, args):
            block, offset = self._cell(slots[name])
            block.cells[offset] = value

        temps: dict[str, object] = {}
        label = function.entry
        while True:
            block = function.blocks.get(label)
            if block is None:
                raise VMTrap(f"jump to unknown block {label!r}")
            next_label: str | None = None
            for instr in block.instructions:
                self._tick()
                outcome = self._execute(instr, function, slots, temps, depth)
                if outcome is _FALLTHROUGH:
                    continue
                kind, payload = outcome
                if kind == "jump":
                    next_label = payload
                    break
                if kind == "return":
                    return payload
            if next_label is None:
                # Fell off the end of a block without a terminator: implicit return 0.
                return 0
            label = next_label

    # -- instruction dispatch ----------------------------------------------------------

    def _execute(self, instr, function: IRFunction, slots, temps, depth):
        if isinstance(instr, Copy):
            temps[instr.dest.name] = self._value(instr.src, slots, temps)
            return _FALLTHROUGH
        if isinstance(instr, BinOp):
            temps[instr.dest.name] = self._binop(instr, slots, temps)
            return _FALLTHROUGH
        if isinstance(instr, UnOp):
            temps[instr.dest.name] = self._unop(instr, slots, temps)
            return _FALLTHROUGH
        if isinstance(instr, Load):
            pointer = self._slot_pointer(instr.var.name, function, slots)
            block, offset = self._cell(pointer)
            value = block.cells[offset]
            temps[instr.dest.name] = 0 if value is None else value
            return _FALLTHROUGH
        if isinstance(instr, Store):
            pointer = self._slot_pointer(instr.var.name, function, slots)
            block, offset = self._cell(pointer)
            block.cells[offset] = self._wrapped(self._value(instr.src, slots, temps), instr.ctype)
            return _FALLTHROUGH
        if isinstance(instr, AddrOf):
            temps[instr.dest.name] = self._slot_pointer(instr.var.name, function, slots)
            return _FALLTHROUGH
        if isinstance(instr, LoadElem):
            base = self._base_pointer(instr.base, function, slots, temps)
            index = self._as_int(self._value(instr.index, slots, temps))
            pointer = self._offset_pointer(base, index)
            block, offset = self._cell(pointer)
            value = block.cells[offset]
            temps[instr.dest.name] = 0 if value is None else value
            return _FALLTHROUGH
        if isinstance(instr, StoreElem):
            base = self._base_pointer(instr.base, function, slots, temps)
            index = self._as_int(self._value(instr.index, slots, temps))
            pointer = self._offset_pointer(base, index)
            block, offset = self._cell(pointer)
            block.cells[offset] = self._wrapped(self._value(instr.src, slots, temps), instr.ctype)
            return _FALLTHROUGH
        if isinstance(instr, LoadPtr):
            pointer = self._value(instr.ptr, slots, temps)
            if not isinstance(pointer, VMPointer):
                raise VMTrap("dereference of a non-pointer value")
            block, offset = self._cell(pointer)
            value = block.cells[offset]
            temps[instr.dest.name] = 0 if value is None else value
            return _FALLTHROUGH
        if isinstance(instr, StorePtr):
            pointer = self._value(instr.ptr, slots, temps)
            if not isinstance(pointer, VMPointer):
                raise VMTrap("store through a non-pointer value")
            block, offset = self._cell(pointer)
            block.cells[offset] = self._wrapped(self._value(instr.src, slots, temps), instr.ctype)
            return _FALLTHROUGH
        if isinstance(instr, Call):
            temps_value = self._call_target(instr, function, slots, temps, depth)
            if instr.dest is not None:
                temps[instr.dest.name] = temps_value
            return _FALLTHROUGH
        if isinstance(instr, Jump):
            return ("jump", instr.target)
        if isinstance(instr, CJump):
            condition = self._value(instr.cond, slots, temps)
            truthy = (not condition.is_null) if isinstance(condition, VMPointer) else (self._as_int(condition) != 0)
            return ("jump", instr.true_target if truthy else instr.false_target)
        if isinstance(instr, Return):
            if instr.value is None:
                return ("return", 0)
            return ("return", self._value(instr.value, slots, temps))
        raise VMTrap(f"unknown instruction {instr!r}")

    # -- helpers ------------------------------------------------------------------------

    def _call_target(self, instr: Call, function, slots, temps, depth):
        args = [self._value(arg, slots, temps) for arg in instr.args]
        if instr.name == "printf":
            self._stdout.append(_format_printf(instr.format or "", args))
            return len(args)
        if instr.name in ("abort", "__builtin_abort"):
            raise _Exit(134)
        if instr.name == "exit":
            raise _Exit(self._as_int(args[0]) if args else 0)
        if instr.name == "putchar":
            value = self._as_int(args[0]) if args else 0
            self._stdout.append(chr(value & 0xFF))
            return value
        callee = self.module.functions.get(instr.name)
        if callee is None:
            raise VMTrap(f"call of undefined function {instr.name!r}")
        return self._call(callee, args, depth + 1)

    def _base_pointer(self, operand: Operand, function: IRFunction, slots, temps):
        """Resolve the base of an element access: a named array slot decays to its address."""
        if isinstance(operand, VarRef):
            return self._slot_pointer(operand.name, function, slots)
        return self._value(operand, slots, temps)

    def _slot_pointer(self, name: str, function: IRFunction, slots) -> VMPointer:
        if name in slots:
            return slots[name]
        if name in self._globals:
            return self._globals[name]
        raise VMTrap(f"unknown variable {name!r}")

    def _offset_pointer(self, base, index: int) -> VMPointer:
        if not isinstance(base, VMPointer):
            raise VMTrap("indexing a non-pointer value")
        return VMPointer(base.block_id, base.offset + index)

    def _value(self, operand: Operand, slots, temps):
        if isinstance(operand, Const):
            return operand.value
        if isinstance(operand, Temp):
            return temps.get(operand.name, 0)
        if isinstance(operand, VarRef):
            pointer = slots.get(operand.name) or self._globals.get(operand.name)
            if pointer is None:
                raise VMTrap(f"unknown variable {operand.name!r}")
            block, offset = self._cell(pointer)
            value = block.cells[offset]
            return 0 if value is None else value
        raise VMTrap(f"unknown operand {operand!r}")

    @staticmethod
    def _as_int(value) -> int:
        if isinstance(value, VMPointer):
            # Pointer-to-integer conversions happen only in already-UB programs.
            return value.block_id * 4096 + value.offset
        return int(value)

    @staticmethod
    def _wrapped(value, ctype) -> object:
        if isinstance(value, VMPointer):
            return value
        int_type = ctype if isinstance(ctype, IntType) else INT
        return int_type.wrap(int(value))

    def _binop(self, instr: BinOp, slots, temps):
        left = self._value(instr.left, slots, temps)
        right = self._value(instr.right, slots, temps)
        op = instr.op
        if op == "ptradd":
            if isinstance(left, VMPointer):
                return VMPointer(left.block_id, left.offset + self._as_int(right))
            raise VMTrap("ptradd on a non-pointer")
        if isinstance(left, VMPointer) or isinstance(right, VMPointer):
            return self._pointer_binop(op, left, right)
        int_type = instr.ctype if isinstance(instr.ctype, IntType) else INT
        left = int(left)
        right = int(right)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return int({
                "==": left == right, "!=": left != right, "<": left < right,
                "<=": left <= right, ">": left > right, ">=": left >= right,
            }[op])
        if op in ("/", "%"):
            if right == 0:
                raise VMTrap("division by zero")
            quotient = abs(left) // abs(right)
            if (left < 0) != (right < 0):
                quotient = -quotient
            remainder = left - quotient * right
            return int_type.wrap(quotient if op == "/" else remainder)
        if op in ("<<", ">>"):
            shift = right % max(1, int_type.bits)
            return int_type.wrap(left << shift if op == "<<" else left >> shift)
        if op in ("&", "|", "^"):
            mask = (1 << int_type.bits) - 1
            unsigned = {
                "&": (left & mask) & (right & mask),
                "|": (left & mask) | (right & mask),
                "^": (left & mask) ^ (right & mask),
            }[op]
            return int_type.wrap(unsigned)
        result = {"+": left + right, "-": left - right, "*": left * right}.get(op)
        if result is None:
            raise VMTrap(f"unknown binary operator {op!r}")
        return int_type.wrap(result)

    def _pointer_binop(self, op: str, left, right):
        if op in ("==", "!="):
            if isinstance(left, int) and left == 0:
                left = VMPointer(-1, 0)
            if isinstance(right, int) and right == 0:
                right = VMPointer(-1, 0)
            equal = left == right
            return int(equal) if op == "==" else int(not equal)
        if op == "+" and isinstance(left, VMPointer):
            return VMPointer(left.block_id, left.offset + self._as_int(right))
        if op == "+" and isinstance(right, VMPointer):
            return VMPointer(right.block_id, right.offset + self._as_int(left))
        if op == "-" and isinstance(left, VMPointer) and isinstance(right, VMPointer):
            return left.offset - right.offset
        if op == "-" and isinstance(left, VMPointer):
            return VMPointer(left.block_id, left.offset - self._as_int(right))
        if op in ("<", "<=", ">", ">=") and isinstance(left, VMPointer) and isinstance(right, VMPointer):
            return int({
                "<": left.offset < right.offset, "<=": left.offset <= right.offset,
                ">": left.offset > right.offset, ">=": left.offset >= right.offset,
            }[op])
        raise VMTrap(f"unsupported pointer operation {op!r}")

    def _unop(self, instr: UnOp, slots, temps):
        value = self._value(instr.operand, slots, temps)
        int_type = instr.ctype if isinstance(instr.ctype, IntType) else INT
        if isinstance(value, VMPointer):
            if instr.op == "!":
                return int(value.is_null)
            raise VMTrap(f"unary {instr.op!r} on a pointer")
        value = int(value)
        if instr.op == "-":
            return int_type.wrap(-value)
        if instr.op == "~":
            return int_type.wrap(~value)
        if instr.op == "!":
            return int(value == 0)
        if instr.op == "cast":
            return int_type.wrap(value)
        raise VMTrap(f"unknown unary operator {instr.op!r}")


class _StepLimit(Exception):
    pass


_FALLTHROUGH = object()


def _format_printf(format_string: str, args: list) -> str:
    output: list[str] = []
    position = 0
    value_index = 0
    while position < len(format_string):
        char = format_string[position]
        if char != "%":
            output.append(char)
            position += 1
            continue
        specifier = ""
        position += 1
        while position < len(format_string) and format_string[position] in "ldux%c":
            specifier += format_string[position]
            position += 1
            if specifier[-1] in "duxc%":
                break
        if specifier == "%":
            output.append("%")
            continue
        value = args[value_index] if value_index < len(args) else 0
        value_index += 1
        integer = value if isinstance(value, int) else 0
        if specifier.endswith("u"):
            width = 64 if "l" in specifier else 32
            output.append(str(integer % (1 << width)))
        elif specifier.endswith("x"):
            width = 64 if "l" in specifier else 32
            output.append(format(integer % (1 << width), "x"))
        elif specifier.endswith("c"):
            output.append(chr(integer & 0xFF))
        else:
            output.append(str(integer))
    return "".join(output)


__all__ = ["VMPointer", "VMTrap", "VirtualMachine"]
