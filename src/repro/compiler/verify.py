"""IR well-formedness verification between optimization passes.

The differential oracle only sees a miscompile at the *end* of the pipeline
and attributes it to a compiler version; the verifier catches a transform
the moment it breaks a structural invariant of the IR and names the exact
pass that did it.  The invariant catalog (see ``docs/ARCHITECTURE.md``
section 12):

* **terminator** -- every block ends in exactly one terminator
  (``Jump``/``CJump``/``Return``) and contains no terminator mid-block;
* **target** -- every jump target names a block of the same function, and
  the block's successor list agrees edge-for-edge with :class:`~repro.
  compiler.cfg.CFG`;
* **use-before-def** -- along every CFG path from the entry, each ``Temp``
  is defined before it is used (a must-analysis on the existing
  :class:`~repro.compiler.dataflow.ForwardAnalysis` fixed-point framework);
* **operand** -- ``VarRef`` operands name a known function slot or module
  global; scalar ``Load``/``Store`` never touch an array slot;
* **call** -- ``printf`` calls carry their format string, and calls to
  module functions pass exactly as many arguments as the callee has
  parameters;
* **unreachable-block** -- no blocks unreachable from the entry survive a
  ``simplify-cfg`` run (checked only when ``check_unreachable`` is set:
  lowering legitimately creates unreachable blocks, e.g. code after an
  unconditional ``return``, that only ``simplify-cfg`` is obliged to sweep).

The verifier never mutates the IR and raises nothing: it returns
:class:`IRViolation` records, and the driver decides what to do with them
(file an ``ill-formed-ir`` bug under the ``verify_ir`` campaign policy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.compiler.cfg import CFG
from repro.compiler.dataflow import ForwardAnalysis
from repro.compiler.ir import (
    TERMINATORS,
    BasicBlock,
    Call,
    IRFunction,
    IRModule,
    Load,
    Store,
    Temp,
    VarRef,
)


@dataclass(frozen=True)
class IRViolation:
    """One broken IR invariant, locatable enough to debug the offending pass."""

    function: str
    block: str
    rule: str
    detail: str

    def __str__(self) -> str:
        return f"{self.rule} in {self.function}/{self.block}: {self.detail}"


class DefinedTemps(ForwardAnalysis[frozenset]):
    """Which temps are defined on *every* CFG path reaching a block.

    A must-analysis: the lattice is sets of temp names ordered by superset,
    the meet is intersection, and the optimistic initial element is the set
    of all temps defined anywhere in the function (so loops converge to the
    path-insensitive truth rather than the empty set).
    """

    def __init__(self, function: IRFunction) -> None:
        super().__init__(function)
        self._all_temps = frozenset(
            temp.name for instr in function.instructions() for temp in instr.defs()
        )

    def initial_state(self) -> frozenset:
        return self._all_temps

    def boundary_state(self) -> frozenset:
        return frozenset()

    def meet(self, states: Iterable[frozenset]) -> frozenset:
        result: frozenset | None = None
        for state in states:
            result = state if result is None else (result & state)
        return result if result is not None else frozenset()

    def transfer(self, label: str, state: frozenset) -> frozenset:
        defined = set(state)
        for instr in self.function.blocks[label].instructions:
            defined.update(temp.name for temp in instr.defs())
        return frozenset(defined)


def verify_function(
    function: IRFunction,
    module: IRModule | None = None,
    *,
    check_unreachable: bool = False,
) -> list[IRViolation]:
    """All well-formedness violations of one function (empty = well formed)."""
    violations: list[IRViolation] = []

    def flag(block: str, rule: str, detail: str) -> None:
        violations.append(IRViolation(function.name, block, rule, detail))

    if function.entry not in function.blocks:
        flag("<none>", "entry", f"entry block {function.entry!r} does not exist")
        return violations

    for label, block in function.blocks.items():
        if block.label != label:
            flag(label, "label", f"block keyed {label!r} is labelled {block.label!r}")
        _check_terminators(block, flag)

    cfg = CFG(function)
    for label, block in function.blocks.items():
        successors = block.successors()
        for target in successors:
            if target not in function.blocks:
                flag(label, "target", f"jump target {target!r} does not exist")
        if cfg.successors.get(label, []) != successors:
            flag(label, "target", "successor list disagrees with the CFG edges")
        for target in successors:
            if target in function.blocks and label not in cfg.predecessors.get(target, []):
                flag(label, "target", f"edge to {target!r} missing from CFG predecessors")

    _check_operands(function, module, flag)
    _check_temp_definitions(function, cfg, flag)

    if check_unreachable:
        reachable = cfg.reachable()
        for label in function.blocks:
            if label not in reachable:
                flag(label, "unreachable-block", "block survived simplify-cfg unreachable")

    return violations


def verify_module(module: IRModule, *, check_unreachable: bool = False) -> list[IRViolation]:
    """All well-formedness violations across a module's functions."""
    violations: list[IRViolation] = []
    for function in module.functions.values():
        violations.extend(
            verify_function(function, module, check_unreachable=check_unreachable)
        )
    return violations


def first_violation(
    function: IRFunction,
    module: IRModule | None = None,
    *,
    check_unreachable: bool = False,
) -> IRViolation | None:
    """The first violation of one function, or None when well formed."""
    violations = verify_function(function, module, check_unreachable=check_unreachable)
    return violations[0] if violations else None


# -- individual checks -----------------------------------------------------------------


def _check_terminators(block: BasicBlock, flag) -> None:
    if not block.instructions:
        flag(block.label, "terminator", "block is empty")
        return
    if not isinstance(block.instructions[-1], TERMINATORS):
        flag(
            block.label,
            "terminator",
            f"block does not end in a terminator (last: {block.instructions[-1]})",
        )
    for instr in block.instructions[:-1]:
        if isinstance(instr, TERMINATORS):
            flag(block.label, "terminator", f"terminator mid-block: {instr}")


def _check_operands(function: IRFunction, module: IRModule | None, flag) -> None:
    module_globals = module.globals if module is not None else None
    module_functions = module.functions if module is not None else None

    def slot_of(name: str):
        slot = function.slots.get(name)
        if slot is None and module_globals is not None:
            slot = module_globals.get(name)
        return slot

    for label, block in function.blocks.items():
        for instr in block.instructions:
            for operand in instr.uses():
                if isinstance(operand, VarRef):
                    slot = slot_of(operand.name)
                    if slot is None and module_globals is not None:
                        flag(label, "operand", f"unknown variable {operand}")
            if isinstance(instr, (Load, Store)):
                slot = slot_of(instr.var.name)
                if slot is not None and slot.size != 1:
                    flag(
                        label,
                        "operand",
                        f"scalar access to array slot {instr.var} (x{slot.size})",
                    )
            if isinstance(instr, Call):
                _check_call(instr, label, module_functions, flag)


def _check_call(instr: Call, label: str, module_functions, flag) -> None:
    if instr.name == "printf":
        if instr.format is None:
            flag(label, "call", "printf call without a format string")
        return
    if module_functions is None:
        return
    callee = module_functions.get(instr.name)
    if callee is None:
        flag(label, "call", f"call to unknown function {instr.name!r}")
        return
    if len(instr.args) != len(callee.params):
        flag(
            label,
            "call",
            f"call to {instr.name!r} passes {len(instr.args)} args, "
            f"expects {len(callee.params)}",
        )


def _check_temp_definitions(function: IRFunction, cfg: CFG, flag) -> None:
    # Only meaningful when the CFG is structurally sound enough to analyse.
    analysis = DefinedTemps(function)
    analysis.run()
    for label in cfg.reverse_postorder():
        defined = set(analysis.block_in.get(label, frozenset()))
        for instr in function.blocks[label].instructions:
            for operand in instr.uses():
                if isinstance(operand, Temp) and operand.name not in defined:
                    flag(
                        label,
                        "use-before-def",
                        f"{operand} used before definition in {instr}",
                    )
            defined.update(temp.name for temp in instr.defs())


__all__ = [
    "DefinedTemps",
    "IRViolation",
    "first_violation",
    "verify_function",
    "verify_module",
]
