"""Compiler exception types."""

from __future__ import annotations


class CompilationError(Exception):
    """A legitimate frontend/lowering rejection of an input program."""


class InternalCompilerError(Exception):
    """The compiler itself crashed: an assertion or invariant violation.

    This is the "crash bug" observable of the paper -- the signature string
    (``message``) plays the role of the GCC/Clang crash messages in Table 3
    and is what the bug deduplicator keys on.
    """

    def __init__(self, message: str, component: str = "", fault_id: str = "") -> None:
        super().__init__(message)
        self.message = message
        self.component = component
        self.fault_id = fault_id

    def signature(self) -> str:
        location = f", in {self.component}" if self.component else ""
        return f"internal compiler error: {self.message}{location}"


__all__ = ["CompilationError", "InternalCompilerError"]
