"""Global constant propagation over scalar variable slots.

Uses :class:`~repro.compiler.dataflow.ReachingConstants` to find loads that
always observe the same constant and replaces them with ``Copy dest, Const``.
Combined with constant folding and CFG simplification this is what turns the
paper's Figure 1 examples into dead-code-elimination opportunities.

Seeded faults:

* ``cprop-ignores-aliases`` (wrong code, mirrors GCC PR69951): the analysis
  fails to invalidate address-taken variables at pointer stores, so a load
  after ``*q = 2`` still sees the constant stored before it.
* ``cprop-fixpoint-blowup`` (performance): when a variable receives two
  different constants inside one loop, the buggy pass re-runs its analysis a
  quadratic number of times; the driver reports the inflated pass-iteration
  count as a compile-time bug.
"""

from __future__ import annotations

from repro.compiler.dataflow import ReachingConstants
from repro.compiler.ir import (
    Call,
    Const,
    Copy,
    IRFunction,
    Instr,
    Load,
    Store,
    StoreElem,
    StorePtr,
)
from repro.compiler.passes import FunctionPass, PassContext


class ConstantPropagation(FunctionPass):
    """Replace loads of variables that provably hold a constant."""

    name = "const-prop"

    def run(self, function: IRFunction, context: PassContext) -> bool:
        ignore_aliases = context.faults.active("cprop-ignores-aliases")
        # The seeded alias bug: pointer stores invalidate nothing, so stale
        # constants survive across ``*p = ...`` writes.
        analysis = ReachingConstants(function, respect_pointer_stores=not ignore_aliases)
        analysis.run()

        iterations = 1
        if context.faults.active("cprop-fixpoint-blowup") and self._has_conflicting_loop_stores(function):
            fault = context.faults.trigger("cprop-fixpoint-blowup")
            iterations = 1 + len(function.blocks) * len(function.blocks)
            self.note(context, "fixpoint_blowup", amount=iterations)
            _ = fault

        changed = False
        for _ in range(iterations):
            changed = self._apply(function, analysis, context, ignore_aliases) or changed
        return changed

    def _apply(
        self,
        function: IRFunction,
        analysis: ReachingConstants,
        context: PassContext,
        ignore_aliases: bool,
    ) -> bool:
        has_pointer_store = any(
            isinstance(instr, (StorePtr, StoreElem)) for instr in function.instructions()
        )
        aliasable = _address_taken(function)
        changed = False
        for label, block in function.blocks.items():
            known = analysis.block_in.get(label)
            values = known.as_dict() if known is not None and not known.top else {}
            new_instructions: list[Instr] = []
            for instr in block.instructions:
                if isinstance(instr, Load) and instr.var.name in values:
                    new_instructions.append(Copy(instr.dest, Const(values[instr.var.name])))
                    self.note(context, "load_replaced")
                    if ignore_aliases and has_pointer_store and (
                        instr.var.name in aliasable or instr.var.name not in function.slots
                    ):
                        # The wrong-code fault actually fired on this program.
                        context.faults.trigger("cprop-ignores-aliases")
                        self.note(context, "alias_bug_applied")
                    changed = True
                else:
                    new_instructions.append(instr)
                # Update the running map exactly like the transfer function.
                analysis.apply_instruction(instr, values)
            block.instructions = new_instructions
        return changed

    @staticmethod
    def _has_conflicting_loop_stores(function: IRFunction) -> bool:
        from repro.compiler.cfg import CFG

        loops = CFG(function).natural_loops()
        for loop in loops:
            constants_per_var: dict[str, set[int]] = {}
            for label in loop.body:
                for instr in function.blocks[label].instructions:
                    if isinstance(instr, Store) and isinstance(instr.src, Const):
                        constants_per_var.setdefault(instr.var.name, set()).add(instr.src.value)
            if any(len(values) > 1 for values in constants_per_var.values()):
                return True
        return False


def _address_taken(function: IRFunction) -> set[str]:
    from repro.compiler.dataflow import address_taken_slots

    return address_taken_slots(function)


__all__ = ["ConstantPropagation"]
