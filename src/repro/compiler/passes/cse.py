"""Local common-subexpression elimination.

Within a basic block, a pure computation (``BinOp``/``UnOp``) whose operands
have not been redefined since an identical earlier computation is replaced by
a copy of the earlier result.  Loads participate too, keyed by the variable
name, and are invalidated by stores, pointer stores and calls.

Seeded fault ``cse-commutes-sub`` (wrong code): the value-numbering key
treats ``a - b`` and ``b - a`` as the same expression (a bogus
"canonicalisation" of a non-commutative operator), so the second of the two
gets replaced by the first's value.  The trigger requires both orders of the
same subtraction in one block -- a pattern SPE produces as soon as two holes
of one expression are swapped.
"""

from __future__ import annotations

from repro.compiler.ir import (
    BinOp,
    Call,
    Const,
    Copy,
    IRFunction,
    Instr,
    Load,
    Operand,
    Store,
    StoreElem,
    StorePtr,
    Temp,
    UnOp,
)
from repro.compiler.passes import FunctionPass, PassContext

_COMMUTATIVE = {"+", "*", "&", "|", "^", "==", "!="}


class CommonSubexpressionElimination(FunctionPass):
    """Local value numbering within each basic block."""

    name = "cse"

    def run(self, function: IRFunction, context: PassContext) -> bool:
        changed = False
        buggy_commute = context.faults.active("cse-commutes-sub")
        for block in function.blocks.values():
            available: dict[tuple, Temp] = {}
            original_order: dict[tuple, tuple] = {}
            loads: dict[str, Temp] = {}
            # Local copy canonicalisation: value numbering sees through temp
            # copies produced by earlier folding/reuse, which is what lets a
            # "t1 - t1" shape emerge from source-level "a - a".
            canon: dict[Operand, Operand] = {}
            new_instructions: list[Instr] = []
            for instr in block.instructions:
                if canon and not isinstance(instr, Copy):
                    instr.replace_uses(canon)
                replacement: Instr = instr
                if isinstance(instr, BinOp):
                    key = self._binop_key(instr, buggy_commute)
                    if key in available:
                        current_order = self._operand_keys((instr.left, instr.right))
                        if (
                            buggy_commute
                            and instr.op == "-"
                            and original_order.get(key) not in (None, current_order)
                        ):
                            # The unsound commutation actually rewrote this one.
                            context.faults.trigger("cse-commutes-sub")
                            self.note(context, "bogus_commuted_sub")
                        replacement = Copy(instr.dest, available[key])
                        canon[instr.dest] = available[key]
                        self.note(context, "binop_reused")
                        changed = True
                    else:
                        available[key] = instr.dest
                        original_order[key] = self._operand_keys((instr.left, instr.right))
                elif isinstance(instr, UnOp):
                    key = (instr.op,) + self._operand_keys((instr.operand,))
                    if key in available:
                        replacement = Copy(instr.dest, available[key])
                        canon[instr.dest] = available[key]
                        self.note(context, "unop_reused")
                        changed = True
                    else:
                        available[key] = instr.dest
                elif isinstance(instr, Copy):
                    source = canon.get(instr.src, instr.src)
                    if isinstance(instr.dest, Temp) and isinstance(source, (Temp, Const)):
                        canon[instr.dest] = source
                elif isinstance(instr, Load):
                    if instr.var.name in loads:
                        replacement = Copy(instr.dest, loads[instr.var.name])
                        canon[instr.dest] = loads[instr.var.name]
                        self.note(context, "load_reused")
                        changed = True
                    else:
                        loads[instr.var.name] = instr.dest
                elif isinstance(instr, Store):
                    loads.pop(instr.var.name, None)
                    if isinstance(instr.src, Temp):
                        loads[instr.var.name] = instr.src
                elif isinstance(instr, (StorePtr, StoreElem, Call)):
                    loads.clear()
                    available.clear()
                new_instructions.append(replacement)
            block.instructions = new_instructions
        return changed

    def _binop_key(self, instr: BinOp, buggy_commute: bool) -> tuple:
        operands = (instr.left, instr.right)
        keys = self._operand_keys(operands)
        if instr.op in _COMMUTATIVE or (buggy_commute and instr.op == "-"):
            keys = tuple(sorted(keys))
        return (instr.op,) + keys

    @staticmethod
    def _operand_keys(operands: tuple[Operand, ...]) -> tuple:
        keys = []
        for operand in operands:
            if isinstance(operand, Temp):
                keys.append(("t", operand.name))
            elif isinstance(operand, Const):
                keys.append(("c", operand.value))
            else:
                keys.append(("v", getattr(operand, "name", str(operand))))
        return tuple(keys)


__all__ = ["CommonSubexpressionElimination"]
