"""Copy propagation.

Two levels:

* **local (temp) copy propagation** -- within a block, uses of a temp defined
  by ``Copy t, x`` are rewritten to use ``x`` directly;
* **global (slot) copy propagation** -- using
  :class:`~repro.compiler.dataflow.AvailableCopies`, a load of ``b`` where
  ``b == a`` on every path is rewritten to a load of ``a``.

Seeded fault ``copyprop-self-assign`` (crash): the pass asserts that a copy
never names the same slot on both sides; SPE-generated self-assignments
``a = a`` violate that assumption and crash the compiler ("Invalid register
name" style backend assertion).
"""

from __future__ import annotations

from repro.compiler.dataflow import AvailableCopies
from repro.compiler.ir import (
    Copy,
    IRFunction,
    Instr,
    Load,
    Operand,
    Store,
    Temp,
    VarRef,
)
from repro.compiler.passes import FunctionPass, PassContext


class CopyPropagation(FunctionPass):
    """Forward temp copies and slot-level copies to their sources."""

    name = "copy-prop"

    def run(self, function: IRFunction, context: PassContext) -> bool:
        changed = self._local_temp_copies(function, context)
        changed = self._slot_copies(function, context) or changed
        return changed

    # -- local temp copy propagation ----------------------------------------------

    def _local_temp_copies(self, function: IRFunction, context: PassContext) -> bool:
        changed = False
        for block in function.blocks.values():
            mapping: dict[Operand, Operand] = {}
            for instr in block.instructions:
                if mapping:
                    before = str(instr)
                    instr.replace_uses(mapping)
                    if str(instr) != before:
                        self.note(context, "temp_copy_forwarded")
                        changed = True
                if isinstance(instr, Copy) and isinstance(instr.dest, Temp):
                    source = mapping.get(instr.src, instr.src)
                    if isinstance(source, (Temp,)) or hasattr(source, "value"):
                        mapping[instr.dest] = source
                for defined in instr.defs():
                    # A redefinition invalidates copies built from the old value.
                    mapping = {
                        dst: src
                        for dst, src in mapping.items()
                        if dst != defined and src != defined
                    }
                    if isinstance(instr, Copy) and instr.dest == defined:
                        source = mapping.get(instr.src, instr.src)
                        mapping[defined] = source
        return changed

    # -- global slot copy propagation -----------------------------------------------

    def _slot_copies(self, function: IRFunction, context: PassContext) -> bool:
        # Seeded crash on self-assignments "a = a" (Store @a <- Load @a).
        if context.faults.active("copyprop-self-assign"):
            for block in function.blocks.values():
                loaded_from: dict[str, str] = {}
                for instr in block.instructions:
                    if isinstance(instr, Load):
                        loaded_from[instr.dest.name] = instr.var.name
                    elif isinstance(instr, Store) and isinstance(instr.src, Temp):
                        if loaded_from.get(instr.src.name) == instr.var.name:
                            context.faults.crash(
                                "copyprop-self-assign", detail=f"variable {instr.var.name!r}"
                            )

        analysis = AvailableCopies(function)
        analysis.run()
        changed = False
        for label, block in function.blocks.items():
            state = analysis.block_in.get(label, frozenset())
            copies = {dst: src for dst, src in state if dst != "__top__"}
            new_instructions: list[Instr] = []
            for instr in block.instructions:
                if isinstance(instr, Load) and instr.var.name in copies:
                    new_instructions.append(
                        Load(instr.dest, VarRef(copies[instr.var.name]), ctype=instr.ctype)
                    )
                    self.note(context, "slot_copy_forwarded")
                    changed = True
                else:
                    new_instructions.append(instr)
                # Keep the running copy map in sync within the block.
                if isinstance(instr, Store):
                    copies = {
                        dst: src
                        for dst, src in copies.items()
                        if dst != instr.var.name and src != instr.var.name
                    }
                elif instr.__class__.__name__ in ("StorePtr", "StoreElem", "Call"):
                    copies = {}
            block.instructions = new_instructions
        return changed


__all__ = ["CopyPropagation"]
