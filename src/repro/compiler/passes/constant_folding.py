"""Constant folding and algebraic simplification.

Folds arithmetic on constant operands, simplifies algebraic identities
(``x + 0``, ``x * 1``, ``x * 0``, ``x - x``, ``x ^ x``...), and folds
conditional jumps whose condition is a constant.

Seeded fault ``fold-equal-operands`` (crash): mirrors GCC PR69801 -- the
folder crashes when asked to decide the equality of two *structurally
identical* operands of a subtraction/comparison (the compiler's
``operand_equal_p`` assertion).  SPE hits this constantly because filling two
holes of one expression with the same variable creates exactly that shape.
"""

from __future__ import annotations

from repro.compiler.ir import (
    BinOp,
    CJump,
    Const,
    Copy,
    IRFunction,
    Instr,
    Jump,
    Temp,
    UnOp,
)
from repro.compiler.passes import FunctionPass, PassContext
from repro.minic.ctypes import INT, IntType


def _wrap(value: int, ctype) -> int:
    int_type = ctype if isinstance(ctype, IntType) else INT
    return int_type.wrap(value)


def fold_binary(op: str, left: int, right: int, ctype) -> int | None:
    """Evaluate a binary operator on constants; None when not foldable."""
    int_type = ctype if isinstance(ctype, IntType) else INT
    unsigned_left = left & ((1 << int_type.bits) - 1)
    unsigned_right = right & ((1 << int_type.bits) - 1)
    if op == "+":
        return _wrap(left + right, int_type)
    if op == "-":
        return _wrap(left - right, int_type)
    if op == "*":
        return _wrap(left * right, int_type)
    if op in ("/", "%"):
        if right == 0:
            return None
        quotient = abs(left) // abs(right)
        if (left < 0) != (right < 0):
            quotient = -quotient
        remainder = left - quotient * right
        return _wrap(quotient if op == "/" else remainder, int_type)
    if op == "<<":
        if right < 0 or right >= int_type.bits:
            return None
        return _wrap(left << right, int_type)
    if op == ">>":
        if right < 0 or right >= int_type.bits:
            return None
        return _wrap(left >> right, int_type)
    if op == "&":
        return _wrap(unsigned_left & unsigned_right, int_type)
    if op == "|":
        return _wrap(unsigned_left | unsigned_right, int_type)
    if op == "^":
        return _wrap(unsigned_left ^ unsigned_right, int_type)
    if op in ("==", "!=", "<", "<=", ">", ">="):
        return int(
            {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
            }[op]
        )
    return None


class ConstantFolding(FunctionPass):
    """Fold constant expressions and simplify algebraic identities."""

    name = "const-fold"

    def run(self, function: IRFunction, context: PassContext) -> bool:
        changed = False
        for block in function.blocks.values():
            new_instructions: list[Instr] = []
            for instr in block.instructions:
                replacement = self.fold_instruction(instr, context)
                if replacement is not instr:
                    changed = True
                new_instructions.append(replacement)
            block.instructions = new_instructions
        return changed

    # -- per-instruction folding ------------------------------------------------

    def fold_instruction(self, instr: Instr, context: PassContext) -> Instr:
        if isinstance(instr, BinOp):
            return self.fold_binop(instr, context)
        if isinstance(instr, UnOp):
            return self.fold_unop(instr, context)
        if isinstance(instr, CJump) and isinstance(instr.cond, Const):
            self.note(context, "folded_branch")
            target = instr.true_target if instr.cond.value != 0 else instr.false_target
            return Jump(target)
        return instr

    def fold_binop(self, instr: BinOp, context: PassContext) -> Instr:
        left, right = instr.left, instr.right

        # Seeded crash: deciding equality of structurally identical operands.
        if (
            context.faults.active("fold-equal-operands")
            and instr.op in ("-", "==", "!=")
            and isinstance(left, Temp)
            and left == right
        ):
            context.faults.crash("fold-equal-operands", detail=f"operands of {instr.op!r}")

        if isinstance(left, Const) and isinstance(right, Const):
            folded = fold_binary(instr.op, left.value, right.value, instr.ctype)
            if folded is not None:
                self.note(context, f"folded_{_op_label(instr.op)}")
                return Copy(instr.dest, Const(folded))
            return instr

        # Algebraic identities.
        if instr.op == "+" and isinstance(right, Const) and right.value == 0:
            self.note(context, "identity_add_zero")
            return Copy(instr.dest, left)
        if instr.op == "+" and isinstance(left, Const) and left.value == 0:
            self.note(context, "identity_add_zero")
            return Copy(instr.dest, right)
        if instr.op == "-" and isinstance(right, Const) and right.value == 0:
            self.note(context, "identity_sub_zero")
            return Copy(instr.dest, left)
        if instr.op == "*" and isinstance(right, Const) and right.value == 1:
            self.note(context, "identity_mul_one")
            return Copy(instr.dest, left)
        if instr.op == "*" and isinstance(left, Const) and left.value == 1:
            self.note(context, "identity_mul_one")
            return Copy(instr.dest, right)
        if instr.op == "*" and (
            (isinstance(right, Const) and right.value == 0)
            or (isinstance(left, Const) and left.value == 0)
        ):
            self.note(context, "identity_mul_zero")
            return Copy(instr.dest, Const(0))
        if instr.op == "/" and isinstance(right, Const) and right.value == 1:
            self.note(context, "identity_div_one")
            return Copy(instr.dest, left)
        if instr.op in ("-", "^") and isinstance(left, Temp) and left == right:
            self.note(context, "identity_x_minus_x")
            return Copy(instr.dest, Const(0))
        if instr.op in ("==", "<=", ">=") and isinstance(left, Temp) and left == right:
            self.note(context, "identity_reflexive_compare")
            return Copy(instr.dest, Const(1))
        if instr.op in ("!=", "<", ">") and isinstance(left, Temp) and left == right:
            self.note(context, "identity_irreflexive_compare")
            return Copy(instr.dest, Const(0))
        return instr

    def fold_unop(self, instr: UnOp, context: PassContext) -> Instr:
        if not isinstance(instr.operand, Const):
            return instr
        value = instr.operand.value
        int_type = instr.ctype if isinstance(instr.ctype, IntType) else INT
        if instr.op == "-":
            self.note(context, "folded_neg")
            return Copy(instr.dest, Const(int_type.wrap(-value)))
        if instr.op == "~":
            self.note(context, "folded_not")
            return Copy(instr.dest, Const(int_type.wrap(~value)))
        if instr.op == "!":
            self.note(context, "folded_lnot")
            return Copy(instr.dest, Const(0 if value != 0 else 1))
        if instr.op == "cast":
            self.note(context, "folded_cast")
            return Copy(instr.dest, Const(int_type.wrap(value)))
        return instr


def _op_label(op: str) -> str:
    names = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
        "<<": "shl", ">>": "shr", "&": "and", "|": "or", "^": "xor",
        "==": "eq", "!=": "ne", "<": "lt", "<=": "le", ">": "gt", ">=": "ge",
    }
    return names.get(op, "op")


__all__ = ["ConstantFolding", "fold_binary"]
