"""Loop-invariant code motion (plus the loop-indexing wrong-code fault).

For every natural loop, pure computations whose operands are defined outside
the loop (constants, or temps/variables not redefined inside the loop) are
hoisted into a preheader block inserted before the loop header.

Seeded faults:

* ``licm-irreducible-assert`` (crash, mirrors GCC PR69740): the loop
  machinery asserts the CFG is reducible; ``goto`` patterns that SPE creates
  routinely violate that and the pass dies in its "verify loop structure"
  check.
* ``loop-index-strength-reduce`` (wrong code, mirrors GCC PR70138): when an
  array element address inside a loop is computed from an expression that
  uses the same variable twice (``a + 1335 * a``), the bogus strength
  reduction rewrites the index to use only its first occurrence, reading the
  wrong element.
"""

from __future__ import annotations

from repro.compiler.cfg import CFG
from repro.compiler.ir import (
    AddrOf,
    BinOp,
    Const,
    Copy,
    IRFunction,
    Instr,
    Jump,
    Load,
    LoadElem,
    Operand,
    Store,
    Temp,
    UnOp,
    VarRef,
)
from repro.compiler.passes import FunctionPass, PassContext

_HOISTABLE = (BinOp, UnOp, Copy, AddrOf)


class LoopInvariantCodeMotion(FunctionPass):
    """Hoist loop-invariant pure computations into loop preheaders."""

    name = "licm"

    def run(self, function: IRFunction, context: PassContext) -> bool:
        cfg = CFG(function)

        if context.faults.active("licm-irreducible-assert") and not cfg.is_reducible():
            context.faults.crash(
                "licm-irreducible-assert", detail=f"function {function.name!r}"
            )

        changed = False
        if context.faults.active("loop-index-strength-reduce"):
            changed = self._bogus_strength_reduction(function, cfg, context) or changed

        for loop in cfg.natural_loops():
            changed = self._hoist_loop(function, cfg, loop, context) or changed
        return changed

    # -- correct hoisting -----------------------------------------------------------

    def _hoist_loop(self, function: IRFunction, cfg: CFG, loop, context: PassContext) -> bool:
        # Identify values defined inside the loop.
        defined_inside: set[str] = set()
        stored_inside: set[str] = set()
        has_side_entry = False
        for label in loop.body:
            if label not in function.blocks:
                return False
            for instr in function.blocks[label].instructions:
                for temp in instr.defs():
                    defined_inside.add(temp.name)
                if isinstance(instr, Store):
                    stored_inside.add(instr.var.name)
                if instr.__class__.__name__ in ("StorePtr", "StoreElem", "Call"):
                    stored_inside.add("*")  # unknown memory effects
        for label in loop.body:
            if label == loop.header:
                continue
            for pred in cfg.predecessors.get(label, []):
                if pred not in loop.body:
                    has_side_entry = True
        if has_side_entry:
            self.note(context, "loop_skipped_side_entry")
            return False

        def operand_invariant(operand: Operand) -> bool:
            if isinstance(operand, Const):
                return True
            if isinstance(operand, Temp):
                return operand.name not in defined_inside
            if isinstance(operand, VarRef):
                return False
            return False

        hoisted: list[Instr] = []
        memory_unknown = "*" in stored_inside
        for label in loop.body:
            block = function.blocks[label]
            kept: list[Instr] = []
            for instr in block.instructions:
                can_hoist = (
                    isinstance(instr, _HOISTABLE)
                    and all(operand_invariant(op) for op in instr.uses())
                    and not (isinstance(instr, BinOp) and instr.op in ("/", "%"))
                )
                # Loads of variables that the loop never stores to (directly or
                # through pointers/calls) are also loop-invariant.
                if (
                    not can_hoist
                    and isinstance(instr, Load)
                    and not memory_unknown
                    and instr.var.name not in stored_inside
                ):
                    can_hoist = True
                if can_hoist:
                    hoisted.append(instr)
                    for temp in instr.defs():
                        defined_inside.discard(temp.name)
                    self.note(context, "instruction_hoisted")
                else:
                    kept.append(instr)
            block.instructions = kept

        if not hoisted:
            return False

        # Build (or reuse) a preheader: a new block that runs the hoisted code
        # and jumps to the header; all non-back edges are redirected to it.
        preheader_label = function.new_label(f"{loop.header}.preheader")
        preheader = function.add_block(preheader_label)
        preheader.instructions = hoisted + [Jump(loop.header)]
        for label, block in function.blocks.items():
            if label == preheader_label or label in loop.body:
                continue
            terminator = block.terminator
            if isinstance(terminator, Jump) and terminator.target == loop.header:
                terminator.target = preheader_label
            elif terminator is not None and hasattr(terminator, "true_target"):
                if terminator.true_target == loop.header:
                    terminator.true_target = preheader_label
                if terminator.false_target == loop.header:
                    terminator.false_target = preheader_label
        if function.entry == loop.header:
            function.entry = preheader_label
        self.note(context, "preheader_created")
        return True

    # -- seeded wrong-code strength reduction -------------------------------------------

    def _bogus_strength_reduction(self, function: IRFunction, cfg: CFG, context: PassContext) -> bool:
        """Rewrite in-loop element indexes of the form f(x, x) to just x."""
        changed = False
        loop_blocks = {label for loop in cfg.natural_loops() for label in loop.body}
        for label in loop_blocks:
            if label not in function.blocks:
                continue
            block = function.blocks[label]
            # Map temp -> (slot names it was computed from)
            sources: dict[str, set[str]] = {}
            for instr in block.instructions:
                if isinstance(instr, Load):
                    sources[instr.dest.name] = {instr.var.name}
                elif isinstance(instr, (BinOp,)):
                    combined: set[str] = set()
                    for operand in instr.uses():
                        if isinstance(operand, Temp):
                            combined |= sources.get(operand.name, set())
                    sources[instr.dest.name] = combined
            for instr in block.instructions:
                if isinstance(instr, (LoadElem,)) and isinstance(instr.index, Temp):
                    index_sources = sources.get(instr.index.name, set())
                    if len(index_sources) == 1 and self._index_uses_variable_twice(
                        block, instr.index, next(iter(index_sources))
                    ):
                        # Replace the computed index with the bare variable load.
                        replacement = self._first_load_of(block, next(iter(index_sources)))
                        if replacement is not None and replacement != instr.index:
                            instr.index = replacement
                            context.faults.trigger("loop-index-strength-reduce")
                            self.note(context, "bogus_index_rewrite")
                            changed = True
        return changed

    @staticmethod
    def _index_uses_variable_twice(block, index_temp: Temp, slot: str) -> bool:
        loads_of_slot = {
            instr.dest.name
            for instr in block.instructions
            if isinstance(instr, Load) and instr.var.name == slot
        }
        # Find the BinOp defining the index and check both operands trace to the slot.
        for instr in block.instructions:
            if isinstance(instr, BinOp) and instr.dest == index_temp:
                temps = [op.name for op in instr.uses() if isinstance(op, Temp)]
                return len(temps) == 2
        return False

    @staticmethod
    def _first_load_of(block, slot: str) -> Temp | None:
        for instr in block.instructions:
            if isinstance(instr, Load) and instr.var.name == slot:
                return instr.dest
        return None


__all__ = ["LoopInvariantCodeMotion"]
