"""Optimization pass framework.

Every pass transforms one :class:`~repro.compiler.ir.IRFunction` in place and
reports what it did through a :class:`CoverageRecorder` -- the fine-grained
"which parts of the compiler did this input exercise" signal that Figure 9 of
the paper measures with gcov.  Passes also consult the active
:class:`~repro.compiler.faults.FaultSet`: seeded bugs are implemented inside
the passes themselves, guarded by fault ids, so different "compiler versions"
exhibit different crash and wrong-code behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.faults import FaultSet
from repro.compiler.ir import IRFunction, IRModule


@dataclass
class CoverageRecorder:
    """Records which pass-level events an input triggered.

    ``events`` is the set of distinct event labels (the unit of "coverage");
    ``counts`` additionally counts how often each fired.
    """

    events: set[str] = field(default_factory=set)
    counts: dict[str, int] = field(default_factory=dict)

    def record(self, event: str, amount: int = 1) -> None:
        self.events.add(event)
        self.counts[event] = self.counts.get(event, 0) + amount

    def merge(self, other: "CoverageRecorder") -> None:
        for event, count in other.counts.items():
            self.record(event, count)

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class PassContext:
    """Everything a pass needs besides the function it transforms."""

    module: IRModule
    coverage: CoverageRecorder = field(default_factory=CoverageRecorder)
    faults: FaultSet = field(default_factory=FaultSet)
    optimization_level: int = 0
    statistics: dict[str, int] = field(default_factory=dict)

    def note(self, pass_name: str, event: str, amount: int = 1) -> None:
        self.coverage.record(f"{pass_name}.{event}", amount)
        key = f"{pass_name}.{event}"
        self.statistics[key] = self.statistics.get(key, 0) + amount


class FunctionPass:
    """Base class: transform one function in place; return True if changed."""

    name = "pass"

    def run(self, function: IRFunction, context: PassContext) -> bool:
        raise NotImplementedError

    def note(self, context: PassContext, event: str, amount: int = 1) -> None:
        context.note(self.name, event, amount)


from repro.compiler.passes.constant_folding import ConstantFolding
from repro.compiler.passes.constant_propagation import ConstantPropagation
from repro.compiler.passes.copy_propagation import CopyPropagation
from repro.compiler.passes.cse import CommonSubexpressionElimination
from repro.compiler.passes.dce import DeadCodeElimination
from repro.compiler.passes.licm import LoopInvariantCodeMotion
from repro.compiler.passes.simplify_cfg import SimplifyCFG

ALL_PASSES = {
    cls.name: cls
    for cls in (
        ConstantFolding,
        ConstantPropagation,
        CopyPropagation,
        CommonSubexpressionElimination,
        DeadCodeElimination,
        LoopInvariantCodeMotion,
        SimplifyCFG,
    )
}

__all__ = [
    "ALL_PASSES",
    "CommonSubexpressionElimination",
    "ConstantFolding",
    "ConstantPropagation",
    "CopyPropagation",
    "CoverageRecorder",
    "DeadCodeElimination",
    "FunctionPass",
    "LoopInvariantCodeMotion",
    "PassContext",
    "SimplifyCFG",
]
