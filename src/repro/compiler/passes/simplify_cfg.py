"""Control-flow graph simplification.

* removes blocks unreachable from the entry;
* threads jumps through empty forwarding blocks (a block whose only
  instruction is ``jump X``);
* merges a block into its unique successor when that successor has no other
  predecessors;
* collapses conditional jumps whose two targets are identical.

Seeded fault ``cfg-self-loop-collapse`` (crash, mirrors GCC PR69740):
while threading forwarding blocks the pass fails to notice a block that jumps
to itself (an empty infinite loop, typically produced by enumerations that
turn a loop condition into a constant); following the chain never terminates
and the internal "loop structure" verification gives up with an assertion.

Seeded fault ``cfg-retain-garbage-block`` (ill-formed IR): the unreachable
sweep loses track of one dead block and leaves it -- intact but orphaned --
in the function.  The garbage never executes (the VM translates blocks
lazily on first entry) and every downstream pass tolerates it, so campaigns
that do not verify IR see byte-identical behaviour; only the between-pass
verifier (:mod:`repro.compiler.verify`) observes the corruption, which is
why the fault does not mark itself triggered here -- the driver's verifier
wiring does that when (and only when) verification is on.
"""

from __future__ import annotations

from repro.compiler.cfg import CFG
from repro.compiler.ir import CJump, IRFunction, Jump
from repro.compiler.passes import FunctionPass, PassContext


class SimplifyCFG(FunctionPass):
    """Clean up the control-flow graph after other passes."""

    name = "simplify-cfg"

    def run(self, function: IRFunction, context: PassContext) -> bool:
        changed = False
        changed = self._collapse_trivial_cjumps(function, context) or changed
        changed = self._thread_forwarding_blocks(function, context) or changed
        changed = self._remove_unreachable(function, context) or changed
        changed = self._merge_straight_line(function, context) or changed
        return changed

    def _collapse_trivial_cjumps(self, function: IRFunction, context: PassContext) -> bool:
        changed = False
        for block in function.blocks.values():
            terminator = block.terminator
            if isinstance(terminator, CJump) and terminator.true_target == terminator.false_target:
                block.instructions[-1] = Jump(terminator.true_target)
                self.note(context, "cjump_collapsed")
                changed = True
        return changed

    def _thread_forwarding_blocks(self, function: IRFunction, context: PassContext) -> bool:
        # A forwarding block contains exactly one instruction: jump X.
        forwarding: dict[str, str] = {}
        for label, block in function.blocks.items():
            if len(block.instructions) == 1 and isinstance(block.instructions[0], Jump):
                forwarding[label] = block.instructions[0].target

        buggy = context.faults.active("cfg-self-loop-collapse")
        if buggy:
            for label, target in forwarding.items():
                if label == target:
                    context.faults.crash(
                        "cfg-self-loop-collapse", detail=f"block {label!r} forwards to itself"
                    )

        def resolve(label: str) -> str:
            seen = set()
            current = label
            while current in forwarding and current not in seen:
                seen.add(current)
                current = forwarding[current]
            return current

        changed = False
        for block in function.blocks.values():
            terminator = block.terminator
            if isinstance(terminator, Jump):
                target = resolve(terminator.target)
                if target != terminator.target and target != block.label:
                    terminator.target = target
                    self.note(context, "jump_threaded")
                    changed = True
            elif isinstance(terminator, CJump):
                true_target = resolve(terminator.true_target)
                false_target = resolve(terminator.false_target)
                if true_target != terminator.true_target or false_target != terminator.false_target:
                    terminator.true_target = true_target
                    terminator.false_target = false_target
                    self.note(context, "cjump_threaded")
                    changed = True
        if function.entry in forwarding:
            # Keep the entry block; threading only rewrites edges.
            pass
        return changed

    def _remove_unreachable(self, function: IRFunction, context: PassContext) -> bool:
        reachable = CFG(function).reachable()
        unreachable = [label for label in function.blocks if label not in reachable]
        retained: str | None = None
        if unreachable and context.faults.active("cfg-retain-garbage-block"):
            retained = self._garbage_block_to_retain(function, reachable, unreachable)
        removed = False
        for label in unreachable:
            if label == retained:
                continue
            del function.blocks[label]
            self.note(context, "unreachable_block_removed")
            removed = True
        return removed

    @staticmethod
    def _garbage_block_to_retain(
        function: IRFunction, reachable: set, unreachable: list
    ) -> str | None:
        """Which unreachable block the seeded fault forgets to delete.

        Deterministic (first eligible in layout order) and deliberately
        restricted to blocks that are harmless with verification off: never
        a single-``jump`` forwarding block (those interact with the
        self-loop threading fault) and only blocks whose every successor is
        reachable (so no dangling edges are left behind).
        """
        for label in unreachable:
            block = function.blocks[label]
            if len(block.instructions) == 1 and isinstance(block.instructions[0], Jump):
                continue
            if any(succ not in reachable for succ in block.successors()):
                continue
            return label
        return None

    def _merge_straight_line(self, function: IRFunction, context: PassContext) -> bool:
        changed = True
        merged_any = False
        while changed:
            changed = False
            cfg = CFG(function)
            for label in list(function.blocks):
                if label not in function.blocks:
                    continue
                block = function.blocks[label]
                terminator = block.terminator
                if not isinstance(terminator, Jump):
                    continue
                target = terminator.target
                if target == label or target not in function.blocks:
                    continue
                if target == function.entry:
                    continue
                if len(cfg.predecessors.get(target, [])) != 1:
                    continue
                successor = function.blocks[target]
                block.instructions = block.instructions[:-1] + successor.instructions
                del function.blocks[target]
                self.note(context, "blocks_merged")
                changed = True
                merged_any = True
                break
        return merged_any


__all__ = ["SimplifyCFG"]
