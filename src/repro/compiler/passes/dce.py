"""Dead code elimination.

Three ingredients:

* **dead temp elimination** -- pure instructions whose result temp is never
  used are dropped (iterated to a fixed point);
* **dead store elimination** -- stores to local scalars that are not live out
  of the block and are overwritten before any use are dropped, using
  :class:`~repro.compiler.dataflow.LiveVariables`;
* the removal of unreachable blocks lives in
  :class:`~repro.compiler.passes.simplify_cfg.SimplifyCFG`.

Seeded fault ``dce-addr-taken-store`` (wrong code, mirrors Clang PR26994):
dead-store elimination forgets that address-taken locals can be read through
pointers (or after a ``goto`` re-enters the block), so it deletes stores that
are in fact observable.
"""

from __future__ import annotations

from repro.compiler.dataflow import LiveVariables, address_taken_slots
from repro.compiler.ir import (
    AddrOf,
    BinOp,
    Call,
    Copy,
    IRFunction,
    Instr,
    Load,
    LoadElem,
    LoadPtr,
    Store,
    Temp,
    UnOp,
    VarRef,
)
from repro.compiler.passes import FunctionPass, PassContext

_PURE = (BinOp, UnOp, Copy, Load, LoadElem, LoadPtr, AddrOf)


class DeadCodeElimination(FunctionPass):
    """Remove computations and stores that cannot affect observable behaviour."""

    name = "dce"

    def run(self, function: IRFunction, context: PassContext) -> bool:
        changed = self._dead_temps(function, context)
        changed = self._dead_stores(function, context) or changed
        return changed

    # -- dead temps ------------------------------------------------------------

    def _dead_temps(self, function: IRFunction, context: PassContext) -> bool:
        changed = False
        while True:
            used: set[str] = set()
            for instr in function.instructions():
                for operand in instr.uses():
                    if isinstance(operand, Temp):
                        used.add(operand.name)
            removed_any = False
            for block in function.blocks.values():
                kept: list[Instr] = []
                for instr in block.instructions:
                    is_dead = (
                        isinstance(instr, _PURE)
                        and instr.defs()
                        and all(temp.name not in used for temp in instr.defs())
                    )
                    if is_dead:
                        self.note(context, "dead_temp_removed")
                        removed_any = True
                        changed = True
                    else:
                        kept.append(instr)
                block.instructions = kept
            if not removed_any:
                break
        return changed

    # -- dead stores ---------------------------------------------------------------

    def _dead_stores(self, function: IRFunction, context: PassContext) -> bool:
        forget_address_taken = context.faults.active("dce-addr-taken-store")
        liveness = LiveVariables(function)
        if forget_address_taken:
            liveness.address_taken = set()
        liveness.run()
        taken = set() if forget_address_taken else address_taken_slots(function)

        changed = False
        for label, block in function.blocks.items():
            live: set[str] = set(liveness.live_out_of(label))
            if forget_address_taken:
                live -= address_taken_slots(function) - _globals_of(function)
            kept_reversed: list[Instr] = []
            for instr in reversed(block.instructions):
                if isinstance(instr, Store):
                    name = instr.var.name
                    is_local = name in function.slots
                    observable = (
                        not is_local  # globals are always observable
                        or name in live
                        or name in taken
                    )
                    if not observable:
                        if forget_address_taken and name in address_taken_slots(function):
                            context.faults.trigger("dce-addr-taken-store")
                            self.note(context, "observable_store_removed")
                        self.note(context, "dead_store_removed")
                        changed = True
                        continue
                    live.discard(name)
                    kept_reversed.append(instr)
                    for operand in instr.uses():
                        if isinstance(operand, VarRef):
                            live.add(operand.name)
                    continue
                kept_reversed.append(instr)
                for operand in instr.uses():
                    if isinstance(operand, VarRef):
                        live.add(operand.name)
                if isinstance(instr, Load):
                    live.add(instr.var.name)
                if isinstance(instr, Call) and not forget_address_taken:
                    live |= address_taken_slots(function)
            block.instructions = list(reversed(kept_reversed))
        return changed


def _globals_of(function: IRFunction) -> set[str]:
    names: set[str] = set()
    for instr in function.instructions():
        if isinstance(instr, (Load, Store)):
            if instr.var.name not in function.slots:
                names.add(instr.var.name)
    return names


__all__ = ["DeadCodeElimination"]
