"""The compiler driver: source text in, compiled module (or crash) out.

``Compiler`` glues the whole pipeline together the way the campaign harness
uses a real compiler binary:

1. parse + resolve (the mini-C frontend);
2. frontend-level seeded fault checks (the "C/C++ frontend" bug components
   of Figure 10);
3. lowering to IR;
4. the optimization pipeline of the requested ``-O`` level, with coverage
   instrumentation and pass-level seeded faults;
5. on request, execution of the optimized IR on the VM to observe the
   produced "binary"'s behaviour.

A crash anywhere surfaces as an :class:`InternalCompilerError` captured in
the :class:`CompileOutcome`; wrong-code faults record themselves in
``triggered_faults`` (the harness does not look at that field when deciding
whether behaviour differs -- it only uses it to label known seeded bugs when
reporting, mirroring how the paper's authors map crashes back to bugzilla
entries).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.compiler.errors import CompilationError, InternalCompilerError
from repro.compiler.faults import FaultKind, FaultSet
from repro.compiler.ir import IRModule, clone_module, instruction_count
from repro.compiler.lowering import lower_module
from repro.core.holes import BoundVariant
from repro.compiler.passes import CoverageRecorder, PassContext
from repro.compiler.pipeline import OptimizationLevel, build_pass_pipeline
from repro.compiler.verify import first_violation
from repro.compiler.versions import CompilerVersion, get_version
from repro.compiler.vm import VirtualMachine
from repro.minic import ast
from repro.minic.errors import MiniCError
from repro.minic.interp import ExecutionResult, ExecutionStatus
from repro.minic.parser import parse
from repro.minic.printer import expr_to_source
from repro.minic.symbols import resolve


@dataclass
class CompileOutcome:
    """Everything observable about one compilation."""

    source_name: str
    version: str
    opt_level: OptimizationLevel
    machine_bits: int = 64
    success: bool = False
    module: IRModule | None = None
    crash: InternalCompilerError | None = None
    rejected: str | None = None  # legitimate frontend rejection message
    coverage: CoverageRecorder = field(default_factory=CoverageRecorder)
    triggered_faults: list[str] = field(default_factory=list)
    compile_effort: int = 0
    #: Content sha of ``str(module)``, stamped when the compiler already knows
    #: it (the pipeline-cache paths): lets the oracle's VM-result cache key a
    #: run without re-rendering the module text.  ``None`` on legacy paths.
    module_sha: str | None = None
    #: ``(pass name, violation)`` when the between-pass IR verifier caught a
    #: broken invariant (only populated when :attr:`Compiler.verify_ir` is
    #: on); the oracle reports it as an ``ill-formed-ir`` bug naming the
    #: offending pass.  The pipeline stops at the first violation, so
    #: ``crash`` and ``ill_formed`` are mutually exclusive.
    ill_formed: tuple[str, str] | None = None

    @property
    def crashed(self) -> bool:
        return self.crash is not None

    def crash_signature(self) -> str | None:
        return self.crash.signature() if self.crash is not None else None


@dataclass(frozen=True)
class PipelineRecord:
    """One memoised pass-pipeline run (see :class:`PipelineCache`).

    Captures the pipeline's *complete* observable effect on a compilation:
    the optimized module (shared read-only -- neither the passes nor the VM
    mutate a module after compilation), the content sha of its rendered
    text, the crash it raised (if any), the faults it triggered (first
    occurrences, in trigger order -- duplicates are dropped because the only
    consumer deduplicates order-preservingly), the coverage events it
    recorded, and the compile effort it reported.  Replaying a record
    produces a :class:`CompileOutcome` indistinguishable from a fresh run.
    """

    module: object | None
    module_sha: str | None
    crash: InternalCompilerError | None
    triggered: tuple[str, ...]
    coverage: tuple[tuple[str, int], ...]
    compile_effort: int
    #: Verifier verdict of the run that produced this record (see
    #: :attr:`CompileOutcome.ill_formed`); a cache hit replays the miss's
    #: verdict.  Trailing default keeps older positional constructions valid.
    ill_formed: tuple[str, str] | None = None


class PipelineCache:
    """Campaign-scoped cache of pass-pipeline outcomes.

    Keyed by ``(version, opt_level, machine_bits, content sha of the
    pre-optimization module)`` -- everything the pipeline's behaviour can
    depend on: passes are deterministic in the module they transform, the
    pass schedule (opt level), and the version's seeded-fault set.  Shared
    by every executor of a campaign's configuration matrix; each
    configuration occupies its own key space, so a hit replays a compilation
    this exact configuration has already performed (re-compiles during
    performance checks, triage reduction/bisection, incremental runs, and
    repeated corpus content) without running a single pass.
    """

    #: Bound on retained entries (FIFO eviction, like the VM-result cache).
    MAX_ENTRIES = 16384

    __slots__ = ("entries", "hits", "misses", "max_entries")

    def __init__(self, max_entries: int = MAX_ENTRIES) -> None:
        self.entries: dict[tuple, PipelineRecord] = {}
        self.hits = 0
        self.misses = 0
        self.max_entries = max_entries

    def get(self, key: tuple) -> PipelineRecord | None:
        record = self.entries.get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def put(self, key: tuple, record: PipelineRecord) -> None:
        self.entries[key] = record
        while len(self.entries) > self.max_entries:
            del self.entries[next(iter(self.entries))]


#: Sentinel distinguishing "memo not computed" from a computed ``None``.
_UNSET = object()


class Compiler:
    """A simulated compiler binary: one version at one optimization level."""

    def __init__(
        self,
        version: str | CompilerVersion = "reference",
        opt_level: OptimizationLevel | int = OptimizationLevel.O2,
        machine_bits: int = 64,
        vm_max_steps: int = 500_000,
    ) -> None:
        self.version = get_version(version) if isinstance(version, str) else version
        self.opt_level = OptimizationLevel(int(opt_level))
        self.machine_bits = machine_bits
        self.vm_max_steps = vm_max_steps
        # Shared across compilations: passes are stateless (all per-run state
        # lives in the PassContext) and Fault objects are immutable -- only
        # the FaultSet's ``triggered`` list is per-compilation.
        self._pipeline = build_pass_pipeline(self.opt_level)
        self._fault_dict = {fault.id: fault for fault in self.version.faults}
        #: Optional campaign-scoped :class:`PipelineCache`; when wired (the
        #: harness does this for every executor of its oracle matrix),
        #: ``compile_variant`` memoises pass-pipeline outcomes by content.
        self.pipeline_cache: PipelineCache | None = None
        #: Run the between-pass IR verifier (:mod:`repro.compiler.verify`)
        #: during the pass pipeline.  Off by default -- the oracle switches
        #: it on under the campaign's ``verify_ir`` policy; with it off the
        #: driver's behaviour is bit-for-bit the pre-verifier behaviour.
        self.verify_ir = False

    def _fresh_faults(self) -> FaultSet:
        return FaultSet(faults=self._fault_dict, opt_level=int(self.opt_level))

    # -- compilation -------------------------------------------------------------

    def compile_source(self, source: str, name: str = "<source>") -> CompileOutcome:
        """Compile C source text; never raises for crashes (they are captured)."""

        def build(faults: FaultSet) -> IRModule:
            unit = parse(source)
            resolve(unit)
            self._frontend_checks(unit, faults)
            return lower_module(unit)

        return self._compile(name, build)

    def compile_unit(self, unit: ast.TranslationUnit, name: str = "<unit>") -> CompileOutcome:
        """Compile an already-parsed *and resolved* translation unit.

        Skips the textual frontend entirely: no render, no re-lex, no
        re-parse, no re-resolve.  The unit's identifier ``decl``/``ctype``
        links must be up to date (fresh from :func:`repro.minic.symbols.
        resolve` or maintained by ``Skeleton.bind``).
        """

        def build(faults: FaultSet) -> IRModule:
            self._frontend_checks(unit, faults)
            return lower_module(unit)

        return self._compile(name, build)

    def compile_variant(self, variant: BoundVariant, name: str = "<variant>") -> CompileOutcome:
        """Compile a bound variant, sharing one lowering across the oracle matrix.

        The variant's AST is rebound in O(holes); the lowered IR is computed
        once per variant (memoised on ``variant.cache``) and *cloned* per
        configuration so each pass pipeline mutates a private copy.  The
        per-configuration order of effects matches :meth:`compile_source`:
        frontend fault checks run before lowering is consulted, so a
        frontend crash masks a lowering rejection exactly as in the textual
        path.

        With a :attr:`pipeline_cache` wired, the pass-pipeline run is keyed
        on the content sha of the pre-optimization lowered module (per
        configuration) and replayed from cache on repeats; frontend fault
        verdicts and the lowered module's sha are additionally memoised per
        variant, and at ``-O0`` (empty pipeline) the shared lowered module
        is used directly -- no passes can mutate it, so no private clone is
        needed.  All of it is observationally identical to the uncached
        path.
        """
        cache = self.pipeline_cache
        if cache is None:

            def build(faults: FaultSet) -> IRModule:
                unit = variant.program
                self._frontend_checks(unit, faults)
                return self._lowered_clone(variant, unit)

            return self._compile(name, build)
        return self._compile_variant_cached(variant, name, cache)

    def _compile_variant_cached(
        self, variant: BoundVariant, name: str, cache: PipelineCache
    ) -> CompileOutcome:
        """The pipeline-dedup fast path of :meth:`compile_variant`."""
        outcome = CompileOutcome(
            source_name=name,
            version=self.version.name,
            opt_level=self.opt_level,
            machine_bits=self.machine_bits,
        )
        faults = self._fresh_faults()
        try:
            unit = variant.program
            self._frontend_checks_variant(variant, unit, faults)
            lowered = self._lowered_cached(variant, unit)
            lowered_sha = self._lowered_sha(variant, lowered)
            key = (self.version.name, int(self.opt_level), self.machine_bits, lowered_sha)
            record = cache.get(key)
            if record is None:
                record = self._run_pipeline_recorded(lowered, lowered_sha, faults, outcome)
                cache.put(key, record)
            else:
                for event, count in record.coverage:
                    outcome.coverage.record(event, count)
                faults.triggered.extend(record.triggered)
                outcome.compile_effort = record.compile_effort
            if record.crash is not None:
                raise record.crash
            outcome.module = record.module
            outcome.module_sha = record.module_sha
            outcome.ill_formed = record.ill_formed
            outcome.success = True
        except InternalCompilerError as crash:
            outcome.crash = crash
        except (MiniCError, CompilationError) as rejection:
            outcome.rejected = str(rejection)
        outcome.triggered_faults = list(dict.fromkeys(faults.triggered))
        return outcome

    def _run_pipeline_recorded(
        self,
        lowered: IRModule,
        lowered_sha: str,
        faults: FaultSet,
        outcome: CompileOutcome,
    ) -> PipelineRecord:
        """Run the pass pipeline once and capture its effects as a record.

        An empty pipeline (``-O0``) cannot mutate the module, so the shared
        lowered module is used directly (its text -- and therefore its sha --
        is the lowered sha); otherwise the pipeline runs on a private clone
        whose rendered text is hashed once for the VM-result cache.
        """
        base = len(faults.triggered)
        module = clone_module(lowered) if self._pipeline else lowered
        crash: InternalCompilerError | None = None
        try:
            self._run_pipeline(module, faults, outcome)
        except InternalCompilerError as error:
            crash = error
        triggered = tuple(dict.fromkeys(faults.triggered[base:]))
        coverage = tuple(outcome.coverage.counts.items())
        if crash is not None:
            return PipelineRecord(None, None, crash, triggered, coverage, outcome.compile_effort)
        if module is lowered:
            module_sha = lowered_sha
        else:
            module_sha = hashlib.sha256(str(module).encode()).hexdigest()
        return PipelineRecord(
            module,
            module_sha,
            None,
            triggered,
            coverage,
            outcome.compile_effort,
            outcome.ill_formed,
        )

    def _compile(self, name: str, build_module) -> CompileOutcome:
        """Shared scaffolding: run ``build_module`` + the pass pipeline,
        capturing crashes and rejections into the outcome."""
        outcome = CompileOutcome(
            source_name=name,
            version=self.version.name,
            opt_level=self.opt_level,
            machine_bits=self.machine_bits,
        )
        faults = self._fresh_faults()
        try:
            module = build_module(faults)
            self._run_pipeline(module, faults, outcome)
            outcome.module = module
            outcome.success = True
        except InternalCompilerError as crash:
            outcome.crash = crash
        except (MiniCError, CompilationError) as rejection:
            outcome.rejected = str(rejection)
        outcome.triggered_faults = list(dict.fromkeys(faults.triggered))
        return outcome

    @staticmethod
    def _lowered_cached(variant: BoundVariant, unit: ast.TranslationUnit) -> IRModule:
        """The variant's lowered IR, computed once and shared read-only.

        A lowering rejection is memoised too (as the exception) so every
        configuration reports the identical rejection string.
        """
        cached = variant.cache.get("lowered_ir")
        if cached is None:
            try:
                cached = lower_module(unit)
            except CompilationError as error:
                cached = error
            variant.cache["lowered_ir"] = cached
        if isinstance(cached, CompilationError):
            raise cached
        return cached

    @staticmethod
    def _lowered_clone(variant: BoundVariant, unit: ast.TranslationUnit) -> IRModule:
        """The variant's lowered IR: computed once, cloned per configuration."""
        return clone_module(Compiler._lowered_cached(variant, unit))

    @staticmethod
    def _lowered_sha(variant: BoundVariant, lowered: IRModule) -> str:
        """Content sha of the lowered module text, rendered once per variant."""
        sha = variant.cache.get("lowered_sha")
        if sha is None:
            sha = hashlib.sha256(str(lowered).encode()).hexdigest()
            variant.cache["lowered_sha"] = sha
        return sha

    def _frontend_checks_variant(
        self, variant: BoundVariant, unit: ast.TranslationUnit, faults: FaultSet
    ) -> None:
        """:meth:`_frontend_checks` with per-variant verdict memoisation.

        The three frontend checks are pure functions of the unit (the fault
        set only gates whether a verdict *fires*), so their verdicts are
        computed once per variant and replayed for every configuration whose
        fault set activates them -- same crashes, same detail strings, in the
        same order as the unmemoised walk.
        """
        memo = variant.cache
        if faults.active("frontend-identical-arms"):
            detail = memo.get("fe_identical_arms", _UNSET)
            if detail is _UNSET:
                detail = None
                for node in unit.walk():
                    if isinstance(node, ast.Conditional):
                        if expr_to_source(node.then_expr) == expr_to_source(node.else_expr):
                            detail = f"'{expr_to_source(node.then_expr)}'"
                            break
                memo["fe_identical_arms"] = detail
            if detail is not None:
                faults.crash("frontend-identical-arms", detail=detail)
        if faults.active("frontend-nested-conditional-depth"):
            depth = memo.get("fe_conditional_depth")
            if depth is None:
                depth = memo["fe_conditional_depth"] = self._max_conditional_depth(unit)
            if depth >= 3:
                faults.crash("frontend-nested-conditional-depth")
        if faults.active("frontend-goto-into-scope"):
            detail = memo.get("fe_goto_into_scope", _UNSET)
            if detail is _UNSET:
                detail = memo["fe_goto_into_scope"] = self._first_goto_into_scope(unit)
            if detail is not None:
                faults.crash("frontend-goto-into-scope", detail=detail)

    # -- execution ----------------------------------------------------------------

    def run(self, outcome: CompileOutcome, entry: str = "main") -> ExecutionResult:
        """Execute the compiled module on the VM."""
        if not outcome.success or outcome.module is None:
            return ExecutionResult(ExecutionStatus.ERROR, detail="compilation did not succeed")
        return VirtualMachine(outcome.module, max_steps=self.vm_max_steps).run(entry)

    def compile_and_run(
        self, source: str, name: str = "<source>", entry: str = "main"
    ) -> tuple[CompileOutcome, ExecutionResult | None]:
        """Compile then execute; execution is skipped when compilation fails."""
        outcome = self.compile_source(source, name=name)
        if not outcome.success:
            return outcome, None
        return outcome, self.run(outcome, entry=entry)

    # -- internals ------------------------------------------------------------------

    def _run_pipeline(self, module: IRModule, faults: FaultSet, outcome: CompileOutcome) -> None:
        context = PassContext(
            module=module,
            coverage=outcome.coverage,
            faults=faults,
            optimization_level=int(self.opt_level),
        )
        pipeline = self._pipeline
        verify = self.verify_ir and bool(pipeline)
        for function in module.functions.values():
            outcome.coverage.record("frontend.function_lowered")
            for pass_instance in pipeline:
                outcome.coverage.record(f"pipeline.{pass_instance.name}")
                changed = pass_instance.run(function, context)
                if changed:
                    outcome.coverage.record(f"pipeline.{pass_instance.name}.changed")
                # Verify after any pass that reports a change, plus after
                # every simplify-cfg run: only simplify-cfg owes the
                # no-unreachable-blocks invariant, and its seeded
                # ill-formed fault can corrupt without reporting a change.
                if verify and (changed or pass_instance.name == "simplify-cfg"):
                    violation = first_violation(
                        function,
                        module,
                        check_unreachable=pass_instance.name == "simplify-cfg",
                    )
                    if violation is not None:
                        self._note_ill_formed(pass_instance.name, violation, faults, outcome)
                        outcome.compile_effort = sum(
                            context.statistics.values()
                        ) + instruction_count(module)
                        return
        outcome.compile_effort = sum(context.statistics.values()) + instruction_count(module)

    def _note_ill_formed(
        self, pass_name: str, violation, faults: FaultSet, outcome: CompileOutcome
    ) -> None:
        """Stamp a verifier violation on the outcome and attribute its fault.

        Ill-formed-IR faults deliberately stay silent inside the passes (so
        verification-off campaigns remain byte-identical); the verifier is
        the observer, so it marks any matching seeded fault triggered --
        which gives the filed bug its component/priority metadata and a
        stable triggered-faults dedup key.
        """
        for fault in self._fault_dict.values():
            if (
                fault.kind is FaultKind.ILL_FORMED_IR
                and fault.pass_name == pass_name
                and fault.active_at(int(self.opt_level))
            ):
                faults.trigger(fault.id)
        outcome.ill_formed = (pass_name, str(violation))

    # -- frontend seeded faults --------------------------------------------------------

    def _frontend_checks(self, unit: ast.TranslationUnit, faults: FaultSet) -> None:
        if faults.active("frontend-identical-arms"):
            for node in unit.walk():
                if isinstance(node, ast.Conditional):
                    if expr_to_source(node.then_expr) == expr_to_source(node.else_expr):
                        faults.crash(
                            "frontend-identical-arms",
                            detail=f"'{expr_to_source(node.then_expr)}'",
                        )
        if faults.active("frontend-nested-conditional-depth"):
            if self._max_conditional_depth(unit) >= 3:
                faults.crash("frontend-nested-conditional-depth")
        if faults.active("frontend-goto-into-scope"):
            self._check_goto_into_scope(unit, faults)

    @staticmethod
    def _max_conditional_depth(unit: ast.TranslationUnit) -> int:
        def depth(node: ast.Node) -> int:
            best = 0
            for child in node.children():
                best = max(best, depth(child))
            if isinstance(node, ast.Conditional):
                return best + 1
            return best

        return depth(unit)

    @staticmethod
    def _check_goto_into_scope(unit: ast.TranslationUnit, faults: FaultSet) -> None:
        detail = Compiler._first_goto_into_scope(unit)
        if detail is not None:
            faults.crash("frontend-goto-into-scope", detail=detail)

    @staticmethod
    def _first_goto_into_scope(unit: ast.TranslationUnit) -> str | None:
        """Detail string of the first goto-into-scope violation, if any."""
        for function in unit.functions():
            gotos = [node for node in function.walk() if isinstance(node, ast.Goto)]
            if not gotos:
                continue
            for block in function.walk():
                if not isinstance(block, ast.Block) or block is function.body:
                    continue
                has_decls = any(isinstance(item, ast.DeclStmt) for item in block.items)
                if not has_decls:
                    continue
                labels = {
                    node.name for node in block.walk() if isinstance(node, ast.Label)
                }
                gotos_inside = {
                    id(node) for node in block.walk() if isinstance(node, ast.Goto)
                }
                for goto in gotos:
                    if goto.label in labels and id(goto) not in gotos_inside:
                        return f"label {goto.label!r}"
        return None


__all__ = [
    "CompilationError",
    "CompileOutcome",
    "Compiler",
    "InternalCompilerError",
    "PipelineCache",
    "PipelineRecord",
]
