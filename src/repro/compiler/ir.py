"""Three-address intermediate representation.

A module holds global variable definitions and functions; a function holds an
ordered collection of basic blocks; a block holds straight-line instructions
and ends with exactly one terminator (jump, conditional jump, or return).

Operands are either virtual registers (:class:`Temp`), named memory slots
(:class:`VarRef`, for scalar variables), or constants (:class:`Const`).
Memory-touching instructions (Load/Store/LoadElem/StoreElem/LoadPtr/StorePtr/
AddrOf) make variable accesses explicit so dataflow passes can reason about
them; everything else is pure register arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.minic.ctypes import CType, INT


# -- operands -------------------------------------------------------------------


@dataclass(frozen=True)
class Temp:
    """A virtual register."""

    name: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Const:
    """An integer constant operand."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class VarRef:
    """A reference to a named variable (global or local scalar/array slot)."""

    name: str

    def __str__(self) -> str:
        return f"@{self.name}"


Operand = Temp | Const | VarRef


# -- instructions ------------------------------------------------------------------


@dataclass
class Instr:
    """Base class for IR instructions."""

    def uses(self) -> list[Operand]:
        """Operands read by this instruction."""
        return []

    def defs(self) -> list[Temp]:
        """Temps written by this instruction."""
        return []

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        """Substitute operands in place according to ``mapping``."""


@dataclass
class BinOp(Instr):
    dest: Temp
    op: str
    left: Operand
    right: Operand
    ctype: CType = INT

    def uses(self) -> list[Operand]:
        return [self.left, self.right]

    def defs(self) -> list[Temp]:
        return [self.dest]

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        self.left = mapping.get(self.left, self.left)
        self.right = mapping.get(self.right, self.right)

    def __str__(self) -> str:
        return f"{self.dest} = {self.left} {self.op} {self.right}"


@dataclass
class UnOp(Instr):
    dest: Temp
    op: str
    operand: Operand
    ctype: CType = INT

    def uses(self) -> list[Operand]:
        return [self.operand]

    def defs(self) -> list[Temp]:
        return [self.dest]

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        self.operand = mapping.get(self.operand, self.operand)

    def __str__(self) -> str:
        return f"{self.dest} = {self.op}{self.operand}"


@dataclass
class Copy(Instr):
    """``dest = src`` register copy (also used to materialise constants)."""

    dest: Temp
    src: Operand

    def uses(self) -> list[Operand]:
        return [self.src]

    def defs(self) -> list[Temp]:
        return [self.dest]

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        self.src = mapping.get(self.src, self.src)

    def __str__(self) -> str:
        return f"{self.dest} = {self.src}"


@dataclass
class Load(Instr):
    """``dest = @var`` -- read a scalar variable."""

    dest: Temp
    var: VarRef
    ctype: CType = INT

    def uses(self) -> list[Operand]:
        return [self.var]

    def defs(self) -> list[Temp]:
        return [self.dest]

    def __str__(self) -> str:
        return f"{self.dest} = load {self.var}"


@dataclass
class Store(Instr):
    """``@var = src`` -- write a scalar variable."""

    var: VarRef
    src: Operand
    ctype: CType = INT

    def uses(self) -> list[Operand]:
        return [self.src]

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        self.src = mapping.get(self.src, self.src)

    def __str__(self) -> str:
        return f"store {self.var} = {self.src}"


@dataclass
class AddrOf(Instr):
    """``dest = &var`` -- the address of a variable or array."""

    dest: Temp
    var: VarRef

    def uses(self) -> list[Operand]:
        return [self.var]

    def defs(self) -> list[Temp]:
        return [self.dest]

    def __str__(self) -> str:
        return f"{self.dest} = &{self.var}"


@dataclass
class LoadElem(Instr):
    """``dest = base[index]`` where ``base`` is a pointer-valued operand."""

    dest: Temp
    base: Operand
    index: Operand
    ctype: CType = INT

    def uses(self) -> list[Operand]:
        return [self.base, self.index]

    def defs(self) -> list[Temp]:
        return [self.dest]

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        self.base = mapping.get(self.base, self.base)
        self.index = mapping.get(self.index, self.index)

    def __str__(self) -> str:
        return f"{self.dest} = {self.base}[{self.index}]"


@dataclass
class StoreElem(Instr):
    """``base[index] = src``."""

    base: Operand
    index: Operand
    src: Operand
    ctype: CType = INT

    def uses(self) -> list[Operand]:
        return [self.base, self.index, self.src]

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        self.base = mapping.get(self.base, self.base)
        self.index = mapping.get(self.index, self.index)
        self.src = mapping.get(self.src, self.src)

    def __str__(self) -> str:
        return f"{self.base}[{self.index}] = {self.src}"


@dataclass
class LoadPtr(Instr):
    """``dest = *ptr``."""

    dest: Temp
    ptr: Operand
    ctype: CType = INT

    def uses(self) -> list[Operand]:
        return [self.ptr]

    def defs(self) -> list[Temp]:
        return [self.dest]

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        self.ptr = mapping.get(self.ptr, self.ptr)

    def __str__(self) -> str:
        return f"{self.dest} = *{self.ptr}"


@dataclass
class StorePtr(Instr):
    """``*ptr = src``."""

    ptr: Operand
    src: Operand
    ctype: CType = INT

    def uses(self) -> list[Operand]:
        return [self.ptr, self.src]

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        self.ptr = mapping.get(self.ptr, self.ptr)
        self.src = mapping.get(self.src, self.src)

    def __str__(self) -> str:
        return f"*{self.ptr} = {self.src}"


@dataclass
class Call(Instr):
    """``dest = call name(args...)``; dest may be None for void-ish calls."""

    dest: Temp | None
    name: str
    args: list[Operand] = field(default_factory=list)
    # printf calls carry their format string separately.
    format: str | None = None

    def uses(self) -> list[Operand]:
        return list(self.args)

    def defs(self) -> list[Temp]:
        return [self.dest] if self.dest is not None else []

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        self.args = [mapping.get(arg, arg) for arg in self.args]

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.args)
        prefix = f"{self.dest} = " if self.dest is not None else ""
        return f"{prefix}call {self.name}({args})"


# -- terminators ----------------------------------------------------------------------


@dataclass
class Jump(Instr):
    target: str

    def __str__(self) -> str:
        return f"jump {self.target}"


@dataclass
class CJump(Instr):
    cond: Operand
    true_target: str
    false_target: str

    def uses(self) -> list[Operand]:
        return [self.cond]

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        self.cond = mapping.get(self.cond, self.cond)

    def __str__(self) -> str:
        return f"cjump {self.cond} ? {self.true_target} : {self.false_target}"


@dataclass
class Return(Instr):
    value: Operand | None = None

    def uses(self) -> list[Operand]:
        return [self.value] if self.value is not None else []

    def replace_uses(self, mapping: dict[Operand, Operand]) -> None:
        if self.value is not None:
            self.value = mapping.get(self.value, self.value)

    def __str__(self) -> str:
        return f"return {self.value}" if self.value is not None else "return"


TERMINATORS = (Jump, CJump, Return)


# -- containers ------------------------------------------------------------------------


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions ending in one terminator."""

    label: str
    instructions: list[Instr] = field(default_factory=list)

    @property
    def terminator(self) -> Instr | None:
        if self.instructions and isinstance(self.instructions[-1], TERMINATORS):
            return self.instructions[-1]
        return None

    @property
    def body(self) -> list[Instr]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return list(self.instructions)

    def successors(self) -> list[str]:
        terminator = self.terminator
        if isinstance(terminator, Jump):
            return [terminator.target]
        if isinstance(terminator, CJump):
            return [terminator.true_target, terminator.false_target]
        return []

    def __str__(self) -> str:
        lines = [f"{self.label}:"]
        lines.extend(f"  {instr}" for instr in self.instructions)
        return "\n".join(lines)


@dataclass
class VariableSlot:
    """A named memory slot of a function or module (scalar or array)."""

    name: str
    ctype: CType
    size: int = 1  # number of elements; 1 for scalars
    initial: list[int] | None = None  # globals only
    is_param: bool = False


@dataclass
class IRFunction:
    """One function in IR form."""

    name: str
    params: list[str] = field(default_factory=list)
    slots: dict[str, VariableSlot] = field(default_factory=dict)
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    entry: str = "entry"
    return_type: CType = INT

    def block(self, label: str) -> BasicBlock:
        return self.blocks[label]

    def block_order(self) -> list[str]:
        return list(self.blocks)

    def instructions(self) -> Iterator[Instr]:
        for block in self.blocks.values():
            yield from block.instructions

    def new_label(self, hint: str) -> str:
        index = 0
        label = hint
        while label in self.blocks:
            index += 1
            label = f"{hint}.{index}"
        return label

    def add_block(self, label: str) -> BasicBlock:
        block = BasicBlock(label)
        self.blocks[label] = block
        return block

    def __str__(self) -> str:
        header = f"function {self.name}({', '.join(self.params)})"
        chunks = [header]
        for slot in self.slots.values():
            chunks.append(f"  slot {slot.name}: {slot.ctype} x{slot.size}")
        for block in self.blocks.values():
            chunks.append(str(block))
        return "\n".join(chunks)


@dataclass
class IRModule:
    """A whole translation unit in IR form."""

    globals: dict[str, VariableSlot] = field(default_factory=dict)
    functions: dict[str, IRFunction] = field(default_factory=dict)

    def function(self, name: str) -> IRFunction:
        return self.functions[name]

    def __str__(self) -> str:
        chunks = [f"global {slot.name}: {slot.ctype} x{slot.size} = {slot.initial}" for slot in self.globals.values()]
        chunks.extend(str(function) for function in self.functions.values())
        return "\n\n".join(chunks)


def instruction_count(module: IRModule) -> int:
    """Total instruction count across all functions (a simple size metric)."""
    return sum(len(block.instructions) for function in module.functions.values() for block in function.blocks.values())


# -- structural cloning ------------------------------------------------------------------

# Per-type instruction cloners (a dispatch table, like the interpreter's).
# Operands (Temp/Const/VarRef) and CTypes are frozen/immutable and therefore
# shared between the original and the clone; everything mutable -- the
# instruction objects themselves, argument lists, block instruction lists,
# slot dicts -- is fresh.  This is what makes one lowering shareable across a
# whole compiler-configuration matrix: each configuration's pass pipeline
# mutates its own clone.
_INSTR_CLONERS = {
    BinOp: lambda i: BinOp(i.dest, i.op, i.left, i.right, i.ctype),
    UnOp: lambda i: UnOp(i.dest, i.op, i.operand, i.ctype),
    Copy: lambda i: Copy(i.dest, i.src),
    Load: lambda i: Load(i.dest, i.var, i.ctype),
    Store: lambda i: Store(i.var, i.src, i.ctype),
    AddrOf: lambda i: AddrOf(i.dest, i.var),
    LoadElem: lambda i: LoadElem(i.dest, i.base, i.index, i.ctype),
    StoreElem: lambda i: StoreElem(i.base, i.index, i.src, i.ctype),
    LoadPtr: lambda i: LoadPtr(i.dest, i.ptr, i.ctype),
    StorePtr: lambda i: StorePtr(i.ptr, i.src, i.ctype),
    Call: lambda i: Call(i.dest, i.name, list(i.args), i.format),
    Jump: lambda i: Jump(i.target),
    CJump: lambda i: CJump(i.cond, i.true_target, i.false_target),
    Return: lambda i: Return(i.value),
}


def clone_instr(instr: Instr) -> Instr:
    """A fresh instruction object with the same (shared, immutable) operands."""
    return _INSTR_CLONERS[instr.__class__](instr)


def clone_slot(slot: VariableSlot) -> VariableSlot:
    return VariableSlot(
        slot.name,
        slot.ctype,
        size=slot.size,
        initial=list(slot.initial) if slot.initial is not None else None,
        is_param=slot.is_param,
    )


def clone_function(function: IRFunction) -> IRFunction:
    return IRFunction(
        name=function.name,
        params=list(function.params),
        slots={name: clone_slot(slot) for name, slot in function.slots.items()},
        blocks={
            label: BasicBlock(label, [clone_instr(instr) for instr in block.instructions])
            for label, block in function.blocks.items()
        },
        entry=function.entry,
        return_type=function.return_type,
    )


def clone_module(module: IRModule) -> IRModule:
    """Deep-enough copy of a module for an independent optimization pipeline.

    Much faster than ``copy.deepcopy``: immutable leaves (operands, types)
    are shared, and no memo bookkeeping is needed.
    """
    return IRModule(
        globals={name: clone_slot(slot) for name, slot in module.globals.items()},
        functions={name: clone_function(fn) for name, fn in module.functions.items()},
    )


__all__ = [
    "AddrOf",
    "BasicBlock",
    "BinOp",
    "CJump",
    "Call",
    "Const",
    "Copy",
    "IRFunction",
    "IRModule",
    "Instr",
    "Jump",
    "Load",
    "LoadElem",
    "LoadPtr",
    "Operand",
    "Return",
    "Store",
    "StoreElem",
    "StorePtr",
    "TERMINATORS",
    "Temp",
    "UnOp",
    "VarRef",
    "VariableSlot",
    "clone_function",
    "clone_instr",
    "clone_module",
    "clone_slot",
    "instruction_count",
]
