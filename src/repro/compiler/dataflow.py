"""A small generic dataflow framework plus the concrete analyses the passes use.

The framework iterates transfer functions over the CFG to a fixed point; the
concrete clients are:

* :class:`ReachingConstants` -- forward "constant lattice" analysis over
  scalar variable slots (drives global constant propagation);
* :class:`LiveVariables` -- backward liveness of variable slots (drives dead
  store elimination);
* :class:`AvailableCopies` -- forward availability of ``var = var`` copies
  (drives copy propagation across blocks).

Temps are single-assignment in practice after lowering (each temp is defined
once in one block), so the analyses focus on the named variable slots; the
local (per-block) parts of the passes handle temps directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, Hashable, Iterable, TypeVar

from repro.compiler.cfg import CFG
from repro.compiler.ir import (
    Call,
    Const,
    IRFunction,
    Instr,
    Load,
    Store,
    StorePtr,
    StoreElem,
    VarRef,
)

State = TypeVar("State")


class ForwardAnalysis(Generic[State]):
    """A forward dataflow analysis skeleton (meet over predecessors)."""

    def __init__(self, function: IRFunction) -> None:
        self.function = function
        self.cfg = CFG(function)
        self.block_in: dict[str, State] = {}
        self.block_out: dict[str, State] = {}

    # Subclasses implement these three.
    def initial_state(self) -> State:
        raise NotImplementedError

    def boundary_state(self) -> State:
        raise NotImplementedError

    def meet(self, states: Iterable[State]) -> State:
        raise NotImplementedError

    def transfer(self, label: str, state: State) -> State:
        raise NotImplementedError

    def run(self) -> None:
        """Iterate to a fixed point over the reachable blocks."""
        order = self.cfg.reverse_postorder()
        for label in order:
            self.block_in[label] = self.initial_state()
            self.block_out[label] = self.initial_state()
        if not order:
            return
        self.block_in[order[0]] = self.boundary_state()
        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            if iterations > 200:  # pragma: no cover - safety net
                break
            for label in order:
                preds = [p for p in self.cfg.predecessors.get(label, []) if p in self.block_out]
                if label == self.function.entry:
                    in_state = self.boundary_state()
                elif preds:
                    in_state = self.meet(self.block_out[p] for p in preds)
                else:
                    in_state = self.initial_state()
                out_state = self.transfer(label, in_state)
                if in_state != self.block_in[label] or out_state != self.block_out[label]:
                    self.block_in[label] = in_state
                    self.block_out[label] = out_state
                    changed = True


# -- reaching constants -------------------------------------------------------------

UNKNOWN = object()  # lattice top/bottom marker: "not a single constant"


@dataclass(frozen=True)
class ConstantMap:
    """An immutable mapping slot-name -> constant value (absent = unknown).

    ``top=True`` marks the optimistic "not yet visited" lattice element: it is
    ignored by the meet, which is what lets constants flow around loops whose
    body does not modify them (standard optimistic constant propagation).
    """

    entries: tuple[tuple[str, int], ...] = ()
    top: bool = False

    @staticmethod
    def from_dict(values: dict[str, int]) -> "ConstantMap":
        return ConstantMap(tuple(sorted(values.items())))

    def as_dict(self) -> dict[str, int]:
        return dict(self.entries)


class ReachingConstants(ForwardAnalysis[ConstantMap]):
    """Which scalar slots hold a known constant at each block entry.

    Pointer stores and calls conservatively invalidate address-taken and
    global variables respectively (the sound treatment our seeded alias bug
    deliberately breaks).
    """

    def __init__(
        self,
        function: IRFunction,
        globals_clobbered_by_calls: bool = True,
        respect_pointer_stores: bool = True,
    ) -> None:
        super().__init__(function)
        self.globals_clobbered_by_calls = globals_clobbered_by_calls
        # When False, stores through pointers invalidate nothing -- this is
        # the unsound behaviour behind the seeded "cprop-ignores-aliases"
        # wrong-code fault (mirroring GCC PR69951).
        self.respect_pointer_stores = respect_pointer_stores
        self.address_taken = address_taken_slots(function)

    def initial_state(self) -> ConstantMap:
        return ConstantMap(top=True)

    def boundary_state(self) -> ConstantMap:
        return ConstantMap()

    def meet(self, states: Iterable[ConstantMap]) -> ConstantMap:
        concrete = [state for state in states if not state.top]
        if not concrete:
            return ConstantMap(top=True)
        first = concrete[0].as_dict()
        for state in concrete[1:]:
            other = state.as_dict()
            first = {
                name: value
                for name, value in first.items()
                if name in other and other[name] == value
            }
        return ConstantMap.from_dict(first)

    def transfer(self, label: str, state: ConstantMap) -> ConstantMap:
        if state.top:
            return ConstantMap(top=True)
        values = state.as_dict()
        for instr in self.function.blocks[label].instructions:
            self.apply_instruction(instr, values)
        return ConstantMap.from_dict(values)

    def apply_instruction(self, instr: Instr, values: dict[str, int]) -> None:
        if isinstance(instr, Store):
            if isinstance(instr.src, Const):
                values[instr.var.name] = instr.src.value
            else:
                values.pop(instr.var.name, None)
            return
        if isinstance(instr, (StorePtr, StoreElem)):
            if not self.respect_pointer_stores:
                return
            # A store through a pointer may modify any address-taken slot or array.
            for name in list(values):
                if name in self.address_taken or self.function.slots.get(name, None) is None:
                    values.pop(name, None)
            for name in list(values):
                slot = self.function.slots.get(name)
                if slot is not None and slot.size > 1:
                    values.pop(name, None)
            return
        if isinstance(instr, Call):
            if self.globals_clobbered_by_calls:
                for name in list(values):
                    if name not in self.function.slots:
                        values.pop(name, None)
            # Calls may also write through any pointer they received.
            for name in list(values):
                if name in self.address_taken:
                    values.pop(name, None)
            return


# -- live variables -----------------------------------------------------------------


class LiveVariables:
    """Backward liveness of named slots (globals treated as always live out)."""

    def __init__(self, function: IRFunction) -> None:
        self.function = function
        self.cfg = CFG(function)
        self.live_in: dict[str, frozenset[str]] = {}
        self.live_out: dict[str, frozenset[str]] = {}
        self.address_taken = address_taken_slots(function)

    def run(self) -> None:
        labels = list(self.function.blocks)
        for label in labels:
            self.live_in[label] = frozenset()
            self.live_out[label] = frozenset()
        changed = True
        iterations = 0
        while changed:
            changed = False
            iterations += 1
            if iterations > 200:  # pragma: no cover - safety net
                break
            for label in reversed(labels):
                out = frozenset().union(
                    *[self.live_in.get(succ, frozenset()) for succ in self.cfg.successors.get(label, [])]
                ) if self.cfg.successors.get(label) else frozenset()
                use, define = self.block_use_def(label)
                new_in = use | (out - define)
                if new_in != self.live_in[label] or out != self.live_out[label]:
                    self.live_in[label] = new_in
                    self.live_out[label] = out
                    changed = True

    def block_use_def(self, label: str) -> tuple[frozenset[str], frozenset[str]]:
        use: set[str] = set()
        define: set[str] = set()
        for instr in self.function.blocks[label].instructions:
            for operand in instr.uses():
                if isinstance(operand, VarRef) and operand.name not in define:
                    use.add(operand.name)
            if isinstance(instr, Load) and instr.var.name not in define:
                use.add(instr.var.name)
            if isinstance(instr, (StorePtr, StoreElem)):
                # Conservatively treat indirect stores as uses of address-taken slots.
                use.update(self.address_taken - define)
            if isinstance(instr, Call):
                use.update(self.address_taken - define)
            if isinstance(instr, Store):
                define.add(instr.var.name)
        return frozenset(use), frozenset(define)

    def live_out_of(self, label: str) -> frozenset[str]:
        # Globals and address-taken slots are observable beyond the function.
        extra = {name for name in self.address_taken}
        extra.update(name for name in _used_globals(self.function))
        return self.live_out.get(label, frozenset()) | frozenset(extra)


# -- available copies -----------------------------------------------------------------


class AvailableCopies(ForwardAnalysis[frozenset]):
    """Pairs (dst, src) of scalar slots such that ``dst == src`` on every path."""

    def initial_state(self) -> frozenset:
        return frozenset({("__top__", "__top__")})

    def boundary_state(self) -> frozenset:
        return frozenset()

    def meet(self, states: Iterable[frozenset]) -> frozenset:
        result: frozenset | None = None
        for state in states:
            if ("__top__", "__top__") in state:
                continue
            result = state if result is None else (result & state)
        return result if result is not None else frozenset()

    def transfer(self, label: str, state: frozenset) -> frozenset:
        pairs = {pair for pair in state if pair != ("__top__", "__top__")}
        copies: dict[str, str] = dict(pairs)
        block = self.function.blocks[label]
        pending_load: dict[str, str] = {}  # temp name -> slot it was loaded from
        for instr in block.instructions:
            if isinstance(instr, Load):
                pending_load[instr.dest.name] = instr.var.name
            elif isinstance(instr, Store):
                source_slot = None
                from repro.compiler.ir import Temp as _Temp

                if isinstance(instr.src, _Temp):
                    source_slot = pending_load.get(instr.src.name)
                # Kill copies involving the overwritten slot.
                copies = {
                    dst: src
                    for dst, src in copies.items()
                    if dst != instr.var.name and src != instr.var.name
                }
                if source_slot is not None and source_slot != instr.var.name:
                    copies[instr.var.name] = source_slot
            elif isinstance(instr, (StorePtr, StoreElem, Call)):
                copies = {}
        return frozenset(copies.items())


# -- helpers --------------------------------------------------------------------------


def address_taken_slots(function: IRFunction) -> set[str]:
    """Names of slots whose address is taken (plus all array slots)."""
    from repro.compiler.ir import AddrOf

    taken: set[str] = set()
    for instr in function.instructions():
        if isinstance(instr, AddrOf):
            taken.add(instr.var.name)
    for name, slot in function.slots.items():
        if slot.size > 1:
            taken.add(name)
    return taken


def _used_globals(function: IRFunction) -> set[str]:
    used: set[str] = set()
    for instr in function.instructions():
        for operand in instr.uses():
            if isinstance(operand, VarRef) and operand.name not in function.slots:
                used.add(operand.name)
        if isinstance(instr, Load) and instr.var.name not in function.slots:
            used.add(instr.var.name)
        if isinstance(instr, Store) and instr.var.name not in function.slots:
            used.add(instr.var.name)
    return used


Hashable  # re-export silence


__all__ = [
    "AvailableCopies",
    "ConstantMap",
    "ForwardAnalysis",
    "LiveVariables",
    "ReachingConstants",
    "address_taken_slots",
]
