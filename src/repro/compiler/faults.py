"""Seeded compiler faults.

The paper's evaluation observes real latent bugs in GCC/Clang.  To reproduce
the *shape* of that evaluation offline, our compiler versions carry seeded
faults: precisely-triggered deviations inside specific passes (or the
frontend) that either raise an :class:`~repro.compiler.errors.InternalCompilerError`
(a crash bug), silently produce wrong IR (a wrong-code bug), or blow up
compile time (a performance bug).

Each fault carries the metadata Figure 10 aggregates: the affected component,
a priority, the optimization levels at which it can fire and the version
range in which it is present.  The catalogue itself lives in
:mod:`repro.compiler.versions`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.compiler.errors import InternalCompilerError


class FaultKind(enum.Enum):
    """The observable class of a seeded bug (Table 4's classification)."""

    CRASH = "crash"
    WRONG_CODE = "wrong code"
    PERFORMANCE = "performance"
    #: A pass leaves structurally broken IR behind without crashing or (yet)
    #: changing behaviour -- only the between-pass verifier
    #: (:mod:`repro.compiler.verify`) can observe it, under the campaign's
    #: ``verify_ir`` policy.
    ILL_FORMED_IR = "ill-formed ir"


@dataclass(frozen=True)
class Fault:
    """One seeded bug."""

    id: str
    component: str
    kind: FaultKind
    description: str
    priority: str = "P3"
    min_opt_level: int = 0
    introduced_in: str = ""
    fixed_in: str | None = None
    crash_signature: str = ""
    #: For :attr:`FaultKind.ILL_FORMED_IR` faults: the pipeline pass whose
    #: output the corruption appears in.  The driver's between-pass verifier
    #: uses it to mark the fault triggered when a violation surfaces after
    #: that pass (the fault itself stays silent so that campaigns with
    #: verification off remain byte-identical to the pre-verifier behaviour).
    pass_name: str = ""

    def active_at(self, opt_level: int) -> bool:
        return opt_level >= self.min_opt_level


@dataclass
class FaultSet:
    """The faults enabled for one compiler version at one optimization level."""

    faults: dict[str, Fault] = field(default_factory=dict)
    opt_level: int = 0
    triggered: list[str] = field(default_factory=list)

    @staticmethod
    def of(faults: list[Fault], opt_level: int = 0) -> "FaultSet":
        return FaultSet(faults={fault.id: fault for fault in faults}, opt_level=opt_level)

    def active(self, fault_id: str) -> bool:
        """Whether the fault is present and armed at the current opt level."""
        fault = self.faults.get(fault_id)
        return fault is not None and fault.active_at(self.opt_level)

    def get(self, fault_id: str) -> Fault | None:
        return self.faults.get(fault_id)

    def trigger(self, fault_id: str) -> Fault:
        """Mark a fault as triggered (for wrong-code/performance bugs) and return it."""
        fault = self.faults[fault_id]
        self.triggered.append(fault_id)
        return fault

    def crash(self, fault_id: str, detail: str = "") -> None:
        """Raise the crash corresponding to ``fault_id`` (must be active)."""
        fault = self.trigger(fault_id)
        message = fault.crash_signature or fault.description
        if detail:
            message = f"{message} ({detail})"
        raise InternalCompilerError(message, component=fault.component, fault_id=fault.id)


__all__ = ["Fault", "FaultKind", "FaultSet"]
