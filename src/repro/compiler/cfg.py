"""Control-flow graph utilities over the IR.

Provides predecessor/successor maps, reachability, dominator computation
(iterative dataflow formulation), natural-loop detection from back edges, and
reverse post-order -- the ingredients the optimization passes need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.ir import IRFunction


@dataclass
class Loop:
    """A natural loop: a header block plus the set of blocks in its body."""

    header: str
    body: set[str] = field(default_factory=set)

    def __contains__(self, label: str) -> bool:
        return label in self.body


class CFG:
    """Successor/predecessor structure of one IR function."""

    def __init__(self, function: IRFunction) -> None:
        self.function = function
        self.successors: dict[str, list[str]] = {}
        self.predecessors: dict[str, list[str]] = {label: [] for label in function.blocks}
        for label, block in function.blocks.items():
            succs = block.successors()
            self.successors[label] = succs
            for succ in succs:
                if succ in self.predecessors:
                    self.predecessors[succ].append(label)

    # -- reachability ------------------------------------------------------------

    def reachable(self) -> set[str]:
        """Blocks reachable from the entry block."""
        seen: set[str] = set()
        stack = [self.function.entry]
        while stack:
            label = stack.pop()
            if label in seen or label not in self.function.blocks:
                continue
            seen.add(label)
            stack.extend(self.successors.get(label, []))
        return seen

    def reverse_postorder(self) -> list[str]:
        """Blocks in reverse post-order (a good iteration order for forward analyses)."""
        visited: set[str] = set()
        order: list[str] = []

        def visit(label: str) -> None:
            if label in visited or label not in self.function.blocks:
                return
            visited.add(label)
            for succ in self.successors.get(label, []):
                visit(succ)
            order.append(label)

        visit(self.function.entry)
        return list(reversed(order))

    # -- dominators --------------------------------------------------------------

    def dominators(self) -> dict[str, set[str]]:
        """For each reachable block, the set of blocks dominating it."""
        reachable = self.reachable()
        all_blocks = set(reachable)
        dom: dict[str, set[str]] = {label: set(all_blocks) for label in reachable}
        entry = self.function.entry
        dom[entry] = {entry}
        changed = True
        while changed:
            changed = False
            for label in self.reverse_postorder():
                if label == entry:
                    continue
                preds = [p for p in self.predecessors.get(label, []) if p in reachable]
                if preds:
                    new = set(all_blocks)
                    for pred in preds:
                        new &= dom[pred]
                else:
                    new = set()
                new.add(label)
                if new != dom[label]:
                    dom[label] = new
                    changed = True
        return dom

    def immediate_dominators(self) -> dict[str, str | None]:
        """The immediate dominator of each reachable block (entry maps to None)."""
        dom = self.dominators()
        idom: dict[str, str | None] = {}
        for label, dominators in dom.items():
            if label == self.function.entry:
                idom[label] = None
                continue
            strict = dominators - {label}
            # The immediate dominator is the strict dominator dominated by all others.
            best = None
            for candidate in strict:
                if all(candidate in dom[other] or other == candidate for other in strict):
                    best = candidate
            idom[label] = best
        return idom

    # -- loops --------------------------------------------------------------------

    def back_edges(self) -> list[tuple[str, str]]:
        """Edges (tail, head) where head dominates tail."""
        dom = self.dominators()
        edges: list[tuple[str, str]] = []
        for label in self.reachable():
            for succ in self.successors.get(label, []):
                if succ in dom.get(label, set()):
                    edges.append((label, succ))
        return edges

    def natural_loops(self) -> list[Loop]:
        """Natural loops, one per back edge, merged when they share a header."""
        loops: dict[str, Loop] = {}
        for tail, head in self.back_edges():
            loop = loops.setdefault(head, Loop(header=head, body={head}))
            # Walk predecessors from the tail until the header.
            stack = [tail]
            while stack:
                label = stack.pop()
                if label in loop.body:
                    continue
                loop.body.add(label)
                stack.extend(self.predecessors.get(label, []))
        return list(loops.values())

    def is_reducible(self) -> bool:
        """A graph is reducible when removing back edges leaves it acyclic."""
        back = set(self.back_edges())
        reachable = self.reachable()
        # Kahn-style cycle check on the forward edges only.
        indegree: dict[str, int] = {label: 0 for label in reachable}
        for label in reachable:
            for succ in self.successors.get(label, []):
                if succ in reachable and (label, succ) not in back:
                    indegree[succ] += 1
        queue = [label for label, degree in indegree.items() if degree == 0]
        seen = 0
        while queue:
            label = queue.pop()
            seen += 1
            for succ in self.successors.get(label, []):
                if succ in reachable and (label, succ) not in back:
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        queue.append(succ)
        return seen == len(reachable)


__all__ = ["CFG", "Loop"]
