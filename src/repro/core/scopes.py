"""Scope trees and variable declarations.

The paper models a program's holes as being fillable with the variables that
are *visible* at the hole's lexical scope (Section 3.2.2).  A scope tree
captures the nesting of file / function / block scopes; each scope declares a
set of typed variables.  The compact alpha-renaming only permutes variables
declared in the same scope (and of the same type), so the (scope, type) pair
acts as the "variable class" that drives the combinatorial structure of SPE.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class ScopeKind(enum.Enum):
    """The syntactic construct a scope belongs to."""

    FILE = "file"
    FUNCTION = "function"
    BLOCK = "block"


@dataclass(frozen=True)
class Variable:
    """A declared variable: a name, a type and the scope that declares it."""

    name: str
    type: str = "int"
    scope_id: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.type} {self.name}@scope{self.scope_id}"


@dataclass
class Scope:
    """One lexical scope in the scope tree."""

    id: int
    parent_id: int | None
    kind: ScopeKind = ScopeKind.BLOCK
    name: str = ""
    variables: list[Variable] = field(default_factory=list)

    def declared_names(self) -> list[str]:
        """Names declared directly in this scope, in declaration order."""
        return [variable.name for variable in self.variables]

    def declared_of_type(self, type_name: str) -> list[Variable]:
        """Variables of the given type declared directly in this scope."""
        return [variable for variable in self.variables if variable.type == type_name]


class ScopeTree:
    """A rooted tree of scopes with typed variable declarations.

    The root scope (id 0) is created automatically and represents the file
    scope.  Scopes are identified by dense integer ids, which keeps skeleton
    serialisation and the enumeration problems simple.
    """

    def __init__(self, root_kind: ScopeKind = ScopeKind.FILE, root_name: str = "<file>") -> None:
        self._scopes: dict[int, Scope] = {}
        self._children: dict[int, list[int]] = {}
        root = Scope(id=0, parent_id=None, kind=root_kind, name=root_name)
        self._scopes[0] = root
        self._children[0] = []

    # -- construction -----------------------------------------------------

    def add_scope(self, parent_id: int, kind: ScopeKind = ScopeKind.BLOCK, name: str = "") -> int:
        """Create a new scope under ``parent_id`` and return its id."""
        if parent_id not in self._scopes:
            raise KeyError(f"unknown parent scope {parent_id}")
        scope_id = len(self._scopes)
        self._scopes[scope_id] = Scope(id=scope_id, parent_id=parent_id, kind=kind, name=name)
        self._children[scope_id] = []
        self._children[parent_id].append(scope_id)
        return scope_id

    def declare(self, scope_id: int, name: str, type: str = "int") -> Variable:
        """Declare a variable in ``scope_id`` and return it.

        Redeclaring the same name in the same scope raises ``ValueError``
        (mirroring a C frontend's duplicate-declaration diagnostic); the same
        name in a nested scope shadows the outer one, as in C.
        """
        scope = self.scope(scope_id)
        if name in scope.declared_names():
            raise ValueError(f"variable {name!r} already declared in scope {scope_id}")
        variable = Variable(name=name, type=type, scope_id=scope_id)
        scope.variables.append(variable)
        return variable

    # -- queries ----------------------------------------------------------

    @property
    def root_id(self) -> int:
        return 0

    def scope(self, scope_id: int) -> Scope:
        try:
            return self._scopes[scope_id]
        except KeyError:
            raise KeyError(f"unknown scope {scope_id}") from None

    def scopes(self) -> Iterator[Scope]:
        """Iterate over all scopes in creation order."""
        return iter(self._scopes.values())

    def children(self, scope_id: int) -> list[int]:
        return list(self._children[scope_id])

    def __len__(self) -> int:
        return len(self._scopes)

    def __contains__(self, scope_id: int) -> bool:
        return scope_id in self._scopes

    def ancestors(self, scope_id: int, include_self: bool = True) -> list[int]:
        """Return scope ids from ``scope_id`` up to the root (innermost first)."""
        chain: list[int] = []
        current: int | None = scope_id
        if not include_self:
            current = self.scope(scope_id).parent_id
        while current is not None:
            chain.append(current)
            current = self.scope(current).parent_id
        return chain

    def is_ancestor(self, ancestor_id: int, scope_id: int) -> bool:
        """Return True if ``ancestor_id`` encloses (or equals) ``scope_id``."""
        return ancestor_id in self.ancestors(scope_id)

    def depth(self, scope_id: int) -> int:
        """Return the depth of a scope (root has depth 0)."""
        return len(self.ancestors(scope_id)) - 1

    def visible_variables(self, scope_id: int, type: str | None = None) -> list[Variable]:
        """All variables visible at ``scope_id`` (inner declarations first).

        Shadowing is resolved: if an inner scope redeclares a name, the outer
        variable of the same name is not visible.
        """
        seen: set[str] = set()
        visible: list[Variable] = []
        for ancestor in self.ancestors(scope_id):
            for variable in self.scope(ancestor).variables:
                if variable.name in seen:
                    continue
                seen.add(variable.name)
                if type is None or variable.type == type:
                    visible.append(variable)
        return visible

    def function_scopes(self) -> list[Scope]:
        """All scopes of kind FUNCTION, in creation order."""
        return [scope for scope in self.scopes() if scope.kind == ScopeKind.FUNCTION]

    def enclosing_function(self, scope_id: int) -> Scope | None:
        """Return the nearest enclosing FUNCTION scope, or None at file level."""
        for ancestor in self.ancestors(scope_id):
            scope = self.scope(ancestor)
            if scope.kind == ScopeKind.FUNCTION:
                return scope
        return None

    def all_variables(self) -> list[Variable]:
        """Every declared variable in the tree, in scope-creation order."""
        return [variable for scope in self.scopes() for variable in scope.variables]

    def pretty(self) -> str:
        """Render the tree as an indented listing (useful in error messages)."""
        lines: list[str] = []

        def render(scope_id: int, indent: int) -> None:
            scope = self.scope(scope_id)
            label = scope.name or scope.kind.value
            declared = ", ".join(f"{v.type} {v.name}" for v in scope.variables) or "-"
            lines.append("  " * indent + f"[{scope.id}] {label}: {declared}")
            for child in self._children[scope_id]:
                render(child, indent + 1)

        render(self.root_id, 0)
        return "\n".join(lines)
