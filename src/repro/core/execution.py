"""Language-neutral execution results.

Every frontend's reference interpreter and every simulated compiler backend
reports behaviour through the same two types, so the differential oracle and
the campaign harness can compare "what the reference says" against "what the
produced code does" without knowing which language produced them:

* :class:`ExecutionStatus` classifies one run (``OK``, undefined behaviour,
  timeout, runtime error);
* :class:`ExecutionResult` carries the observable behaviour compilers must
  agree on for well-defined programs (exit code + stdout).

Frontends map their own notions onto these: mini-C reports detected
undefined behaviour as ``UNDEFINED``; WHILE, which has no UB, reports
division by zero as ``ERROR`` and exhausted fuel as ``TIMEOUT``.  Any status
other than ``OK`` makes the oracle skip the wrong-code comparison for that
variant (crash bugs are still reported), exactly as in the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ExecutionStatus(enum.Enum):
    """Outcome classification of one interpreted execution."""

    OK = "ok"
    UNDEFINED = "undefined-behaviour"
    TIMEOUT = "timeout"
    ERROR = "runtime-error"


@dataclass(frozen=True)
class ExecutionResult:
    """Observable behaviour of one program execution."""

    status: ExecutionStatus
    exit_code: int | None = None
    stdout: str = ""
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status is ExecutionStatus.OK

    def observable(self) -> tuple[int | None, str]:
        """The pair compilers must agree on for UB-free programs."""
        return (self.exit_code, self.stdout)


__all__ = ["ExecutionResult", "ExecutionStatus"]
