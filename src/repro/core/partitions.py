"""Set-partition enumeration and counting.

The paper (Section 4.1) reduces unscoped skeletal program enumeration to the
classical problem of partitioning a set of ``n`` labelled elements (the holes)
into at most ``k`` unlabelled blocks (the variables).  The canonical encoding
of a partition is a *restricted growth string* ``a_1 a_2 ... a_n`` with

    a_1 = 0   and   a_{i+1} <= 1 + max(a_1, ..., a_i)

Every restricted growth string corresponds to exactly one set partition and
vice versa, which is what makes the encoding the natural canonical form for
non-alpha-equivalent hole fillings.

This module provides:

* :func:`stirling2` / :func:`bell_number` -- exact counting,
* :func:`restricted_growth_strings` -- lexicographic enumeration of all
  partitions with at most ``k`` blocks,
* :func:`partitions_exact` / :func:`partitions_at_most` -- enumeration as
  explicit block structures (the ``PARTITIONS'`` and ``PARTITIONS`` routines
  of the paper),
* :func:`rgs_to_blocks`, :func:`blocks_to_rgs`, :func:`is_restricted_growth_string`
  -- conversions and validation helpers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence


@lru_cache(maxsize=None)
def stirling2(n: int, k: int) -> int:
    """Return the Stirling number of the second kind ``S(n, k)``.

    ``S(n, k)`` counts the ways to partition a set of ``n`` labelled elements
    into exactly ``k`` non-empty unlabelled blocks.  Follows the convention
    ``S(0, 0) = 1`` and ``S(n, 0) = 0`` for ``n > 0``.

    Raises:
        ValueError: if ``n`` or ``k`` is negative.
    """
    if n < 0 or k < 0:
        raise ValueError(f"stirling2 requires non-negative arguments, got ({n}, {k})")
    if n == 0 and k == 0:
        return 1
    if n == 0 or k == 0:
        return 0
    if k > n:
        return 0
    if k == 1 or k == n:
        return 1
    return k * stirling2(n - 1, k) + stirling2(n - 1, k - 1)


@lru_cache(maxsize=None)
def bell_number(n: int) -> int:
    """Return the Bell number ``B(n)``: the number of partitions of an n-set."""
    if n < 0:
        raise ValueError(f"bell_number requires n >= 0, got {n}")
    return sum(stirling2(n, k) for k in range(n + 1))


def partitions_at_most_count(n: int, k: int) -> int:
    """Number of partitions of an ``n``-set into at most ``k`` blocks.

    This is the paper's quantity ``S = sum_{i=1..k} S(n, i)`` (Equation 1),
    with the paper's convention that for ``k > n`` the count saturates at the
    Bell number ``B(n)``.
    """
    if n < 0 or k < 0:
        raise ValueError(f"requires non-negative arguments, got ({n}, {k})")
    if n == 0:
        return 1
    k = min(k, n)
    return sum(stirling2(n, i) for i in range(1, k + 1))


def is_restricted_growth_string(seq: Sequence[int]) -> bool:
    """Return True iff ``seq`` is a valid restricted growth string."""
    if len(seq) == 0:
        return True
    if seq[0] != 0:
        return False
    maximum = 0
    for value in seq[1:]:
        if value < 0 or value > maximum + 1:
            return False
        maximum = max(maximum, value)
    return True


def restricted_growth_strings(n: int, max_blocks: int | None = None) -> Iterator[tuple[int, ...]]:
    """Yield all restricted growth strings of length ``n`` in lexicographic order.

    Args:
        n: number of elements being partitioned.
        max_blocks: if given, only partitions with at most this many blocks
            are produced (i.e. string values stay below ``max_blocks``).

    Yields:
        Tuples of ints of length ``n``; each tuple encodes one set partition.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if max_blocks is not None and max_blocks <= 0:
        if n == 0:
            yield ()
        return
    if n == 0:
        yield ()
        return

    limit = n if max_blocks is None else min(max_blocks, n)
    string = [0] * n

    def max_prefix(index: int) -> int:
        return max(string[:index]) if index > 0 else -1

    while True:
        yield tuple(string)
        # Find the rightmost position that can be incremented.
        position = n - 1
        while position > 0:
            cap = min(max_prefix(position) + 1, limit - 1)
            if string[position] < cap:
                break
            position -= 1
        if position == 0:
            return
        string[position] += 1
        for i in range(position + 1, n):
            string[i] = 0


def rgs_to_blocks(rgs: Sequence[int]) -> list[list[int]]:
    """Convert a restricted growth string into explicit blocks of element indices.

    Element indices are 0-based positions in the string.  Blocks are ordered by
    their smallest element, which is exactly the order induced by the string.
    """
    if not is_restricted_growth_string(rgs):
        raise ValueError(f"not a restricted growth string: {rgs!r}")
    blocks: list[list[int]] = []
    for index, block_id in enumerate(rgs):
        while block_id >= len(blocks):
            blocks.append([])
        blocks[block_id].append(index)
    return blocks


def blocks_to_rgs(blocks: Sequence[Sequence[int]], n: int | None = None) -> tuple[int, ...]:
    """Convert explicit blocks (of 0-based element indices) into the canonical RGS.

    The block labels are irrelevant; the canonical string is obtained by
    numbering blocks in order of their smallest element.

    Args:
        blocks: disjoint sequences of indices covering ``0..n-1``.
        n: total number of elements; inferred from the blocks if omitted.
    """
    flattened = [index for block in blocks for index in block]
    if n is None:
        n = len(flattened)
    if sorted(flattened) != list(range(n)):
        raise ValueError("blocks must be disjoint and cover 0..n-1 exactly once")
    assignment = [0] * n
    ordered = sorted((min(block), block) for block in blocks if block)
    for block_id, (_, block) in enumerate(ordered):
        for index in block:
            assignment[index] = block_id
    return tuple(assignment)


def partitions_exact(elements: Sequence, k: int) -> Iterator[list[list]]:
    """Enumerate partitions of ``elements`` into exactly ``k`` non-empty blocks.

    This is the paper's ``PARTITIONS'(Q, k)`` routine; it produces
    ``S(|Q|, k)`` partitions.  Blocks are lists of the original elements, in
    canonical order (each block ordered by first appearance, blocks ordered by
    their first element).
    """
    items = list(elements)
    n = len(items)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        if n == 0:
            yield []
        return
    if k > n:
        return
    for rgs in restricted_growth_strings(n, max_blocks=k):
        if max(rgs) + 1 != k:
            continue
        blocks = rgs_to_blocks(rgs)
        yield [[items[index] for index in block] for block in blocks]


def partitions_at_most(elements: Sequence, k: int) -> Iterator[list[list]]:
    """Enumerate partitions of ``elements`` into at most ``k`` non-empty blocks.

    This is the paper's ``PARTITIONS(Q, k)`` routine; it produces
    ``sum_{i=1..k} S(|Q|, i)`` partitions.
    """
    items = list(elements)
    n = len(items)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if n == 0:
        yield []
        return
    if k == 0:
        return
    for rgs in restricted_growth_strings(n, max_blocks=min(k, n)):
        blocks = rgs_to_blocks(rgs)
        yield [[items[index] for index in block] for block in blocks]


def partition_count(n: int, k: int, *, exact: bool) -> int:
    """Count partitions of an ``n``-set into ``k`` blocks (exactly or at most)."""
    if exact:
        return stirling2(n, k)
    return partitions_at_most_count(n, k)
