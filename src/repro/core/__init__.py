"""Core SPE machinery: combinatorics, skeleton model, alpha-equivalence, enumeration.

This package implements the paper's primary contribution (Sections 3 and 4):

* :mod:`repro.core.partitions` -- set-partition enumeration via restricted
  growth strings, Stirling and Bell numbers.
* :mod:`repro.core.combinations` -- k-subset enumeration (the ``COMBINATIONS``
  routine used by ``PartitionScope``).
* :mod:`repro.core.counting` -- closed-form solution-set sizes for the naive
  approach, the unscoped SPE formulation, and the scoped formulation.
* :mod:`repro.core.holes` -- holes, skeletons and characteristic vectors.
* :mod:`repro.core.scopes` -- scope trees and hole variable sets.
* :mod:`repro.core.alpha` -- alpha-renamings and program canonicalisation.
* :mod:`repro.core.spe` -- Algorithm 1 and the ``PartitionScope`` procedure.
* :mod:`repro.core.ranking` -- rank/unrank random access into the canonical
  solution set (the basis of sharded and sampled enumeration).
* :mod:`repro.core.naive` -- the naive (Cartesian product) baseline.
"""

from repro.core.alpha import (
    AlphaRenaming,
    alpha_equivalent,
    canonical_filling,
    canonicalize_assignment,
)
from repro.core.combinations import combinations, num_combinations
from repro.core.counting import (
    naive_count,
    scoped_spe_count,
    skeleton_spe_count,
    spe_count,
    stirling_estimate,
)
from repro.core.holes import CharacteristicVector, Hole, Skeleton
from repro.core.naive import NaiveEnumerator, NaiveSkeletonEnumerator
from repro.core.partitions import (
    bell_number,
    partitions_at_most,
    partitions_exact,
    restricted_growth_strings,
    stirling2,
)
from repro.core.problem import (
    EnumerationProblem,
    ProblemHole,
    VariableClass,
    flat_problem,
    problems_from_skeleton,
    unscoped_problem,
)
from repro.core.ranking import (
    ProblemRanking,
    mixed_radix_digits,
    mixed_radix_rank,
    shard_bounds,
)
from repro.core.scopes import Scope, ScopeKind, ScopeTree, Variable
from repro.core.spe import (
    EnumerationBudget,
    Granularity,
    SkeletonEnumerator,
    SPEEnumerator,
    partition_scope_paper,
)

__all__ = [
    "AlphaRenaming",
    "CharacteristicVector",
    "EnumerationBudget",
    "EnumerationProblem",
    "Granularity",
    "Hole",
    "NaiveEnumerator",
    "NaiveSkeletonEnumerator",
    "ProblemHole",
    "ProblemRanking",
    "SPEEnumerator",
    "Scope",
    "ScopeKind",
    "ScopeTree",
    "Skeleton",
    "SkeletonEnumerator",
    "Variable",
    "VariableClass",
    "alpha_equivalent",
    "bell_number",
    "canonical_filling",
    "canonicalize_assignment",
    "combinations",
    "flat_problem",
    "mixed_radix_digits",
    "mixed_radix_rank",
    "naive_count",
    "num_combinations",
    "partition_scope_paper",
    "partitions_at_most",
    "partitions_exact",
    "problems_from_skeleton",
    "restricted_growth_strings",
    "scoped_spe_count",
    "shard_bounds",
    "skeleton_spe_count",
    "spe_count",
    "stirling2",
    "stirling_estimate",
    "unscoped_problem",
]
