"""Ranking and unranking of canonical SPE fillings (random access).

:class:`repro.core.spe.SPEEnumerator` walks the canonical solution set with a
recursive generator: reaching variant ``i`` requires producing its ``i``
predecessors.  This module gives the same solution set *random access* by
running a dynamic program over the counting recurrence of
:func:`repro.core.counting.scoped_spe_count`:

* the enumeration state after filling a hole prefix is fully described by the
  number of blocks already opened in each variable class (the per-class
  restricted-growth frontier);
* ``completions(position, state)`` -- the number of canonical suffixes from
  that state -- satisfies::

      completions(n, s)        = 1
      completions(p, s)        = sum over classes c available to hole p of
                                   used_c * completions(p+1, s)
                                 + [used_c < |c|] * completions(p+1, s + e_c)

  because a hole may reuse any of the ``used_c`` open blocks (state
  unchanged) or open a new block (state bumped), exactly mirroring
  :meth:`SPEEnumerator.enumerate`'s choice loop.

With the memoised table, :meth:`ProblemRanking.unrank` reaches any of the
``N`` canonical variants in ``O(holes * classes)`` arithmetic operations
without enumerating predecessors, :meth:`ProblemRanking.rank` inverts it, and
:meth:`ProblemRanking.enumerate` streams an arbitrary ``[start, stop)`` slice
in enumeration order.  That is what makes sharded and sampled campaigns
possible: disjoint index ranges of one skeleton can be handed to different
worker processes and their union provably equals the serial enumeration.
"""

from __future__ import annotations

import random
import sys
from typing import Iterator, Sequence

from repro.core.holes import CharacteristicVector
from repro.core.problem import EnumerationProblem


class ProblemRanking:
    """Random access into the canonical solution set of one problem.

    The ordering is exactly :meth:`SPEEnumerator.enumerate`'s order: holes are
    filled left to right; at each hole the candidate classes are tried
    innermost first, and within a class the open blocks are tried in opening
    order before a new block is opened.
    """

    def __init__(self, problem: EnumerationProblem) -> None:
        self.problem = problem
        self._holes = tuple(problem.holes)
        self._class_position = {cls.id: i for i, cls in enumerate(problem.classes)}
        self._sizes = tuple(cls.size for cls in problem.classes)
        self._variables = {cls.id: cls.variables for cls in problem.classes}
        self._block_index = {
            cls.id: {name: block for block, name in enumerate(cls.variables)}
            for cls in problem.classes
        }
        self._memo: dict[tuple[int, tuple[int, ...]], int] = {}

    # -- counting ----------------------------------------------------------

    def count(self) -> int:
        """Exact size of the canonical solution set (agrees with scoped_spe_count)."""
        return self._completions(0, (0,) * len(self._sizes))

    def _completions(self, position: int, state: tuple[int, ...]) -> int:
        """Number of canonical suffixes from ``position`` given per-class open blocks."""
        if position == len(self._holes):
            return 1
        key = (position, state)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        total = 0
        for class_id in self._holes[position].class_ids:
            ci = self._class_position[class_id]
            used = state[ci]
            if used:
                total += used * self._completions(position + 1, state)
            if used < self._sizes[ci]:
                total += self._completions(position + 1, self._bump(state, ci))
        self._memo[key] = total
        return total

    @staticmethod
    def _bump(state: tuple[int, ...], ci: int) -> tuple[int, ...]:
        return state[:ci] + (state[ci] + 1,) + state[ci + 1 :]

    # -- rank / unrank -----------------------------------------------------

    def unrank(self, index: int) -> CharacteristicVector:
        """Return canonical vector number ``index`` (0-based, enumeration order)."""
        total = self.count()
        if not 0 <= index < total:
            raise IndexError(f"index {index} out of range for {total} canonical variants")
        state = (0,) * len(self._sizes)
        names: list[str] = []
        remaining = index
        for position, hole in enumerate(self._holes):
            chosen: tuple[int, int, tuple[int, ...]] | None = None
            for class_id in hole.class_ids:
                ci = self._class_position[class_id]
                used = state[ci]
                if used:
                    same = self._completions(position + 1, state)
                    if remaining < used * same:
                        block = remaining // same
                        remaining -= block * same
                        chosen = (class_id, block, state)
                        break
                    remaining -= used * same
                if used < self._sizes[ci]:
                    bumped = self._bump(state, ci)
                    fresh = self._completions(position + 1, bumped)
                    if remaining < fresh:
                        chosen = (class_id, used, bumped)
                        break
                    remaining -= fresh
            if chosen is None:  # pragma: no cover - excluded by the bounds check
                raise AssertionError("unrank descended past the counted subtrees")
            class_id, block, state = chosen
            names.append(self._variables[class_id][block])
        return CharacteristicVector(names)

    def rank(self, vector: Sequence[str]) -> int:
        """Position of a *canonical* vector in enumeration order (inverse of unrank).

        Raises:
            ValueError: if the vector has the wrong length, uses a variable
                not available at some hole, or is not the canonical
                representative of its class (blocks not in first-use order).
        """
        if len(vector) != len(self._holes):
            raise ValueError(
                f"vector length {len(vector)} does not match hole count {len(self._holes)}"
            )
        state = (0,) * len(self._sizes)
        rank = 0
        for position, (hole, name) in enumerate(zip(self._holes, vector)):
            chosen_class = None
            for class_id in hole.class_ids:
                block = self._block_index[class_id].get(name)
                if block is not None:
                    chosen_class = class_id
                    break
            if chosen_class is None:
                raise ValueError(f"variable {name!r} is not available at hole {position}")
            ci = self._class_position[chosen_class]
            used = state[ci]
            if block > used:
                raise ValueError(
                    f"vector is not canonical: {name!r} opens block {block} at hole "
                    f"{position} but only {used} blocks of its class are in use"
                )
            # Subtrees of classes tried before the chosen one.
            for class_id in hole.class_ids:
                if class_id == chosen_class:
                    break
                oi = self._class_position[class_id]
                other_used = state[oi]
                if other_used:
                    rank += other_used * self._completions(position + 1, state)
                if other_used < self._sizes[oi]:
                    rank += self._completions(position + 1, self._bump(state, oi))
            # Earlier blocks of the chosen class (each leaves the state unchanged).
            if block:
                rank += block * self._completions(position + 1, state)
            if block == used:
                state = self._bump(state, ci)
        return rank

    # -- slicing and sampling ----------------------------------------------

    def enumerate(self, start: int = 0, stop: int | None = None) -> Iterator[CharacteristicVector]:
        """Stream the ``[start, stop)`` slice of the canonical enumeration.

        The first vector is located by a count-guided descent (no predecessor
        is materialised); from there the enumeration proceeds in order, so a
        full slice costs the same as the plain recursive enumeration plus
        ``O(holes)`` for the initial seek.
        """
        total = self.count()
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        stop = total if stop is None else min(stop, total)
        if start >= stop:
            return
        needed = stop - start
        num_holes = len(self._holes)
        names: list[str] = [""] * num_holes

        def walk(position: int, state: tuple[int, ...], skip: int) -> Iterator[CharacteristicVector]:
            nonlocal needed
            if position == num_holes:
                needed -= 1
                yield CharacteristicVector(names)
                return
            hole = self._holes[position]
            for class_id in hole.class_ids:
                ci = self._class_position[class_id]
                used = state[ci]
                variables = self._variables[class_id]
                if used:
                    same = self._completions(position + 1, state)
                    if skip >= used * same:
                        skip -= used * same
                    else:
                        inner_skip = skip % same
                        for block in range(skip // same, used):
                            names[position] = variables[block]
                            yield from walk(position + 1, state, inner_skip)
                            inner_skip = 0
                            if needed <= 0:
                                return
                        skip = 0
                if used < self._sizes[ci]:
                    bumped = self._bump(state, ci)
                    fresh = self._completions(position + 1, bumped)
                    if skip >= fresh:
                        skip -= fresh
                    else:
                        names[position] = variables[used]
                        yield from walk(position + 1, bumped, skip)
                        skip = 0
                        if needed <= 0:
                            return

        yield from walk(0, (0,) * len(self._sizes), start)

    def sample_indices(self, k: int, seed: int | str | None = None) -> list[int]:
        """``min(k, count)`` distinct uniform indices into the canonical set, sorted."""
        return sample_distinct_indices(random.Random(seed), self.count(), k)

    def sample(self, k: int, seed: int | str | None = None) -> list[tuple[int, CharacteristicVector]]:
        """Uniform sample without replacement: ``(index, vector)`` pairs, by index."""
        return [(index, self.unrank(index)) for index in self.sample_indices(k, seed=seed)]


def sample_distinct_indices(rng: random.Random, total: int, k: int) -> list[int]:
    """``min(k, total)`` distinct uniform indices from ``range(total)``, sorted.

    Canonical solution sets routinely exceed ``sys.maxsize``, where
    ``random.sample(range(total), k)`` fails (it needs ``len(range(total))``
    to fit a C ssize_t), so large domains are sampled by rejection --
    practical sample sizes are vanishingly small next to such domains, so
    collisions are negligible.
    """
    if k < 0:
        raise ValueError(f"sample size must be non-negative, got {k}")
    k = min(k, total)
    if k == total:
        return list(range(total))
    if total <= sys.maxsize:
        return sorted(rng.sample(range(total), k))
    chosen: set[int] = set()
    while len(chosen) < k:
        chosen.add(rng.randrange(total))
    return sorted(chosen)


# -- mixed-radix lifting (whole skeletons) ------------------------------------


def mixed_radix_digits(index: int, radices: Sequence[int]) -> list[int]:
    """Decompose ``index`` into mixed-radix digits, last digit varying fastest.

    This matches ``itertools.product`` order over per-problem solution sets,
    which is the order :meth:`SkeletonEnumerator.vectors` has always used.
    """
    if index < 0:
        raise IndexError(f"index must be non-negative, got {index}")
    digits = [0] * len(radices)
    for position in range(len(radices) - 1, -1, -1):
        radix = radices[position]
        if radix <= 0:
            raise ValueError(f"radix at position {position} must be positive, got {radix}")
        digits[position] = index % radix
        index //= radix
    if index:
        raise IndexError("index out of range for the given radices")
    return digits


def mixed_radix_rank(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Inverse of :func:`mixed_radix_digits`."""
    if len(digits) != len(radices):
        raise ValueError("digits and radices must have the same length")
    rank = 0
    for digit, radix in zip(digits, radices):
        if not 0 <= digit < radix:
            raise ValueError(f"digit {digit} out of range for radix {radix}")
        rank = rank * radix + digit
    return rank


def shard_bounds(start: int, stop: int, shard_index: int, shard_count: int) -> tuple[int, int]:
    """Contiguous ``[lo, hi)`` bounds of shard ``shard_index`` of ``[start, stop)``.

    The ``shard_count`` shards are disjoint, cover the range exactly, and
    differ in size by at most one element.
    """
    if shard_count <= 0:
        raise ValueError(f"shard_count must be positive, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(f"shard_index {shard_index} out of range for {shard_count} shards")
    span = max(0, stop - start)
    lo = start + (span * shard_index) // shard_count
    hi = start + (span * (shard_index + 1)) // shard_count
    return lo, hi


__all__ = [
    "ProblemRanking",
    "mixed_radix_digits",
    "mixed_radix_rank",
    "sample_distinct_indices",
    "shard_bounds",
]
