"""The abstract enumeration problem derived from a skeleton.

``PartitionScope`` and the counting formulas do not care about ASTs.  They
operate on a flattened structure:

* a list of *variable classes* -- one per (scope, type) pair that declares at
  least one variable.  The compact alpha-renaming permutes variables only
  within a class, so the class is the unit of symmetry;
* a list of *problem holes* -- each hole lists the classes it may draw a
  variable from, ordered from the innermost scope outwards.

:class:`EnumerationProblem` is that structure, plus helpers to translate a
class-level solution back into a characteristic vector over concrete variable
names.  :func:`problems_from_skeleton` builds one problem per function
(intra-procedural granularity, the paper's default) or a single whole-program
problem (inter-procedural granularity).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.holes import Hole, Skeleton
from repro.core.scopes import ScopeKind


class Granularity(enum.Enum):
    """Enumeration granularity (paper Section 4.3)."""

    INTRA_PROCEDURAL = "intra"
    INTER_PROCEDURAL = "inter"


@dataclass(frozen=True)
class VariableClass:
    """A set of mutually interchangeable variables (same scope, same type)."""

    id: int
    scope_id: int
    type: str
    variables: tuple[str, ...]

    @property
    def size(self) -> int:
        return len(self.variables)


@dataclass(frozen=True)
class ProblemHole:
    """One hole, reduced to the classes it may draw its variable from.

    ``class_ids`` is ordered innermost-scope first, so ``class_ids[-1]`` is the
    outermost (most global) class the hole can use.
    """

    index: int
    class_ids: tuple[int, ...]
    skeleton_index: int = -1


@dataclass
class EnumerationProblem:
    """A scoped set-partition problem (paper Section 4.2.1).

    Attributes:
        name: human-readable label (skeleton name or function name).
        classes: the variable classes, indexed by ``VariableClass.id``.
        holes: the problem holes in enumeration order.
        skeleton_hole_indices: for each problem hole, the index of the
            corresponding hole in the originating skeleton (identity when the
            problem was built directly).
    """

    name: str
    classes: list[VariableClass]
    holes: list[ProblemHole]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        by_id = {cls.id for cls in self.classes}
        for hole in self.holes:
            if not hole.class_ids:
                raise ValueError(f"hole {hole.index} has no candidate variable class")
            for class_id in hole.class_ids:
                if class_id not in by_id:
                    raise ValueError(f"hole {hole.index} references unknown class {class_id}")

    # -- shape helpers -----------------------------------------------------

    @property
    def num_holes(self) -> int:
        return len(self.holes)

    def class_by_id(self, class_id: int) -> VariableClass:
        for cls in self.classes:
            if cls.id == class_id:
                return cls
        raise KeyError(f"unknown class {class_id}")

    def candidate_names(self, hole: ProblemHole) -> list[str]:
        """All concrete variable names the hole may use (innermost first)."""
        names: list[str] = []
        for class_id in hole.class_ids:
            names.extend(self.class_by_id(class_id).variables)
        return names

    def naive_size(self) -> int:
        """The naive search-space size ``prod_i |v_i|`` for this problem."""
        size = 1
        for hole in self.holes:
            size *= len(self.candidate_names(hole))
        return size

    def is_unscoped(self) -> bool:
        """True when every hole sees exactly the same single class."""
        if not self.holes:
            return True
        first = self.holes[0].class_ids
        return len(first) == 1 and all(hole.class_ids == first for hole in self.holes)

    def skeleton_indices(self) -> list[int]:
        return [
            hole.skeleton_index if hole.skeleton_index >= 0 else hole.index
            for hole in self.holes
        ]


def _class_key(scope_id: int, type_name: str) -> tuple[int, str]:
    return (scope_id, type_name)


def problems_from_skeleton(
    skeleton: Skeleton,
    granularity: Granularity = Granularity.INTRA_PROCEDURAL,
) -> list[EnumerationProblem]:
    """Build enumeration problems from a skeleton.

    With intra-procedural granularity one problem is produced per function
    (file-scope holes, if any, form their own problem named ``<file>``); the
    global SPE solution is the Cartesian product of the per-problem solutions.
    With inter-procedural granularity a single problem covers the whole
    skeleton.
    """
    if granularity is Granularity.INTER_PROCEDURAL:
        problem = _build_problem(skeleton, skeleton.holes, skeleton.name)
        return [problem] if problem.holes else []

    problems: list[EnumerationProblem] = []
    groups: dict[str | None, list[Hole]] = {}
    for hole in skeleton.holes:
        groups.setdefault(hole.function, []).append(hole)
    for function, holes in groups.items():
        label = function if function is not None else "<file>"
        problem = _build_problem(skeleton, holes, f"{skeleton.name}::{label}")
        if problem.holes:
            problems.append(problem)
    return problems


def _build_problem(skeleton: Skeleton, holes: list[Hole], name: str) -> EnumerationProblem:
    """Translate skeleton holes into an :class:`EnumerationProblem`.

    Variable classes are (scope, type) pairs.  Scope chains are collapsed so
    that classes declaring no variable of the relevant type do not appear.
    """
    tree = skeleton.scope_tree
    class_ids: dict[tuple[int, str], int] = {}
    classes: list[VariableClass] = []
    problem_holes: list[ProblemHole] = []

    def class_for(scope_id: int, type_name: str) -> int | None:
        declared = tree.scope(scope_id).declared_of_type(type_name)
        if not declared:
            return None
        key = _class_key(scope_id, type_name)
        if key not in class_ids:
            class_ids[key] = len(classes)
            classes.append(
                VariableClass(
                    id=len(classes),
                    scope_id=scope_id,
                    type=type_name,
                    variables=tuple(variable.name for variable in declared),
                )
            )
        return class_ids[key]

    for position, hole in enumerate(holes):
        visible: list[int] = []
        shadowed: set[str] = set()
        for scope_id in tree.ancestors(hole.scope_id):
            scope = tree.scope(scope_id)
            declared = scope.declared_of_type(hole.type)
            # Variable classes are whole (scope, type) groups: the compact
            # alpha-renaming permutes all of them together.  If an inner scope
            # shadows only part of the group, permuting the group would not
            # preserve validity at this hole, so we conservatively drop the
            # whole class here (documented in DESIGN.md; frontends avoid
            # emitting partially-shadowed groups).
            if declared and all(variable.name not in shadowed for variable in declared):
                class_id = class_for(scope_id, hole.type)
                if class_id is not None:
                    visible.append(class_id)
            shadowed.update(variable.name for variable in scope.variables)
        if not visible:
            raise ValueError(
                f"hole {hole} has no candidate variables; skeleton {skeleton.name!r} is malformed"
            )
        problem_holes.append(
            ProblemHole(index=position, class_ids=tuple(visible), skeleton_index=hole.index)
        )

    return EnumerationProblem(name=name, classes=classes, holes=problem_holes)


def flat_problem(
    name: str,
    global_variables: int | list[str],
    scopes: list[tuple[int | list[str], int]],
    num_global_holes: int,
    type: str = "int",
) -> EnumerationProblem:
    """Convenience constructor for the paper's two-level "normal form".

    Args:
        name: label for the problem.
        global_variables: number of global variables (names are synthesised)
            or an explicit list of names.
        scopes: one ``(variables, num_holes)`` pair per local scope; holes in
            scope ``l`` may use the global variables plus that scope's own.
        num_global_holes: holes that may only use global variables.
        type: single variable type shared by everything.

    This mirrors Figure 7 of the paper and is heavily used by tests and
    benchmarks that exercise the algorithm without a language frontend.
    """

    def names(spec: int | list[str], prefix: str) -> tuple[str, ...]:
        if isinstance(spec, int):
            return tuple(f"{prefix}{i}" for i in range(spec))
        return tuple(spec)

    classes: list[VariableClass] = []
    global_names = names(global_variables, "g")
    classes.append(VariableClass(id=0, scope_id=0, type=type, variables=global_names))

    holes: list[ProblemHole] = []
    index = 0
    for _ in range(num_global_holes):
        holes.append(ProblemHole(index=index, class_ids=(0,)))
        index += 1
    for scope_number, (variables, hole_count) in enumerate(scopes, start=1):
        local_names = names(variables, f"l{scope_number}_")
        class_id = len(classes)
        classes.append(
            VariableClass(id=class_id, scope_id=scope_number, type=type, variables=local_names)
        )
        for _ in range(hole_count):
            holes.append(ProblemHole(index=index, class_ids=(class_id, 0)))
            index += 1

    return EnumerationProblem(name=name, classes=classes, holes=holes)


def unscoped_problem(name: str, num_holes: int, variables: int | list[str], type: str = "int") -> EnumerationProblem:
    """Convenience constructor for the unscoped (WHILE-style) problem."""
    return flat_problem(name, variables, [], num_holes, type=type)


__all__ = [
    "EnumerationProblem",
    "Granularity",
    "ProblemHole",
    "VariableClass",
    "flat_problem",
    "problems_from_skeleton",
    "unscoped_problem",
]
