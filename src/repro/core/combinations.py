"""k-subset enumeration: the ``COMBINATIONS`` routine of the paper.

``PartitionScope`` (paper Section 4.2.2) chooses ``k`` local holes of a scope
and *promotes* them to the global scope; the choices range over all
``C(|Q|, k)`` subsets.  We implement the enumeration from scratch (the paper
cites Knuth/Kreher-Stinson style combinatorial generation) so the core has no
dependency on :mod:`itertools` behaviour for its correctness argument, and we
expose counting alongside enumeration.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence


@lru_cache(maxsize=None)
def num_combinations(n: int, k: int) -> int:
    """Return the binomial coefficient ``C(n, k)`` (0 when ``k > n``)."""
    if n < 0 or k < 0:
        raise ValueError(f"num_combinations requires non-negative arguments, got ({n}, {k})")
    if k > n:
        return 0
    if k == 0 or k == n:
        return 1
    k = min(k, n - k)
    result = 1
    for i in range(k):
        result = result * (n - i) // (i + 1)
    return result


def combinations(elements: Sequence, k: int) -> Iterator[tuple]:
    """Enumerate all ``k``-element subsets of ``elements`` in lexicographic index order.

    Equivalent to the paper's ``COMBINATIONS(Q, k)``.  Yields tuples of the
    original elements.  Produces ``C(len(elements), k)`` subsets.
    """
    items = list(elements)
    n = len(items)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k > n:
        return
    if k == 0:
        yield ()
        return
    # Classic revolving-door-free lexicographic index generation.
    indices = list(range(k))
    while True:
        yield tuple(items[i] for i in indices)
        # Find the rightmost index that can be advanced.
        position = k - 1
        while position >= 0 and indices[position] == position + n - k:
            position -= 1
        if position < 0:
            return
        indices[position] += 1
        for i in range(position + 1, k):
            indices[i] = indices[i - 1] + 1


def all_subsets(elements: Sequence) -> Iterator[tuple]:
    """Enumerate every subset of ``elements``, ordered by size then lexicographically."""
    items = list(elements)
    for size in range(len(items) + 1):
        yield from combinations(items, size)
