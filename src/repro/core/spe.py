"""The SPE enumeration algorithm (paper Section 4, Algorithm 1).

Two enumerators are provided:

* :class:`SPEEnumerator` -- enumerates exactly one representative per
  alpha-equivalence class of fillings of an
  :class:`~repro.core.problem.EnumerationProblem`.  It generalises the
  paper's ``PartitionScope`` to arbitrary scope trees by observing that a
  canonical filling is fully described by (a) which variable class each hole
  draws from and (b) a restricted-growth labelling per class.  For two-level
  problems this coincides with ``PartitionScope`` with at-most-``k``
  partitions at every step.
* :func:`partition_scope_paper` -- a literal transcription of the paper's
  ``PartitionScope`` pseudocode for two-level ("normal form") problems,
  including the exactly-``|v_g|``-blocks behaviour that produces the worked
  Example 6 figure (36).  Setting ``strict_global_blocks=False`` switches to
  at-most partitions, which makes it agree with :class:`SPEEnumerator` (40
  for Example 6) -- see DESIGN.md for the discussion of this discrepancy.

:class:`SkeletonEnumerator` lifts the per-problem enumeration to whole
skeletons with intra- or inter-procedural granularity and implements the 10K
budget/threshold policy used in the paper's evaluation.

Everything here is language-independent: enumerators consume
:class:`~repro.core.holes.Skeleton` values and never look inside a
frontend's AST, so any frontend registered with :mod:`repro.frontends`
(mini-C, WHILE, ...) enumerates through the same machinery.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.core.combinations import combinations
from repro.core.counting import naive_count, scoped_spe_count
from repro.core.holes import BoundVariant, CharacteristicVector, Skeleton
from repro.core.partitions import partitions_at_most, partitions_exact
from repro.core.problem import (
    EnumerationProblem,
    Granularity,
    problems_from_skeleton,
)
from repro.core.ranking import (
    ProblemRanking,
    mixed_radix_digits,
    mixed_radix_rank,
    sample_distinct_indices,
    shard_bounds,
)


@dataclass(frozen=True)
class EnumerationBudget:
    """A cap on how many variants of a single skeleton are enumerated.

    The paper uses a 10 000-variant threshold: skeletons whose canonical
    solution set exceeds the threshold are skipped entirely (rather than
    truncated), which retains ~90% of the corpus while keeping the campaign
    tractable (Section 5.2.1).  ``truncate=True`` switches to truncation.
    """

    max_variants: int | None = 10_000
    truncate: bool = False

    def allows(self, count: int) -> bool:
        """True when a skeleton with ``count`` variants should be processed."""
        if self.max_variants is None:
            return True
        return self.truncate or count <= self.max_variants

    def limit(self) -> int | None:
        return self.max_variants


class SPEEnumerator:
    """Enumerate the canonical (non-alpha-equivalent) fillings of one problem."""

    def __init__(self, problem: EnumerationProblem) -> None:
        self.problem = problem
        self._class_by_id = {cls.id: cls for cls in problem.classes}
        self._ranking: ProblemRanking | None = None
        self._count: int | None = None

    # -- counting ----------------------------------------------------------

    def count(self) -> int:
        """Exact size of the canonical solution set (no enumeration needed)."""
        if self._count is None:
            self._count = scoped_spe_count(self.problem)
        return self._count

    def naive_count(self) -> int:
        """Size of the naive scope-aware search space."""
        return naive_count(self.problem)

    # -- random access ------------------------------------------------------

    @property
    def ranking(self) -> ProblemRanking:
        """The memoised rank/unrank table (built on first use)."""
        if self._ranking is None:
            self._ranking = ProblemRanking(self.problem)
        return self._ranking

    def rank(self, vector) -> int:
        """Position of a canonical vector in enumeration order."""
        return self.ranking.rank(vector)

    def unrank(self, index: int) -> CharacteristicVector:
        """Canonical vector number ``index`` without enumerating predecessors."""
        return self.ranking.unrank(index)

    def sample_indices(self, k: int, seed: int | str | None = None) -> list[int]:
        """``min(k, count)`` distinct uniform indices into the canonical set."""
        return self.ranking.sample_indices(k, seed=seed)

    def sample(self, k: int, seed: int | str | None = None) -> list[tuple[int, CharacteristicVector]]:
        """Uniform sample without replacement as ``(index, vector)`` pairs."""
        return self.ranking.sample(k, seed=seed)

    # -- enumeration ---------------------------------------------------------

    def __iter__(self) -> Iterator[CharacteristicVector]:
        return self.enumerate()

    def enumerate(
        self,
        limit: int | None = None,
        *,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[CharacteristicVector]:
        """Yield one canonical characteristic vector per equivalence class.

        The representative uses, within each variable class, the class's
        declared variables in order of first use -- i.e. it is exactly the
        filling :func:`repro.core.alpha.canonicalize_assignment` would return.

        Args:
            limit: stop after this many vectors (None = no limit).
            start: skip to this enumeration index first (count-guided seek,
                no predecessor is materialised).
            stop: stop before this enumeration index (exclusive).
        """
        if start or stop is not None:
            if limit is not None:
                stop = start + limit if stop is None else min(stop, start + limit)
            yield from self.ranking.enumerate(start=start, stop=stop)
            return
        holes = self.problem.holes
        n = len(holes)
        if n == 0:
            yield CharacteristicVector(())
            return

        produced = 0
        # Per-hole choice: (class_id, block label).  A block label b for class
        # c is valid if b < min(blocks_used_so_far(c) + 1, |c|); a new block
        # (b == blocks_used) assigns the next unused declared variable.
        choice: list[tuple[int, int]] = [(-1, -1)] * n
        blocks_used: dict[int, int] = {cls.id: 0 for cls in self.problem.classes}

        def recurse(position: int) -> Iterator[CharacteristicVector]:
            nonlocal produced
            if limit is not None and produced >= limit:
                return
            if position == n:
                names = [
                    self._class_by_id[class_id].variables[block]
                    for class_id, block in choice
                ]
                produced += 1
                yield CharacteristicVector(names)
                return
            hole = holes[position]
            for class_id in hole.class_ids:
                cls = self._class_by_id[class_id]
                used = blocks_used[class_id]
                for block in range(min(used + 1, cls.size)):
                    choice[position] = (class_id, block)
                    opened_new = block == used
                    if opened_new:
                        blocks_used[class_id] = used + 1
                    yield from recurse(position + 1)
                    if opened_new:
                        blocks_used[class_id] = used
                    if limit is not None and produced >= limit:
                        return

        yield from recurse(0)

    def first(self, count: int) -> list[CharacteristicVector]:
        """Return the first ``count`` canonical vectors as a list."""
        return list(self.enumerate(limit=count))


def partition_scope_paper(
    problem: EnumerationProblem, strict_global_blocks: bool = True
) -> list[CharacteristicVector]:
    """Literal two-level ``PartitionScope`` (paper Procedure + Algorithm 1 lines 3-6).

    The problem must be in the paper's normal form: a single global class
    shared by every hole, plus zero or more local classes whose holes may use
    either the local class or the global one.

    Args:
        strict_global_blocks: when True (the paper's pseudocode), the global
            part of every promoted configuration is partitioned into exactly
            ``|v_g|`` non-empty blocks, reproducing Example 6's count of 36.
            When False, at-most partitions are used and the result coincides
            with :class:`SPEEnumerator`.

    Returns:
        The list of canonical characteristic vectors (in the problem's hole
        order).
    """
    global_class, locals_ = _normal_form(problem)
    global_hole_positions = [
        position
        for position, hole in enumerate(problem.holes)
        if hole.class_ids == (global_class.id,)
    ]

    results: list[CharacteristicVector] = []
    seen: set[tuple] = set()

    def emit(assignment: dict[int, str]) -> None:
        vector = CharacteristicVector(assignment[i] for i in range(problem.num_holes))
        if vector not in seen:
            seen.add(vector)
            results.append(vector)

    def fill_from_partition(blocks: Sequence[Sequence[int]], variables: Sequence[str], assignment: dict[int, str]) -> None:
        for block, variable in zip(blocks, variables):
            for position in block:
                assignment[position] = variable

    # Algorithm 1 line 3: S'_f -- every hole treated as global.
    all_positions = list(range(problem.num_holes))
    for blocks in partitions_at_most(all_positions, global_class.size):
        assignment: dict[int, str] = {}
        fill_from_partition(blocks, global_class.variables, assignment)
        emit(assignment)

    if not locals_:
        return results

    # PartitionScope over the local scopes.
    def recurse(scope_position: int, promoted: list[int], local_solutions: list[tuple]) -> None:
        if scope_position == len(locals_):
            global_positions = sorted(global_hole_positions + promoted)
            if strict_global_blocks:
                global_partitions = partitions_exact(global_positions, global_class.size)
            else:
                global_partitions = partitions_at_most(global_positions, global_class.size)
            for global_blocks in global_partitions:
                for combo in itertools.product(*[solution for solution in local_solutions]) if local_solutions else [()]:
                    assignment = {}
                    fill_from_partition(global_blocks, global_class.variables, assignment)
                    for (local_class, local_blocks) in combo:
                        fill_from_partition(local_blocks, local_class.variables, assignment)
                    emit(assignment)
            return

        local_class, local_positions = locals_[scope_position]
        # k ranges over [0, u-1] as in the paper; a scope with no holes still
        # recurses once (promoting nothing) so later scopes are processed.
        for promote_count in range(max(1, len(local_positions))):
            for promoted_subset in combinations(local_positions, promote_count):
                remaining = [p for p in local_positions if p not in promoted_subset]
                local_solution = [
                    (local_class, blocks)
                    for blocks in partitions_at_most(remaining, local_class.size)
                ]
                recurse(
                    scope_position + 1,
                    promoted + list(promoted_subset),
                    local_solutions + [local_solution],
                )

    recurse(0, [], [])
    return results


def _normal_form(problem: EnumerationProblem):
    """Split a two-level problem into its global class and local (class, holes) pairs."""
    shared = [
        cls for cls in problem.classes if all(cls.id in hole.class_ids for hole in problem.holes)
    ]
    if len(problem.classes) == 1:
        global_class = problem.classes[0]
    elif shared:
        global_class = shared[0]
    else:
        raise ValueError(f"problem {problem.name!r} is not in two-level normal form")
    locals_: list[tuple] = []
    for cls in problem.classes:
        if cls.id == global_class.id:
            continue
        positions = [
            position
            for position, hole in enumerate(problem.holes)
            if cls.id in hole.class_ids
        ]
        for position in positions:
            if set(problem.holes[position].class_ids) != {cls.id, global_class.id}:
                raise ValueError(f"problem {problem.name!r} is not in two-level normal form")
        locals_.append((cls, positions))
    return global_class, locals_


class SkeletonEnumerator:
    """Enumerate canonical programs realizing a whole skeleton.

    Combines per-function problems (intra-procedural granularity, the paper's
    default) by Cartesian product, or treats the skeleton as one problem
    (inter-procedural granularity).
    """

    def __init__(
        self,
        skeleton: Skeleton,
        granularity: Granularity = Granularity.INTRA_PROCEDURAL,
        budget: EnumerationBudget | None = None,
    ) -> None:
        self.skeleton = skeleton
        self.granularity = granularity
        self.budget = budget or EnumerationBudget(max_variants=None)
        self.problems = problems_from_skeleton(skeleton, granularity)
        self._enumerators = [SPEEnumerator(problem) for problem in self.problems]
        self._hole_slots = self._compute_hole_slots()
        self._problem_counts: list[int] | None = None

    def _compute_hole_slots(self) -> list[list[int]]:
        """Per-problem skeleton-hole positions, validated to tile the skeleton.

        Each problem hole carries the index of the skeleton hole it came from
        (``skeleton_index``; ``index`` is the positional fallback for problems
        built without a skeleton).  Merging per-problem vectors is only sound
        when those positions cover every skeleton hole exactly once, so that
        is asserted here instead of silently overwriting on collision.
        """
        slots = [
            [
                hole.skeleton_index if hole.skeleton_index >= 0 else hole.index
                for hole in problem.holes
            ]
            for problem in self.problems
        ]
        covered = sorted(slot for problem_slots in slots for slot in problem_slots)
        if covered != list(range(self.skeleton.num_holes)):
            raise ValueError(
                f"problems of skeleton {self.skeleton.name!r} do not cover its "
                f"{self.skeleton.num_holes} holes exactly once (got positions {covered})"
            )
        return slots

    def _merge(self, parts: Sequence[CharacteristicVector]) -> CharacteristicVector:
        """Interleave per-problem vectors back into skeleton hole order."""
        merged: list[str] = [""] * self.skeleton.num_holes
        for slots, part in zip(self._hole_slots, parts):
            for slot, name in zip(slots, part):
                merged[slot] = name
        return CharacteristicVector(merged)

    # -- counting ----------------------------------------------------------

    def problem_counts(self) -> list[int]:
        """Canonical solution-set size of every sub-problem (the product radices).

        Computed once and cached: rank/unrank/sample call this per variant.
        """
        if self._problem_counts is None:
            self._problem_counts = [enumerator.count() for enumerator in self._enumerators]
        return list(self._problem_counts)

    def count(self) -> int:
        """Exact number of canonical programs realizing the skeleton."""
        total = 1
        for enumerator in self._enumerators:
            total *= enumerator.count()
        return total

    def naive_count(self) -> int:
        """Scope-aware naive search-space size for the whole skeleton."""
        total = 1
        for hole in self.skeleton.holes:
            total *= max(1, len(self.skeleton.candidate_names(hole)))
        return total

    def within_budget(self) -> bool:
        """Whether the skeleton passes the enumeration threshold."""
        return self.budget.allows(self.count())

    # -- random access ------------------------------------------------------

    def unrank(self, index: int) -> CharacteristicVector:
        """Canonical skeleton vector number ``index`` (mixed-radix over problems).

        The whole-skeleton index decomposes into one digit per sub-problem
        (last problem varying fastest, matching the historical
        ``itertools.product`` order of :meth:`vectors`); each digit is
        unranked independently and the parts are merged by hole position.
        """
        digits = mixed_radix_digits(index, self.problem_counts() or [1])
        if not self._enumerators:
            return CharacteristicVector(())
        parts = [
            enumerator.unrank(digit)
            for enumerator, digit in zip(self._enumerators, digits)
        ]
        return self._merge(parts)

    def rank(self, vector) -> int:
        """Position of a canonical skeleton vector in enumeration order."""
        if len(vector) != self.skeleton.num_holes:
            raise ValueError(
                f"vector length {len(vector)} does not match hole count {self.skeleton.num_holes}"
            )
        if not self._enumerators:
            return 0
        parts = [
            CharacteristicVector(vector[slot] for slot in slots)
            for slots in self._hole_slots
        ]
        digits = [
            enumerator.rank(part) for enumerator, part in zip(self._enumerators, parts)
        ]
        return mixed_radix_rank(digits, self.problem_counts())

    def sample_indices(self, k: int, seed: int | str | None = None) -> list[int]:
        """``min(k, count)`` distinct uniform whole-skeleton indices, sorted."""
        return sample_distinct_indices(random.Random(seed), self.count(), k)

    def sample(self, k: int, seed: int | str | None = None) -> list[tuple[int, CharacteristicVector]]:
        """Uniform sample without replacement as ``(index, vector)`` pairs."""
        return [(index, self.unrank(index)) for index in self.sample_indices(k, seed=seed)]

    def sample_programs(self, k: int, seed: int | str | None = None) -> Iterator[tuple[CharacteristicVector, str]]:
        """Like :meth:`programs` but over a uniform sample instead of a prefix."""
        for _, vector in self.sample(k, seed=seed):
            yield vector, self.skeleton.realize(vector)

    def shard(self, shard_index: int, shard_count: int) -> Iterator[CharacteristicVector]:
        """Stream shard ``shard_index`` of ``shard_count`` disjoint contiguous shards."""
        lo, hi = shard_bounds(0, self.count(), shard_index, shard_count)
        return self.vectors(start=lo, stop=hi)

    # -- enumeration ---------------------------------------------------------

    def vectors(
        self,
        limit: int | None = None,
        *,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[CharacteristicVector]:
        """Yield canonical characteristic vectors in the skeleton's hole order.

        The product over sub-problems is evaluated lazily as a mixed-radix
        odometer: only the current vector of each sub-problem is held in
        memory (``O(holes)`` total), never the per-problem solution lists.
        ``start``/``stop`` select an index slice; the first vector is reached
        by unranking, not by enumerating predecessors.
        """
        total = self.count()
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        effective_stop = total if stop is None else min(stop, total)
        if limit is not None:
            effective_stop = min(effective_stop, start + limit)
        elif stop is None and self.budget.truncate and self.budget.limit() is not None:
            # No explicit cap from the caller: apply the truncating budget.
            effective_stop = min(effective_stop, start + self.budget.limit())
        if start >= effective_stop:
            return

        if not self._enumerators:
            yield CharacteristicVector(())
            return

        counts = self.problem_counts()
        digits = mixed_radix_digits(start, counts)
        last = len(counts) - 1

        # One live iterator per prefix dimension; ``current`` holds its vector.
        prefix_iters = [
            self._enumerators[p].enumerate(start=digits[p]) for p in range(last)
        ]
        current = [next(it) for it in prefix_iters]

        index = start
        while True:
            for tail in self._enumerators[last].enumerate(start=digits[last]):
                yield self._merge((*current, tail))
                index += 1
                if index >= effective_stop:
                    return
            digits[last] = 0
            position = last - 1
            while position >= 0:
                bumped = next(prefix_iters[position], None)
                if bumped is not None:
                    current[position] = bumped
                    break
                prefix_iters[position] = self._enumerators[position].enumerate()
                current[position] = next(prefix_iters[position])
                position -= 1
            if position < 0:
                return

    def programs(
        self,
        limit: int | None = None,
        *,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[tuple[CharacteristicVector, str]]:
        """Yield ``(vector, source)`` pairs for every canonical variant."""
        for vector in self.vectors(limit=limit, start=start, stop=stop):
            yield vector, self.skeleton.realize(vector)

    def indexed_programs(self, start: int = 0, stop: int | None = None) -> Iterator[BoundVariant]:
        """Yield :class:`BoundVariant`\\ s over ``[start, stop)`` with global indices.

        Variants are realized lazily: the AST is rebound on ``.program``
        access and source text is rendered only when ``.source`` is read, so
        consumers that work on ASTs (the campaign fast path) never pay for
        rendering or re-parsing.
        """
        for offset, vector in enumerate(self.vectors(start=start, stop=stop)):
            yield BoundVariant(self.skeleton, start + offset, vector)

    def programs_at(self, indices: Iterable[int]) -> Iterator[BoundVariant]:
        """Lazily realize the variants at explicit enumeration indices (e.g. a sample)."""
        for index in indices:
            yield BoundVariant(self.skeleton, index, self.unrank(index))

    def __iter__(self) -> Iterator[CharacteristicVector]:
        return self.vectors()


__all__ = [
    "EnumerationBudget",
    "Granularity",
    "SPEEnumerator",
    "SkeletonEnumerator",
    "partition_scope_paper",
]
