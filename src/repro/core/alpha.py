"""Alpha-renamings and canonical forms of hole fillings.

Two programs realizing the same skeleton are alpha-equivalent when a
(compact) alpha-renaming maps one filling to the other (paper Definition 2
and Section 3.2.2).  A *compact* renaming only permutes variables declared in
the same scope and of the same type -- i.e. within one
:class:`repro.core.problem.VariableClass`.

The canonical form of a filling relabels, independently for every variable
class, the variables used by the filling in order of first occurrence.  Two
fillings are alpha-equivalent iff their canonical forms coincide, which is the
invariant the SPE enumerator maintains and the property-based tests check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.holes import CharacteristicVector
from repro.core.partitions import is_restricted_growth_string
from repro.core.problem import EnumerationProblem


@dataclass(frozen=True)
class AlphaRenaming:
    """A bijective renaming of variable names.

    The mapping must be a permutation of its own key set (every value is also
    a key); identity entries may be omitted when applying the renaming.
    """

    mapping: Mapping[str, str]

    def __post_init__(self) -> None:
        keys = set(self.mapping)
        values = set(self.mapping.values())
        if len(values) != len(self.mapping):
            raise ValueError("alpha-renaming must be injective")
        if not values <= keys:
            raise ValueError("alpha-renaming must be a permutation of its key set")

    def __call__(self, name: str) -> str:
        return self.mapping.get(name, name)

    def apply(self, vector: Sequence[str]) -> CharacteristicVector:
        """Rename every entry of a characteristic vector."""
        return CharacteristicVector(self(name) for name in vector)

    def inverse(self) -> "AlphaRenaming":
        return AlphaRenaming({value: key for key, value in self.mapping.items()})

    def compose(self, other: "AlphaRenaming") -> "AlphaRenaming":
        """Return the renaming equivalent to applying ``other`` then ``self``."""
        names = set(self.mapping) | set(other.mapping)
        return AlphaRenaming({name: self(other(name)) for name in names})

    def is_compact_for(self, problem: EnumerationProblem) -> bool:
        """True when the renaming only permutes names within each variable class."""
        for cls in problem.classes:
            members = set(cls.variables)
            for name in cls.variables:
                if self(name) not in members:
                    return False
        # Names not covered by any class must be mapped to themselves.
        covered = {name for cls in problem.classes for name in cls.variables}
        for key, value in self.mapping.items():
            if key not in covered and key != value:
                return False
        return True


def canonical_key(problem: EnumerationProblem, vector: Sequence[str]) -> tuple:
    """Return a hashable canonical key identifying the alpha-equivalence class.

    The key combines, per hole, the id of the class the filling variable was
    drawn from, and, per class, the restricted-growth relabelling of the
    variables used.  Fillings are alpha-equivalent under compact renaming iff
    their keys are equal.
    """
    if len(vector) != problem.num_holes:
        raise ValueError(
            f"vector length {len(vector)} does not match hole count {problem.num_holes}"
        )
    class_of_name: dict[str, int] = {}
    for cls in problem.classes:
        for name in cls.variables:
            class_of_name[name] = cls.id

    hole_classes: list[int] = []
    per_class_labels: dict[int, dict[str, int]] = {}
    per_class_strings: dict[int, list[int]] = {}
    for hole, name in zip(problem.holes, vector):
        if name not in class_of_name:
            raise ValueError(f"variable {name!r} does not belong to any class of {problem.name!r}")
        class_id = class_of_name[name]
        if class_id not in hole.class_ids:
            raise ValueError(
                f"variable {name!r} (class {class_id}) is not visible at hole {hole.index}"
            )
        hole_classes.append(class_id)
        labels = per_class_labels.setdefault(class_id, {})
        if name not in labels:
            labels[name] = len(labels)
        per_class_strings.setdefault(class_id, []).append(labels[name])

    class_parts = tuple(
        (class_id, tuple(per_class_strings[class_id])) for class_id in sorted(per_class_strings)
    )
    return (tuple(hole_classes), class_parts)


def canonicalize_assignment(problem: EnumerationProblem, vector: Sequence[str]) -> CharacteristicVector:
    """Return the canonical representative of ``vector``'s alpha-equivalence class.

    Within each variable class, the i-th distinct variable (in order of first
    occurrence along the hole order) is replaced by the class's i-th declared
    variable.  The result is itself a valid filling and is the representative
    that :class:`repro.core.spe.SPEEnumerator` produces.
    """
    class_of_name: dict[str, int] = {}
    for cls in problem.classes:
        for name in cls.variables:
            class_of_name[name] = cls.id

    per_class_next: dict[int, int] = {}
    renamed: dict[tuple[int, str], str] = {}
    result: list[str] = []
    for hole, name in zip(problem.holes, vector):
        class_id = class_of_name[name]
        key = (class_id, name)
        if key not in renamed:
            position = per_class_next.get(class_id, 0)
            per_class_next[class_id] = position + 1
            renamed[key] = problem.class_by_id(class_id).variables[position]
        result.append(renamed[key])
    return CharacteristicVector(result)


def alpha_equivalent(
    problem: EnumerationProblem, left: Sequence[str], right: Sequence[str]
) -> bool:
    """Check compact alpha-equivalence of two fillings of the same problem."""
    return canonical_key(problem, left) == canonical_key(problem, right)


def canonical_filling(vector: Sequence[str]) -> tuple[int, ...]:
    """Unscoped canonical form: the restricted growth string of a filling.

    This is the encoding of Section 4.1.2: the i-th distinct name (by first
    occurrence) becomes label ``i``.  Two unscoped fillings are
    alpha-equivalent iff their strings are equal.
    """
    labels: dict[str, int] = {}
    string: list[int] = []
    for name in vector:
        if name not in labels:
            labels[name] = len(labels)
        string.append(labels[name])
    assert is_restricted_growth_string(string)
    return tuple(string)


def renaming_between(
    problem: EnumerationProblem, source: Sequence[str], target: Sequence[str]
) -> AlphaRenaming | None:
    """Return a compact renaming mapping ``source`` to ``target`` if one exists.

    Only the variables actually used are constrained; unused variables of each
    class are matched up arbitrarily (but within their class) so that the
    returned renaming is a true permutation.
    """
    if canonical_key(problem, source) != canonical_key(problem, target):
        return None
    mapping: dict[str, str] = {}
    reverse: dict[str, str] = {}
    for src, dst in zip(source, target):
        if mapping.setdefault(src, dst) != dst or reverse.setdefault(dst, src) != src:
            return None
    # Complete each class to a permutation.
    for cls in problem.classes:
        unused_sources = [name for name in cls.variables if name not in mapping]
        unused_targets = [name for name in cls.variables if name not in reverse]
        for src, dst in zip(unused_sources, unused_targets):
            mapping[src] = dst
            reverse[dst] = src
    return AlphaRenaming(mapping)
