"""Closed-form counting of SPE solution sets.

Three quantities matter for the paper's evaluation (Table 1, Figure 8):

* :func:`naive_count` -- the naive search space ``prod_i |v_i|``
  (Section 3.1), already scope- and type-aware;
* :func:`spe_count` -- the unscoped canonical count
  ``sum_{i=1..k} S(n, i)`` (Equation 1) together with the asymptotic
  estimate :func:`stirling_estimate` (Equation 2);
* :func:`scoped_spe_count` -- the exact number of non-alpha-equivalent
  fillings in the scoped formulation of Section 4.2.1.  The paper leaves the
  scoped counting problem open; we compute it exactly with a dynamic program
  over "how many holes were assigned to each variable class", which agrees
  with brute-force canonicalisation on every case the test-suite checks.

:func:`paper_partition_scope_count` reproduces the arithmetic printed in the
paper's Example 6 (which requires the *global* block count to be exactly
``|v_g|``); see the note in DESIGN.md -- the example's figure of 36 slightly
undercounts the true number of equivalence classes (40), and the discrepancy
is surfaced deliberately rather than hidden.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.partitions import partitions_at_most_count, stirling2
from repro.core.problem import EnumerationProblem, Granularity, problems_from_skeleton


def naive_count(problem: EnumerationProblem) -> int:
    """Size of the naive (scope-aware) Cartesian-product search space."""
    return problem.naive_size()


def spe_count(num_holes: int, num_variables: int) -> int:
    """Unscoped canonical solution count ``sum_{i=1..k} S(n, i)`` (Equation 1)."""
    return partitions_at_most_count(num_holes, num_variables)


def stirling_estimate(num_holes: int, num_variables: int) -> float:
    """Asymptotic estimate ``sum_i i^n / i!`` of Equation 2."""
    if num_holes < 0 or num_variables < 0:
        raise ValueError("arguments must be non-negative")
    total = 0.0
    factorial = 1
    for i in range(1, num_variables + 1):
        factorial *= i
        total += float(i) ** num_holes / factorial
    return total


def scoped_spe_count(problem: EnumerationProblem) -> int:
    """Exact number of non-alpha-equivalent fillings of a scoped problem.

    Every filling determines, per hole, the variable class the filled variable
    belongs to; compact renamings preserve that choice.  Conditioned on a
    class assignment, the fillings of each class form an independent
    set-partition problem with at most ``k_c`` blocks.  Hence::

        count = sum over class assignments  prod_c  P_<=k_c(m_c)

    where ``m_c`` is the number of holes assigned to class ``c`` and
    ``P_<=k(m)`` counts partitions of an ``m``-set into at most ``k`` blocks.
    The dynamic program below accumulates the number of assignments leading to
    each per-class occupancy vector.
    """
    num_classes = len(problem.classes)
    if problem.num_holes == 0:
        return 1
    class_index = {cls.id: position for position, cls in enumerate(problem.classes)}

    states: dict[tuple[int, ...], int] = {tuple([0] * num_classes): 1}
    for hole in problem.holes:
        next_states: dict[tuple[int, ...], int] = {}
        for occupancy, ways in states.items():
            for class_id in hole.class_ids:
                position = class_index[class_id]
                bumped = list(occupancy)
                bumped[position] += 1
                key = tuple(bumped)
                next_states[key] = next_states.get(key, 0) + ways
        states = next_states

    total = 0
    for occupancy, ways in states.items():
        product = 1
        for position, cls in enumerate(problem.classes):
            product *= partitions_at_most_count(occupancy[position], cls.size)
        total += ways * product
    return total


def paper_partition_scope_count(problem: EnumerationProblem) -> int:
    """Solution count following the paper's Example 6 arithmetic.

    The paper's printed pseudocode partitions the promoted-plus-global holes
    into *exactly* ``|v_g|`` non-empty blocks (``PARTITIONS'``) while the
    all-global configuration computed by Algorithm 1 line 3 uses at-most
    partitions.  This reproduces that accounting for two-level ("normal
    form") problems so the worked example's number (36 in Example 6) can be
    regenerated and contrasted with :func:`scoped_spe_count` (40).

    Raises:
        ValueError: if the problem is not in two-level normal form.
    """
    global_class, locals_ = _split_normal_form(problem)
    global_holes = [hole for hole in problem.holes if hole.class_ids == (global_class.id,)]
    k_global = global_class.size

    # Algorithm 1 line 3: every hole treated as global, at most |v_g| blocks.
    total = partitions_at_most_count(problem.num_holes, k_global)

    # PartitionScope: for each combination of promoted local holes (never all
    # of one scope), exactly-|v_g| blocks for the global part, at-most-|v_l|
    # blocks per remaining local part.
    def recurse(scope_position: int, promoted: int) -> int:
        if scope_position == len(locals_):
            return stirling2(len(global_holes) + promoted, k_global)
        local_class, local_holes = locals_[scope_position]
        subtotal = 0
        for promote in range(len(local_holes)):  # k in [0, u-1]: never all
            remaining = len(local_holes) - promote
            local_ways = partitions_at_most_count(remaining, local_class.size)
            choices = _binomial(len(local_holes), promote)
            subtotal += choices * local_ways * recurse(scope_position + 1, promoted + promote)
        return subtotal

    if locals_:
        total += recurse(0, 0)
    return total


def skeleton_spe_count(skeleton, granularity: Granularity = Granularity.INTRA_PROCEDURAL) -> int:
    """Exact canonical variant count of a whole skeleton.

    The skeleton's solution set is the Cartesian product of its per-problem
    solution sets (one problem per function at intra-procedural granularity),
    so the count is the product of the per-problem :func:`scoped_spe_count`s.
    These products are the radices of the mixed-radix indexing used by
    :mod:`repro.core.ranking` to give whole-skeleton random access.
    """
    total = 1
    for problem in problems_from_skeleton(skeleton, granularity):
        total *= scoped_spe_count(problem)
    return total


def reduction_factor(problem: EnumerationProblem) -> float:
    """Naive-to-SPE size ratio (>= 1); infinity is impossible since SPE >= 1."""
    canonical = scoped_spe_count(problem)
    if canonical == 0:
        return 1.0
    return naive_count(problem) / canonical


# -- helpers -----------------------------------------------------------------


@lru_cache(maxsize=None)
def _binomial(n: int, k: int) -> int:
    if k < 0 or k > n:
        return 0
    result = 1
    for i in range(min(k, n - k)):
        result = result * (n - i) // (i + 1)
    return result


def _split_normal_form(problem: EnumerationProblem):
    """Split a two-level problem into (global class, [(local class, holes)])."""
    global_candidates = [
        cls
        for cls in problem.classes
        if all(cls.id in hole.class_ids for hole in problem.holes)
    ]
    if len(problem.classes) == 1:
        global_class = problem.classes[0]
    elif global_candidates:
        # The shared outermost class is the global one.
        global_class = global_candidates[0]
    else:
        raise ValueError(f"problem {problem.name!r} is not in two-level normal form")

    locals_: list[tuple] = []
    for cls in problem.classes:
        if cls.id == global_class.id:
            continue
        holes = [hole for hole in problem.holes if cls.id in hole.class_ids]
        for hole in holes:
            if set(hole.class_ids) != {cls.id, global_class.id}:
                raise ValueError(
                    f"problem {problem.name!r} is not in two-level normal form"
                )
        locals_.append((cls, holes))
    for hole in problem.holes:
        if len(hole.class_ids) == 1 and hole.class_ids[0] != global_class.id:
            raise ValueError(f"problem {problem.name!r} is not in two-level normal form")
    return global_class, locals_


__all__ = [
    "naive_count",
    "paper_partition_scope_count",
    "reduction_factor",
    "scoped_spe_count",
    "skeleton_spe_count",
    "spe_count",
    "stirling_estimate",
]
