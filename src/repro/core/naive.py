"""The naive enumeration baseline (paper Section 3.1).

The naive approach fills every hole independently with every visible,
type-correct variable: the search space is the Cartesian product
``prod_i |v_i|`` and is dominated by alpha-equivalent duplicates.  It is
implemented both for :class:`~repro.core.problem.EnumerationProblem` values
and for whole skeletons, and is used as the baseline of Table 1 / Figure 8
and as the brute-force oracle in the property tests (canonicalising the naive
set must give exactly the SPE set).  Like the SPE enumerators, it is
language-independent: it consumes skeletons from any registered frontend.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from repro.core.alpha import canonicalize_assignment
from repro.core.holes import BoundVariant, CharacteristicVector, Skeleton
from repro.core.problem import EnumerationProblem
from repro.core.ranking import mixed_radix_digits


class NaiveEnumerator:
    """Enumerate every scope/type-valid filling of an enumeration problem."""

    def __init__(self, problem: EnumerationProblem) -> None:
        self.problem = problem

    def count(self) -> int:
        """Exact size of the naive search space."""
        return self.problem.naive_size()

    def enumerate(self, limit: int | None = None) -> Iterator[CharacteristicVector]:
        """Yield every valid filling (lexicographic in candidate order)."""
        candidate_lists = [self.problem.candidate_names(hole) for hole in self.problem.holes]
        produced = 0
        if not candidate_lists:
            yield CharacteristicVector(())
            return
        for names in itertools.product(*candidate_lists):
            yield CharacteristicVector(names)
            produced += 1
            if limit is not None and produced >= limit:
                return

    def __iter__(self) -> Iterator[CharacteristicVector]:
        return self.enumerate()

    def canonical_set(self) -> set[CharacteristicVector]:
        """Canonicalise every naive filling: the brute-force SPE solution set.

        Exponential -- only use on small problems (tests and sanity checks).
        """
        return {
            canonicalize_assignment(self.problem, vector) for vector in self.enumerate()
        }


class NaiveSkeletonEnumerator:
    """Naive enumeration of all programs realizing a skeleton.

    The search space is a plain Cartesian product, so index-based random
    access (``unrank`` and ``start``/``stop`` slicing, mirroring the SPE
    enumerators) is direct mixed-radix arithmetic over the candidate lists.
    """

    def __init__(self, skeleton: Skeleton) -> None:
        self.skeleton = skeleton
        self._candidate_lists = [
            self.skeleton.candidate_names(hole) for hole in self.skeleton.holes
        ]

    def count(self) -> int:
        """Search-space *size* in the Table 1 convention (zero-candidate holes
        clamp to 1, matching :meth:`SkeletonEnumerator.naive_count`).  Use
        :meth:`num_vectors` for the exact number of enumerable vectors."""
        total = 1
        for names in self._candidate_lists:
            total *= max(1, len(names))
        return total

    def num_vectors(self) -> int:
        """Exact number of vectors :meth:`vectors` yields (0 radices kill the product)."""
        total = 1
        for names in self._candidate_lists:
            total *= len(names)
        return total

    def unrank(self, index: int) -> CharacteristicVector:
        """Vector number ``index`` in the lexicographic (product) order."""
        total = self.num_vectors()
        if not 0 <= index < total:
            raise IndexError(f"index {index} out of range for {total} naive variants")
        digits = mixed_radix_digits(index, [len(names) for names in self._candidate_lists] or [1])
        return CharacteristicVector(
            names[digit] for names, digit in zip(self._candidate_lists, digits)
        )

    def vectors(
        self,
        limit: int | None = None,
        *,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[CharacteristicVector]:
        if start < 0:
            raise ValueError(f"start must be non-negative, got {start}")
        if not self._candidate_lists:
            if start == 0 and (stop is None or stop > 0) and (limit is None or limit > 0):
                yield CharacteristicVector(())
            return
        total = self.num_vectors()
        effective_stop = total if stop is None else min(stop, total)
        if limit is not None:
            effective_stop = min(effective_stop, start + limit)
        if start >= effective_stop:
            return
        if start == 0 and effective_stop == total:
            for names in itertools.product(*self._candidate_lists):
                yield CharacteristicVector(names)
            return
        # Seek once by unranking, then advance as a mixed-radix odometer
        # (last digit fastest) -- O(1) amortized per vector.
        radices = [len(names) for names in self._candidate_lists]
        digits = mixed_radix_digits(start, radices)
        current = [
            names[digit] for names, digit in zip(self._candidate_lists, digits)
        ]
        index = start
        while True:
            yield CharacteristicVector(current)
            index += 1
            if index >= effective_stop:
                return
            position = len(digits) - 1
            while True:
                digits[position] += 1
                if digits[position] < radices[position]:
                    current[position] = self._candidate_lists[position][digits[position]]
                    break
                digits[position] = 0
                current[position] = self._candidate_lists[position][0]
                position -= 1

    def programs(
        self,
        limit: int | None = None,
        *,
        start: int = 0,
        stop: int | None = None,
    ) -> Iterator[tuple[CharacteristicVector, str]]:
        for vector in self.vectors(limit=limit, start=start, stop=stop):
            yield vector, self.skeleton.realize(vector)

    def indexed_programs(self, start: int = 0, stop: int | None = None) -> Iterator[BoundVariant]:
        """Yield lazily-realized :class:`BoundVariant`\\ s over ``[start, stop)``."""
        for offset, vector in enumerate(self.vectors(start=start, stop=stop)):
            yield BoundVariant(self.skeleton, start + offset, vector)

    def programs_at(self, indices: Iterable[int]) -> Iterator[BoundVariant]:
        """Lazily realize the variants at explicit enumeration indices (e.g. a sample)."""
        for index in indices:
            yield BoundVariant(self.skeleton, index, self.unrank(index))

    def __iter__(self) -> Iterator[CharacteristicVector]:
        return self.vectors()


__all__ = ["NaiveEnumerator", "NaiveSkeletonEnumerator"]
