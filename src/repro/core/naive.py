"""The naive enumeration baseline (paper Section 3.1).

The naive approach fills every hole independently with every visible,
type-correct variable: the search space is the Cartesian product
``prod_i |v_i|`` and is dominated by alpha-equivalent duplicates.  It is
implemented both for :class:`~repro.core.problem.EnumerationProblem` values
and for whole skeletons, and is used as the baseline of Table 1 / Figure 8
and as the brute-force oracle in the property tests (canonicalising the naive
set must give exactly the SPE set).
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.core.alpha import canonicalize_assignment
from repro.core.holes import CharacteristicVector, Skeleton
from repro.core.problem import EnumerationProblem


class NaiveEnumerator:
    """Enumerate every scope/type-valid filling of an enumeration problem."""

    def __init__(self, problem: EnumerationProblem) -> None:
        self.problem = problem

    def count(self) -> int:
        """Exact size of the naive search space."""
        return self.problem.naive_size()

    def enumerate(self, limit: int | None = None) -> Iterator[CharacteristicVector]:
        """Yield every valid filling (lexicographic in candidate order)."""
        candidate_lists = [self.problem.candidate_names(hole) for hole in self.problem.holes]
        produced = 0
        if not candidate_lists:
            yield CharacteristicVector(())
            return
        for names in itertools.product(*candidate_lists):
            yield CharacteristicVector(names)
            produced += 1
            if limit is not None and produced >= limit:
                return

    def __iter__(self) -> Iterator[CharacteristicVector]:
        return self.enumerate()

    def canonical_set(self) -> set[CharacteristicVector]:
        """Canonicalise every naive filling: the brute-force SPE solution set.

        Exponential -- only use on small problems (tests and sanity checks).
        """
        return {
            canonicalize_assignment(self.problem, vector) for vector in self.enumerate()
        }


class NaiveSkeletonEnumerator:
    """Naive enumeration of all programs realizing a skeleton."""

    def __init__(self, skeleton: Skeleton) -> None:
        self.skeleton = skeleton

    def count(self) -> int:
        total = 1
        for hole in self.skeleton.holes:
            total *= max(1, len(self.skeleton.candidate_names(hole)))
        return total

    def vectors(self, limit: int | None = None) -> Iterator[CharacteristicVector]:
        candidate_lists = [self.skeleton.candidate_names(hole) for hole in self.skeleton.holes]
        produced = 0
        if not candidate_lists:
            yield CharacteristicVector(())
            return
        for names in itertools.product(*candidate_lists):
            yield CharacteristicVector(names)
            produced += 1
            if limit is not None and produced >= limit:
                return

    def programs(self, limit: int | None = None) -> Iterator[tuple[CharacteristicVector, str]]:
        for vector in self.vectors(limit=limit):
            yield vector, self.skeleton.realize(vector)

    def __iter__(self) -> Iterator[CharacteristicVector]:
        return self.vectors()


__all__ = ["NaiveEnumerator", "NaiveSkeletonEnumerator"]
