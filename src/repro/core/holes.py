"""Holes, skeletons and characteristic vectors.

A *skeleton* is a program with every variable occurrence replaced by a hole
(paper Section 3.1).  Language frontends (:mod:`repro.lang`,
:mod:`repro.minic`) produce :class:`Skeleton` values; the enumeration core
consumes them through :class:`repro.core.problem.EnumerationProblem`.

A *characteristic vector* is one concrete filling of the skeleton's holes
with variable names; it uniquely identifies a realized program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.scopes import ScopeTree, Variable


@dataclass(frozen=True)
class Hole:
    """One variable occurrence in a skeleton.

    Attributes:
        index: position of the hole in the skeleton's hole order (0-based).
        scope_id: the scope the occurrence appears in (determines visibility).
        type: the type the filling variable must have.
        original_name: the variable name in the seed program (if any).
        function: name of the enclosing function, or ``None`` at file scope.
        location: free-form source location string for diagnostics.
    """

    index: int
    scope_id: int
    type: str = "int"
    original_name: str | None = None
    function: str | None = None
    location: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        origin = f"<-{self.original_name}" if self.original_name else ""
        return f"hole#{self.index}{origin}@scope{self.scope_id}:{self.type}"


class CharacteristicVector(tuple):
    """A filling of a skeleton's holes, as a tuple of variable names.

    The paper writes this as ``s_P = <v_1, ..., v_n>``.  The class is a thin
    tuple subclass so vectors hash/compare structurally but print nicely and
    carry a couple of helpers.
    """

    __slots__ = ()

    def __new__(cls, names: Iterable[str]) -> "CharacteristicVector":
        return super().__new__(cls, tuple(names))

    def __repr__(self) -> str:
        return f"<{', '.join(self)}>"

    def variables_used(self) -> set[str]:
        """The distinct variable names appearing in the vector."""
        return set(self)

    def substitution_from(self, other: "CharacteristicVector | Sequence[str]") -> dict[str, set[str]]:
        """Map each name in ``other`` to the set of names it becomes in ``self``.

        Useful to inspect whether a plain (non-compact) renaming exists between
        two fillings: a renaming exists iff every name maps to exactly one
        name and the induced mapping is injective.
        """
        if len(other) != len(self):
            raise ValueError("vectors must have the same length")
        mapping: dict[str, set[str]] = {}
        for source, target in zip(other, self):
            mapping.setdefault(source, set()).add(target)
        return mapping


class IdentifierBinder:
    """Shared parse-once rebinding bookkeeping for frontend binders.

    Every frontend that keeps its parsed program around and realizes variants
    by *rebinding* (patching identifier nodes in place instead of rendering
    and re-parsing) needs the same scaffolding: the shared unit, the hole
    identifier nodes in hole order, a per-hole map from candidate name to
    whatever the frontend resolves that name to, the per-hole sets of names
    that violate declaration-before-use, and the currently-bound vector so
    repeated binds of the same vector are no-ops.  Subclasses supply only the
    two language-specific pieces:

    * :meth:`_rebind` -- patch one identifier node to a new name/binding;
    * :meth:`_render` -- pretty-print the bound unit to source text.

    ``binding_maps[i]`` maps each legal filling name of hole ``i`` to an
    opaque frontend binding (a declaration node, or just the name itself for
    unscoped languages); membership in the map is the validity check.
    """

    __slots__ = ("unit", "identifiers", "binding_maps", "late_names", "_bound")

    def __init__(
        self,
        unit: object,
        identifiers: list,
        binding_maps: list[dict],
        late_names: list[frozenset[str]] | None = None,
    ) -> None:
        self.unit = unit
        self.identifiers = identifiers
        self.binding_maps = binding_maps
        self.late_names = (
            late_names if late_names is not None else [frozenset()] * len(identifiers)
        )
        # The vector currently bound; the original program is bound at start.
        self._bound: tuple[str, ...] | None = tuple(
            identifier.name for identifier in identifiers
        )

    def bind(self, vector: Sequence[str]):
        """Rebind the shared unit to ``vector`` (no-op if already bound)."""
        key = tuple(vector)
        if key == self._bound:
            return self.unit
        self._bound = None  # invalidate while partially rebound
        for identifier, name, candidates in zip(self.identifiers, key, self.binding_maps):
            binding = candidates.get(name)  # maps never store None
            if binding is None:
                raise ValueError(
                    f"variable {name!r} is not visible (or has the wrong type) "
                    f"at hole of {identifier.name!r}"
                )
            self._rebind(identifier, name, binding)
        self._bound = key
        return self.unit

    def render(self, vector: Sequence[str]) -> str:
        """Rebind and pretty-print: the textual realization of ``vector``."""
        return self._render(self.bind(vector))

    def order_clean(self, vector: Sequence[str]) -> bool:
        """True when no entry names a declaration that follows its hole."""
        for name, late in zip(vector, self.late_names):
            if name in late:
                return False
        return True

    # -- language-specific hooks ------------------------------------------

    def _rebind(self, identifier, name: str, binding) -> None:
        raise NotImplementedError

    def _render(self, unit) -> str:
        raise NotImplementedError


@dataclass
class Skeleton:
    """A syntactic skeleton: holes + scope tree + a way to realize fillings.

    Frontends construct one of these per seed program.  ``realize`` is a
    callback supplied by the frontend that renders a concrete program from a
    characteristic vector; the core never needs to know the AST shape.

    Frontends that keep their parsed program around may additionally attach
    ``bind_fn``: a callback that *rebinds* the frontend's single AST to a
    characteristic vector in O(holes) and returns it (an opaque object as far
    as the core is concerned).  Consumers that understand the frontend's AST
    (the reference interpreter, the compiler driver) can then skip the
    render / re-lex / re-parse / re-resolve round-trip entirely -- the
    parse-once fast path of the campaign harness.  ``order_clean_fn``
    reports whether a vector respects the frontend's declaration-before-use
    discipline (vectors that do not would be *rejected* by a textual
    frontend, so they must take the render+reparse path to stay
    observationally identical).
    """

    name: str
    holes: list[Hole]
    scope_tree: ScopeTree
    original_vector: CharacteristicVector | None = None
    realize_fn: Callable[[Sequence[str]], str] | None = None
    bind_fn: Callable[[Sequence[str]], object] | None = None
    order_clean_fn: Callable[[Sequence[str]], bool] | None = None
    metadata: dict = field(default_factory=dict)

    # -- basic shape -------------------------------------------------------

    @property
    def num_holes(self) -> int:
        return len(self.holes)

    def functions(self) -> list[str]:
        """Names of the functions that own at least one hole (in hole order)."""
        names: list[str] = []
        for hole in self.holes:
            if hole.function is not None and hole.function not in names:
                names.append(hole.function)
        return names

    def holes_of_function(self, function: str | None) -> list[Hole]:
        return [hole for hole in self.holes if hole.function == function]

    def hole_types(self) -> set[str]:
        return {hole.type for hole in self.holes}

    # -- candidate variables ----------------------------------------------

    def candidate_variables(self, hole: Hole) -> list[Variable]:
        """The variables that may legally fill ``hole`` (scope- and type-correct)."""
        return self.scope_tree.visible_variables(hole.scope_id, type=hole.type)

    def candidate_names(self, hole: Hole) -> list[str]:
        return [variable.name for variable in self.candidate_variables(hole)]

    def hole_variable_sets(self) -> list[list[str]]:
        """The hole variable sets ``v_i`` for every hole, in hole order."""
        return [self.candidate_names(hole) for hole in self.holes]

    # -- realization -------------------------------------------------------

    def realize(self, vector: Sequence[str]) -> str:
        """Render the program obtained by filling the holes with ``vector``."""
        if self.realize_fn is None:
            raise ValueError(f"skeleton {self.name!r} has no realize function attached")
        if len(vector) != self.num_holes:
            raise ValueError(
                f"vector length {len(vector)} does not match hole count {self.num_holes}"
            )
        self.validate_vector(vector)
        return self.realize_fn(tuple(vector))

    @property
    def supports_binding(self) -> bool:
        """Whether this skeleton can realize variants by AST rebinding."""
        return self.bind_fn is not None

    def bind(self, vector: Sequence[str]):
        """Rebind the skeleton's program AST to ``vector`` and return it.

        O(holes): no clone, no render, no re-parse.  The returned object is
        the frontend's *shared* AST -- it stays bound to ``vector`` only
        until the next ``bind``/``realize`` call, so callers must not hold
        on to it across variants (use :class:`BoundVariant`, which rebinds
        on access).
        """
        if self.bind_fn is None:
            raise ValueError(f"skeleton {self.name!r} has no bind function attached")
        if len(vector) != self.num_holes:
            raise ValueError(
                f"vector length {len(vector)} does not match hole count {self.num_holes}"
            )
        return self.bind_fn(tuple(vector))

    def vector_order_clean(self, vector: Sequence[str]) -> bool:
        """True when every entry is declared before the hole it fills."""
        if self.order_clean_fn is None:
            return bool(self.metadata.get("declaration_order_clean", True))
        return self.order_clean_fn(tuple(vector))

    def validate_vector(self, vector: Sequence[str]) -> None:
        """Raise ``ValueError`` unless every entry is visible at its hole."""
        for hole, name in zip(self.holes, vector):
            if name not in self.candidate_names(hole):
                raise ValueError(
                    f"variable {name!r} is not visible (or has the wrong type) at {hole}"
                )

    # -- statistics (Table 2 style) -----------------------------------------

    def stats(self) -> dict[str, float]:
        """Per-skeleton characteristics used by Table 2.

        Returns a dict with hole count, scope count, function count, the
        number of distinct variable types, total declared variables, and the
        average number of candidate variables per hole.
        """
        candidate_sizes = [len(self.candidate_names(hole)) for hole in self.holes]
        variables = self.scope_tree.all_variables()
        return {
            "holes": float(self.num_holes),
            "scopes": float(len(self.scope_tree)),
            "functions": float(len(self.scope_tree.function_scopes())),
            "types": float(len({variable.type for variable in variables})) if variables else 0.0,
            "variables": float(len(variables)),
            "vars_per_hole": (
                sum(candidate_sizes) / len(candidate_sizes) if candidate_sizes else 0.0
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Skeleton({self.name!r}, holes={self.num_holes}, scopes={len(self.scope_tree)})"


class BoundVariant:
    """One enumerated variant, realized lazily.

    Carries the (skeleton, enumeration index, characteristic vector) triple;
    the expensive representations are produced on demand:

    * ``program`` -- the skeleton's AST rebound to the vector (O(holes) per
      access; the AST is shared across variants, so the property rebinds on
      every read and remains correct even if variants are interleaved);
    * ``source`` -- the rendered program text, produced only when something
      actually needs text (a bug report, a reduction, the CLI) and cached.

    ``cache`` is a scratch dict for consumers that memoise per-variant
    derived artefacts (the compiler driver stores the lowered IR there so
    one lowering is shared by every configuration of the oracle matrix).
    """

    __slots__ = ("skeleton", "index", "vector", "cache", "_source")

    def __init__(self, skeleton: Skeleton, index: int, vector: CharacteristicVector) -> None:
        self.skeleton = skeleton
        self.index = index
        self.vector = vector
        self.cache: dict = {}
        self._source: str | None = None

    @property
    def program(self):
        """The skeleton's AST rebound to this variant's vector."""
        return self.skeleton.bind(self.vector)

    @property
    def source(self) -> str:
        """The rendered program text (cached after the first render)."""
        if self._source is None:
            self._source = self.skeleton.realize(self.vector)
        return self._source

    @property
    def order_clean(self) -> bool:
        """Whether this vector respects declaration-before-use (see Skeleton)."""
        return self.skeleton.vector_order_clean(self.vector)

    @property
    def supports_binding(self) -> bool:
        return self.skeleton.supports_binding

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundVariant({self.skeleton.name!r}#{self.index}, {self.vector!r})"
