"""repro -- Skeletal Program Enumeration (SPE) for rigorous compiler testing.

A from-scratch reproduction of *Skeletal Program Enumeration for Rigorous
Compiler Testing* (Zhang, Sun, Su -- PLDI 2017).  The package contains:

* :mod:`repro.core` -- the SPE combinatorial enumeration algorithm,
  alpha-equivalence machinery and counting formulas;
* :mod:`repro.frontends` -- the language plug-in protocol and registry: the
  campaign stack talks to every language through one interface, selected by
  ``--lang`` on the CLI;
* :mod:`repro.lang` -- the paper's WHILE toy language (Figure 4), a full
  campaign language with its own optimizing compiler-under-test;
* :mod:`repro.minic` -- a C-subset frontend (lexer, parser, scopes, types,
  pretty-printer, skeleton extraction, reference interpreter with
  undefined-behaviour detection);
* :mod:`repro.compiler` -- an optimizing compiler for the C subset used as
  the compiler-under-test substrate, including seeded-bug "versions";
* :mod:`repro.testing` -- the differential-testing campaign harness, bug
  classification/deduplication, test-case reduction, coverage measurement and
  the Orion-style mutation baseline;
* :mod:`repro.corpus` -- the synthetic c-torture-like corpus generator;
* :mod:`repro.experiments` -- drivers regenerating every table and figure of
  the paper's evaluation.

Quickstart::

    from repro import minic
    from repro.core.spe import SkeletonEnumerator

    source = '''
    int main() {
        int a = 1, b = 0;
        if (a) { int c = 3, d = 5; b = c + d; }
        return a + b;
    }
    '''
    skeleton = minic.extract_skeleton(source, name="example")
    enumerator = SkeletonEnumerator(skeleton)
    print(enumerator.count(), "canonical variants")
    for vector, program in enumerator.programs(limit=3):
        print(program)
"""

from repro.core import spe
from repro.core.holes import CharacteristicVector, Hole, Skeleton
from repro.core.problem import EnumerationProblem, Granularity
from repro.core.spe import EnumerationBudget, SkeletonEnumerator, SPEEnumerator

__version__ = "1.0.0"

__all__ = [
    "CharacteristicVector",
    "EnumerationBudget",
    "EnumerationProblem",
    "Granularity",
    "Hole",
    "SPEEnumerator",
    "Skeleton",
    "SkeletonEnumerator",
    "__version__",
    "spe",
]
