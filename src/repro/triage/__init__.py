"""Frontend-generic bug triage: ddmin reduction + version bisection.

The campaign stack's post-detection layer (paper Section 6): once the
differential oracle has *found* a bug, this package shrinks the triggering
program while preserving the bug's identity (:mod:`repro.triage.reduce`),
attributes it to the compiler release that introduced the fault
(:mod:`repro.triage.bisect`), and packages both as one engine the harness
and the ``repro triage`` CLI share (:mod:`repro.triage.engine`).  Everything
is language-agnostic: languages participate through the
:class:`~repro.frontends.base.Frontend` deletion-candidate hooks and the
registered compiler lineages of :mod:`repro.compiler.versions`.
"""

from repro.triage.bisect import BisectionOutcome, bisect_report
from repro.triage.engine import (
    REDUCE_POLICIES,
    TriageEngine,
    TriageOutcome,
    normalize_reduce_policy,
    policy_covers,
)
from repro.triage.predicate import BugPredicate, observation_dedup_key
from repro.triage.reduce import (
    PredicateCache,
    ReductionOutcome,
    ReductionStats,
    ddmin_reduce,
)

__all__ = [
    "BisectionOutcome",
    "BugPredicate",
    "PredicateCache",
    "REDUCE_POLICIES",
    "ReductionOutcome",
    "ReductionStats",
    "TriageEngine",
    "TriageOutcome",
    "bisect_report",
    "ddmin_reduce",
    "normalize_reduce_policy",
    "observation_dedup_key",
    "policy_covers",
]
