"""Chunked ddmin reduction over frontend deletion-candidate hooks.

The triage engine's reducer.  Where the legacy per-language reducers delete
one statement at a time and restart from scratch after every success (an
O(n^2) predicate-evaluation scan), this module runs Zeller-style delta
debugging (*ddmin*) over the indexed deletion candidates a frontend exposes
(:meth:`repro.frontends.base.Frontend.deletion_candidates` /
:meth:`~repro.frontends.base.Frontend.delete_candidates`):

1. partition the current program's candidate indices into ``k`` chunks;
2. **reduce to subset** -- try keeping only one chunk (deleting the whole
   complement), the big win early in a reduction;
3. **reduce to complement** -- try deleting one chunk at a time;
4. on success restart from the smaller program at coarse granularity, on
   failure double ``k`` until it reaches single-element granularity.

Every candidate program is validated by the frontend *before* the predicate
runs (invalid deletions are free), predicate results are cached by source
hash (:class:`PredicateCache`) so no program is ever evaluated twice across
reduction rounds -- or across the bisection that follows -- and each round's
candidate batch can be evaluated in parallel on any
:mod:`repro.testing.executor` backend (the predicate must then be picklable;
:class:`repro.triage.predicate.BugPredicate` is).

Frontends that do not implement the hooks (``deletion_candidates() == 0``)
fall back to their own :meth:`Frontend.reduce`, still predicate-cached, so
``reduce()`` is safe to call for every registered language.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.frontends import Frontend, get_frontend
from repro.testing.executor import SerialExecutor

Predicate = Callable[[str], bool]


@dataclass
class ReductionStats:
    """Bookkeeping of one reduction (the triage benchmark's raw material)."""

    predicate_evaluations: int = 0
    cache_hits: int = 0
    invalid_candidates: int = 0
    rounds: int = 0
    initial_bytes: int = 0
    final_bytes: int = 0

    def as_json(self) -> dict:
        return {
            "predicate_evaluations": self.predicate_evaluations,
            "cache_hits": self.cache_hits,
            "invalid_candidates": self.invalid_candidates,
            "rounds": self.rounds,
            "initial_bytes": self.initial_bytes,
            "final_bytes": self.final_bytes,
        }


@dataclass
class ReductionOutcome:
    """A reduced program plus how much work finding it took."""

    source: str
    stats: ReductionStats

    @property
    def reduced(self) -> bool:
        return self.stats.final_bytes < self.stats.initial_bytes


class PredicateCache:
    """Predicate results keyed by (predicate identity, source hash).

    The contract: a predicate presenting the same ``cache_tag`` must be a
    pure function of the source text, so a cached verdict substitutes for an
    evaluation anywhere in the triage pipeline -- across ddmin rounds,
    between reduction and bisection, and across the bugs of one campaign
    (different bugs carry different tags, so entries never collide).
    Predicates without a ``cache_tag`` (plain callables in tests) key by
    object identity, which still deduplicates within one reduction.
    """

    def __init__(self) -> None:
        self._verdicts: dict[tuple, bool] = {}
        self.hits = 0

    @staticmethod
    def _key(predicate, source: str) -> tuple:
        tag = getattr(predicate, "cache_tag", None)
        if tag is None:
            tag = id(predicate)
        return (tag, hashlib.sha256(source.encode()).hexdigest())

    def get(self, predicate, source: str) -> bool | None:
        verdict = self._verdicts.get(self._key(predicate, source))
        if verdict is not None:
            self.hits += 1
        return verdict

    def put(self, predicate, source: str, verdict: bool) -> None:
        self._verdicts[self._key(predicate, source)] = verdict

    def __len__(self) -> int:
        return len(self._verdicts)


class _Evaluator:
    """Cached, optionally parallel predicate evaluation."""

    def __init__(
        self,
        predicate: Predicate,
        cache: PredicateCache,
        stats: ReductionStats,
        executor=None,
    ) -> None:
        self.predicate = predicate
        self.cache = cache
        self.stats = stats
        self.executor = executor
        self._parallel = executor is not None and not isinstance(executor, SerialExecutor)

    def check(self, source: str) -> bool:
        cached = self.cache.get(self.predicate, source)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached
        verdict = bool(self.predicate(source))
        self.stats.predicate_evaluations += 1
        self.cache.put(self.predicate, source, verdict)
        return verdict

    def first_passing(self, candidates: Sequence[str | None]) -> str | None:
        """The first candidate satisfying the predicate, deterministically.

        ``None`` entries (invalid deletions) are free failures.  On a serial
        backend candidates are checked lazily in order (short-circuiting on
        the first pass); on a parallel backend the whole uncached batch is
        evaluated at once -- more predicate evaluations, less wall clock --
        and the winner is still the first passing candidate in batch order,
        so both modes reduce to the same program.
        """
        ordered: list[str] = []
        seen: set[str] = set()
        for candidate in candidates:
            if candidate is None:
                self.stats.invalid_candidates += 1
                continue
            if candidate in seen:
                continue
            seen.add(candidate)
            ordered.append(candidate)
        if not ordered:
            return None
        if self._parallel:
            verdicts: dict[str, bool] = {}
            unknown: list[str] = []
            for candidate in ordered:
                cached = self.cache.get(self.predicate, candidate)
                if cached is None:
                    unknown.append(candidate)
                else:
                    verdicts[candidate] = cached
                    self.stats.cache_hits += 1
            if unknown:
                results = self.executor.map(self.predicate, unknown)
                self.stats.predicate_evaluations += len(unknown)
                for candidate, verdict in zip(unknown, results):
                    verdicts[candidate] = bool(verdict)
                    self.cache.put(self.predicate, candidate, bool(verdict))
            for candidate in ordered:
                if verdicts[candidate]:
                    return candidate
            return None
        for candidate in ordered:
            if self.check(candidate):
                return candidate
        return None


def _chunks(count: int, parts: int) -> list[list[int]]:
    """Partition ``range(count)`` into ``parts`` near-equal contiguous chunks."""
    parts = max(1, min(parts, count))
    size, extra = divmod(count, parts)
    chunks: list[list[int]] = []
    start = 0
    for index in range(parts):
        stop = start + size + (1 if index < extra else 0)
        chunks.append(list(range(start, stop)))
        start = stop
    return chunks


def ddmin_reduce(
    frontend: str | Frontend,
    source: str,
    predicate: Predicate,
    *,
    executor=None,
    cache: PredicateCache | None = None,
    max_rounds: int = 200,
) -> ReductionOutcome:
    """Minimise ``source`` while ``predicate`` holds, ddmin-style.

    Returns the input unchanged (with zero-progress stats) when the
    predicate does not hold on it.  ``cache`` may be shared across calls --
    and with :func:`repro.triage.bisect.bisect_report` -- to pool predicate
    verdicts for one campaign's triage pass.
    """
    frontend = get_frontend(frontend)
    cache = cache if cache is not None else PredicateCache()
    stats = ReductionStats(initial_bytes=len(source), final_bytes=len(source))
    evaluator = _Evaluator(predicate, cache, stats, executor=executor)

    if not evaluator.check(source):
        return ReductionOutcome(source=source, stats=stats)

    count = frontend.deletion_candidates(source)
    if count == 0:
        # The frontend opted out of chunked ddmin (or the program exposes
        # nothing deletable): run its own reducer, still predicate-cached.
        reduced = frontend.reduce(source, evaluator.check)
        stats.final_bytes = len(reduced)
        return ReductionOutcome(source=reduced, stats=stats)

    current = source
    granularity = min(2, count)
    while count >= 1 and stats.rounds < max_rounds:
        stats.rounds += 1
        chunks = _chunks(count, granularity)
        indices = set(range(count))

        # Reduce to subset: keep one chunk, delete everything else.  Only
        # meaningful at granularity >= 2 (keeping the single chunk of a
        # 1-chunk partition deletes nothing).
        winner = None
        if len(chunks) >= 2:
            winner = evaluator.first_passing(
                [
                    frontend.delete_candidates(current, sorted(indices - set(chunk)))
                    for chunk in chunks
                ]
            )
            if winner is not None:
                current = winner
                count = frontend.deletion_candidates(current)
                granularity = min(2, count)
                continue

        # Reduce to complement: delete one chunk at a time.
        winner = evaluator.first_passing(
            [frontend.delete_candidates(current, chunk) for chunk in chunks]
        )
        if winner is not None:
            current = winner
            count = frontend.deletion_candidates(current)
            granularity = max(min(granularity - 1, count), min(2, count))
            continue

        if granularity >= count:
            break
        granularity = min(granularity * 2, count)

    stats.final_bytes = len(current)
    return ReductionOutcome(source=current, stats=stats)


__all__ = [
    "PredicateCache",
    "ReductionOutcome",
    "ReductionStats",
    "ddmin_reduce",
]
