"""The triage engine: reduce then bisect a campaign's deduplicated bugs.

One :class:`TriageEngine` owns the whole post-detection pipeline for a bug
database -- the paper's Section 6 practice of filing *reduced* programs
against the *introducing* release, as one frontend-generic pass:

1. **reduce** (:mod:`repro.triage.reduce`) -- chunked ddmin through the
   frontend's deletion-candidate hooks, preserving the report's dedup key
   (crash signature base / triggered-fault divergence signature), for every
   bug kind the policy selects (``"crash"`` mirrors the historical
   behaviour, ``"all"`` adds wrong-code and performance bugs);
2. **bisect** (:mod:`repro.triage.bisect`) -- attribute the reduced program
   to the lineage version that introduced the bug
   (:attr:`~repro.testing.bugs.BugReport.introduced_in`).

Both stages share one :class:`~repro.triage.reduce.PredicateCache`, so a
program evaluated during reduction is never re-evaluated during bisection of
the same configuration.  The engine mutates reports in place (the campaign
harness triages observations as bugs are filed; the ``repro triage`` CLI
triages a journaled database after the fact) and returns one
:class:`TriageOutcome` per report for journaling and display.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontends import Frontend, get_frontend
from repro.testing.bugs import BugDatabase, BugKind, BugReport
from repro.triage.bisect import bisect_report
from repro.triage.predicate import BugPredicate
from repro.triage.reduce import PredicateCache, ddmin_reduce

#: The reduction-policy knob's legal values (``CampaignConfig.reduce_bugs``
#: and the CLI's ``--reduce``).  Booleans map onto the historical meaning.
REDUCE_POLICIES = ("off", "crash", "all")


def normalize_reduce_policy(value) -> str:
    """Canonicalise a reduction policy (bools kept for backwards compat)."""
    if value is True:
        return "crash"
    if value is False or value is None:
        return "off"
    if value in REDUCE_POLICIES:
        return value
    raise ValueError(
        f"reduce policy must be one of {', '.join(REDUCE_POLICIES)} (or a bool), got {value!r}"
    )


def policy_covers(policy: str, kind: BugKind) -> bool:
    """Does a reduction policy select this bug kind?"""
    if policy == "all":
        return True
    return policy == "crash" and kind is BugKind.CRASH


@dataclass
class TriageOutcome:
    """What triaging one bug report did (journaled as a ``triage`` record)."""

    bug_id: str
    kind: str
    reduced: bool
    original_bytes: int
    reduced_bytes: int
    predicate_evaluations: int
    cache_hits: int
    introduced_in: str | None
    reduced_program: str | None = None

    def summary_line(self) -> str:
        size = f"{self.original_bytes}B"
        if self.reduced:
            size = f"{self.original_bytes}B -> {self.reduced_bytes}B"
        attribution = (
            f"introduced_in={self.introduced_in}" if self.introduced_in else "introduced_in=?"
        )
        return (
            f"[{self.bug_id}] {self.kind:>11} {size:<16} "
            f"evals={self.predicate_evaluations:<4} {attribution}"
        )


class TriageEngine:
    """Reduce and bisect the reports of one campaign's bug database."""

    def __init__(
        self,
        frontend: str | Frontend,
        *,
        reduce_policy: str = "all",
        bisect: bool = True,
        executor=None,
        machine_bits: int = 64,
        cache: PredicateCache | None = None,
    ) -> None:
        self._frontend = get_frontend(frontend)
        self.reduce_policy = normalize_reduce_policy(reduce_policy)
        self.bisect = bisect
        self.executor = executor
        self.machine_bits = machine_bits
        self.cache = cache if cache is not None else PredicateCache()

    def triage_report(self, report: BugReport) -> TriageOutcome:
        """Reduce and/or bisect one report, mutating it in place."""
        original = report.test_program
        evaluations = 0
        hits = 0
        reduced = False
        if policy_covers(self.reduce_policy, report.kind) and report.test_program:
            predicate = BugPredicate.from_report(
                report, self._frontend.name, machine_bits=self.machine_bits
            )
            outcome = ddmin_reduce(
                self._frontend,
                report.test_program,
                predicate,
                executor=self.executor,
                cache=self.cache,
            )
            evaluations += outcome.stats.predicate_evaluations
            hits += outcome.stats.cache_hits
            if outcome.reduced:
                report.test_program = outcome.source
                reduced = True
        introduced = report.introduced_in
        if self.bisect and introduced is None:
            bisection = bisect_report(
                report,
                self._frontend.name,
                machine_bits=self.machine_bits,
                cache=self.cache,
            )
            evaluations += bisection.predicate_evaluations
            hits += bisection.cache_hits
            introduced = bisection.introduced_in
            report.introduced_in = introduced
        return TriageOutcome(
            bug_id=report.id,
            kind=report.kind.value,
            reduced=reduced,
            original_bytes=len(original),
            reduced_bytes=len(report.test_program),
            predicate_evaluations=evaluations,
            cache_hits=hits,
            introduced_in=introduced,
            reduced_program=report.test_program if reduced else None,
        )

    def triage_database(self, bugs: BugDatabase) -> list[TriageOutcome]:
        """Triage every report (canonical order, so output is deterministic)."""
        bugs.sort()
        return [self.triage_report(report) for report in bugs.reports]


__all__ = [
    "REDUCE_POLICIES",
    "TriageEngine",
    "TriageOutcome",
    "normalize_reduce_policy",
    "policy_covers",
]
