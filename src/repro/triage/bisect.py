"""Compiler-version bisection: which release introduced this bug?

The paper files bugs against compiler *versions*; our simulated lineages
(:mod:`repro.compiler.versions`) order every lineage's releases oldest
first, and every seeded fault occupies a contiguous ``introduced_in ..
fixed_in`` range of that order.  That containment is exactly the
monotonicity binary search needs: walking the lineage from its oldest
release to the release the bug was observed on, the predicate "this program
still reproduces the same deduplicated bug" flips from False to True exactly
once -- at the introducing release.

:func:`bisect_report` runs that search in O(log versions) predicate
evaluations, sharing the triage pass's :class:`~repro.triage.reduce.
PredicateCache` so a verdict needed by both reduction and bisection is paid
for once.  Bisection runs on the report's (ideally already reduced)
``test_program``, mirroring the paper's practice of bisecting the minimised
trigger.

Caveat -- attribution is of the *witness*: like ``git bisect`` on a real
trigger program, the search answers "which release does **this program**
first reproduce the deduplicated bug on?".  When another fault masks the
bug in older releases (e.g. the witness crashes a frontend check there, so
the expected dedup key cannot be observed), the witness's first-reproducing
version is later than the fault's registered introduction -- and two
different witnesses of the same bug can attribute differently.  Single-
fault witnesses are monotone by construction (every seeded fault occupies
one contiguous version range); disagreements between witnesses are resolved
deterministically at merge time (earliest version in lineage order wins,
see :mod:`repro.testing.bugs`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.compiler.versions import lineage_versions
from repro.testing.bugs import BugReport
from repro.triage.predicate import BugPredicate
from repro.triage.reduce import PredicateCache, ReductionStats, _Evaluator


@dataclass
class BisectionOutcome:
    """The attributed version plus the work the search spent."""

    introduced_in: str | None
    predicate_evaluations: int = 0
    cache_hits: int = 0


def bisect_report(
    report: BugReport,
    frontend: str,
    *,
    machine_bits: int = 64,
    cache: PredicateCache | None = None,
) -> BisectionOutcome:
    """Attribute ``report`` to the lineage version that introduced its bug.

    Returns ``introduced_in=None`` when attribution is impossible: the
    report's compiler is not part of a registered lineage order, or its
    ``test_program`` no longer reproduces the bug even on the version it was
    filed against (nothing trustworthy to search with).
    """
    cache = cache if cache is not None else PredicateCache()
    stats = ReductionStats()
    order = lineage_versions(report.lineage)
    if report.compiler not in order:
        return BisectionOutcome(introduced_in=None)
    base = BugPredicate.from_report(report, frontend, machine_bits=machine_bits)

    def holds(version: str) -> bool:
        # One cached evaluator per version (the predicate's cache_tag embeds
        # the version, so entries never collide); cache and stats are shared
        # with the whole triage pass.
        evaluator = _Evaluator(replace(base, version=version), cache, stats)
        return evaluator.check(report.test_program)

    observed = order.index(report.compiler)
    if not holds(order[observed]):
        return BisectionOutcome(
            introduced_in=None,
            predicate_evaluations=stats.predicate_evaluations,
            cache_hits=stats.cache_hits,
        )
    if holds(order[0]):
        introduced = order[0]
    else:
        # Invariant: holds(order[low]) is False, holds(order[high]) is True.
        low, high = 0, observed
        while high - low > 1:
            mid = (low + high) // 2
            if holds(order[mid]):
                high = mid
            else:
                low = mid
        introduced = order[high]
    return BisectionOutcome(
        introduced_in=introduced,
        predicate_evaluations=stats.predicate_evaluations,
        cache_hits=stats.cache_hits,
    )


__all__ = ["BisectionOutcome", "bisect_report"]
