"""Bug-preserving predicates: "does this program still trigger *that* bug?"

A :class:`BugPredicate` is the interestingness test the triage engine
minimises and bisects against.  It is deliberately a small frozen dataclass
of plain values (frontend registry name, compiler version, opt level,
expected dedup key) so it pickles cleanly into executor worker processes --
the parallel ddmin reducer ships ``(predicate, candidate_source)`` pairs
through the same :mod:`repro.testing.executor` backends the campaign uses.

"Same bug" is defined exactly as the campaign's deduplication defines it
(:meth:`repro.testing.bugs.BugDatabase._dedup_key`):

* **crash** -- same lineage and crash-signature base (the per-program detail
  suffix is stripped), i.e. signature-preserving reduction;
* **wrong code / performance** -- same lineage and set of triggered seeded
  faults (the divergence signature), falling back to the source name when a
  fault id is unavailable.

So a reduced program is accepted iff filing it would deduplicate into the
original report -- ``bug_id`` is derived from the dedup key alone, which is
what makes "the reduced program still reproduces the same ``bug_id``" a
checkable property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.versions import get_version
from repro.testing.bugs import BugDatabase, BugKind, BugReport
from repro.testing.oracle import DifferentialOracle, Observation

#: Per-process oracle cache: predicates are recreated freely (dataclass
#: ``replace`` during bisection, pickling into workers), but an oracle per
#: configuration is enough -- construction builds both executor halves.
_ORACLES: dict[tuple[str, str, int, int], DifferentialOracle] = {}


def _oracle(
    frontend: str,
    version: str,
    opt_level: int,
    machine_bits: int,
    verify_ir: str = "off",
) -> DifferentialOracle:
    key = (frontend, version, opt_level, machine_bits, verify_ir)
    oracle = _ORACLES.get(key)
    if oracle is None:
        oracle = DifferentialOracle(
            version=version,
            opt_level=opt_level,
            machine_bits=machine_bits,
            frontend=frontend,
            verify_ir=verify_ir,
        )
        _ORACLES[key] = oracle
    return oracle


def _policy_for_kind(kind: BugKind) -> str:
    """The ``verify_ir`` policy a predicate for this bug kind needs."""
    return "bugs" if kind is BugKind.ILL_FORMED_IR else "off"


def observation_dedup_key(observation: Observation) -> tuple | None:
    """The bug-database dedup key an observation would file under (None if not a bug)."""
    if not observation.is_bug:
        return None
    kind = BugKind.from_observation(observation.kind)
    lineage = get_version(observation.compiler).lineage
    return BugDatabase._dedup_key(observation, kind, lineage)


@dataclass(frozen=True)
class BugPredicate:
    """True iff a program reproduces one specific deduplicated bug.

    Picklable by construction: only registry names and plain values.  The
    oracle is resolved lazily per process through a module-level cache.
    """

    frontend: str
    version: str
    opt_level: int
    machine_bits: int
    source_name: str
    expected_key: tuple = field(default=())
    #: Between-pass verification policy for the predicate's oracle.  Only
    #: ``ill-formed-ir`` bugs need it on -- their symptom is invisible to an
    #: unverified compilation -- and keeping it ``"off"`` for every other
    #: kind preserves the historical predicate behaviour exactly.
    verify_ir: str = "off"

    @property
    def cache_tag(self) -> tuple:
        """Identity for predicate-result caching (see :mod:`repro.triage.reduce`)."""
        return (
            self.frontend,
            self.version,
            self.opt_level,
            self.machine_bits,
            self.expected_key,
            self.verify_ir,
        )

    def observe(self, source: str) -> Observation:
        return _oracle(
            self.frontend, self.version, self.opt_level, self.machine_bits, self.verify_ir
        ).observe(source, name=self.source_name)

    def __call__(self, source: str) -> bool:
        return observation_dedup_key(self.observe(source)) == self.expected_key

    # -- constructors -------------------------------------------------------

    @staticmethod
    def from_observation(
        observation: Observation, frontend: str, machine_bits: int = 64
    ) -> "BugPredicate":
        key = observation_dedup_key(observation)
        if key is None:
            raise ValueError("cannot build a bug predicate from a non-bug observation")
        return BugPredicate(
            frontend=frontend,
            version=observation.compiler,
            opt_level=int(observation.opt_level),
            machine_bits=machine_bits,
            source_name=observation.source_name,
            expected_key=key,
            verify_ir=_policy_for_kind(BugKind.from_observation(observation.kind)),
        )

    @staticmethod
    def from_report(report: BugReport, frontend: str, machine_bits: int = 64) -> "BugPredicate":
        key = report.dedup_key
        if key is None:  # reports predating the stored key: best-effort rebuild
            key = BugDatabase._key_from_report(report)
        return BugPredicate(
            frontend=frontend,
            version=report.compiler,
            opt_level=int(report.opt_level),
            machine_bits=machine_bits,
            source_name=report.source_name,
            expected_key=key,
            verify_ir=_policy_for_kind(report.kind),
        )


__all__ = ["BugPredicate", "observation_dedup_key"]
