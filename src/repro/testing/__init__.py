"""The compiler-testing harness: differential testing of enumerated programs.

The whole package is language-agnostic: parsing, reference interpretation,
the executor pair and reduction are reached through the frontend plug-in
protocol (:mod:`repro.frontends`), selected by ``CampaignConfig.frontend``.

* :mod:`repro.testing.oracle` -- test one program against one compiler
  configuration: crash detection, UB filtering via the reference interpreter,
  wrong-code detection by comparing observable behaviour;
* :mod:`repro.testing.bugs` -- bug records, deduplication by signature, and
  the classification summaries Tables 3/4 and Figure 10 report;
* :mod:`repro.testing.harness` -- the campaign driver: plan index-range work
  shards over many skeletons (SPE or naive, prefix or uniform sample), test
  each variant against a matrix of compiler configurations, and merge the
  shard results;
* :mod:`repro.testing.executor` -- pluggable shard execution backends
  (serial, process pool);
* :mod:`repro.testing.coverage` -- pass-event coverage measurement
  (the Figure 9 metric);
* :mod:`repro.testing.mutation` -- the Orion-style statement-deletion
  baseline (PM-X in Figure 9);
* :mod:`repro.testing.reducer` -- delta-debugging reduction of bug-triggering
  programs before "reporting" them.
"""

from repro.testing.bugs import BugDatabase, BugKind, BugReport
from repro.testing.executor import ProcessPoolExecutor, SerialExecutor, default_executor
from repro.testing.harness import (
    Campaign,
    CampaignConfig,
    CampaignInterrupted,
    CampaignPlan,
    CampaignResult,
    CampaignShard,
    ChaosError,
    ChaosSpec,
    ShardUnit,
    UnitExecutionError,
    test_program,
)
from repro.testing.oracle import DifferentialOracle, Observation, ObservationKind
from repro.testing.reducer import reduce_program

__all__ = [
    "BugDatabase",
    "BugKind",
    "BugReport",
    "Campaign",
    "CampaignConfig",
    "CampaignInterrupted",
    "CampaignPlan",
    "CampaignResult",
    "CampaignShard",
    "ChaosError",
    "ChaosSpec",
    "DifferentialOracle",
    "Observation",
    "ObservationKind",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "ShardUnit",
    "UnitExecutionError",
    "default_executor",
    "reduce_program",
    "test_program",
]
