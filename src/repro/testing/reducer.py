"""Test-case reduction by statement-level delta debugging.

Before "filing" a bug the campaign reduces the triggering program: it
repeatedly deletes statements (and then unused declarations) while the given
predicate -- "compiler X still crashes with this signature" or "still
miscompiles" -- keeps holding.  This is a small, greedy cousin of C-Reduce /
Berkeley Delta (paper Section 6), sufficient for the single-file programs SPE
produces.

This module is the mini-C reducer; the campaign harness routes reduction
through the frontend protocol, which lands here for mini-C and in
:mod:`repro.lang.reduce` for WHILE.  Two entry surfaces coexist:

* :func:`reduce_program` -- the legacy greedy loop (restart from the smaller
  program after every successful deletion), kept as the baseline the triage
  benchmarks compare against and as the fallback for frontends without
  deletion-candidate hooks;
* :func:`deletion_candidates` / :func:`delete_candidates` -- the
  deletion-candidate hooks backing the chunked ddmin reducer of
  :mod:`repro.triage.reduce`.  A candidate index names either a statement
  position inside some block (in pre-order walk order) or, after those, a
  global declaration.  Multi-element deletion lets ddmin cut whole chunks
  per predicate evaluation instead of one statement at a time.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.minic import ast
from repro.minic.errors import MiniCError
from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.minic.symbols import resolve

Predicate = Callable[[str], bool]


def _candidate_deletions(unit: ast.TranslationUnit) -> list[tuple[ast.Block, int]]:
    """All (block, index) positions whose statement could be deleted."""
    positions: list[tuple[ast.Block, int]] = []
    for node in unit.walk():
        if isinstance(node, ast.Block):
            for index in range(len(node.items)):
                positions.append((node, index))
    return positions


def _global_decl_positions(unit: ast.TranslationUnit) -> list[int]:
    """Indices into ``unit.decls`` holding removable global declarations."""
    return [
        index
        for index, decl in enumerate(unit.decls)
        if isinstance(decl, ast.DeclStmt)
    ]


def _try_render(unit: ast.TranslationUnit) -> str | None:
    try:
        rendered = to_source(unit)
        check = parse(rendered)
        resolve(check)
        return rendered
    except MiniCError:
        return None


def _parse_resolved(source: str) -> ast.TranslationUnit | None:
    try:
        unit = parse(source)
        resolve(unit)
        return unit
    except MiniCError:
        return None


# -- deletion-candidate hooks (the ddmin surface) -------------------------------


def deletion_candidates(source: str) -> int:
    """Count the deletable elements of ``source`` (statements, then globals)."""
    unit = _parse_resolved(source)
    if unit is None:
        return 0
    return len(_candidate_deletions(unit)) + len(_global_decl_positions(unit))


def delete_candidates(source: str, indices: Sequence[int]) -> str | None:
    """Render ``source`` with the indexed deletable elements removed.

    Indices follow the order :func:`deletion_candidates` counts in: block
    statements first (pre-order), then global declarations.  Returns ``None``
    when nothing was removed or the result does not parse and resolve.
    """
    unit = _parse_resolved(source)
    if unit is None:
        return None
    positions = _candidate_deletions(unit)
    decl_positions = _global_decl_positions(unit)
    total = len(positions) + len(decl_positions)

    by_block: dict[int, tuple[ast.Block, list[int]]] = {}
    decl_victims: list[int] = []
    for index in set(indices):
        if not 0 <= index < total:
            return None
        if index < len(positions):
            block, item_index = positions[index]
            by_block.setdefault(id(block), (block, []))[1].append(item_index)
        else:
            decl_victims.append(decl_positions[index - len(positions)])
    if not by_block and not decl_victims:
        return None
    # Delete within each block in descending item order so earlier indices
    # stay valid; blocks are independent objects, so block order is free.
    for block, item_indices in by_block.values():
        for item_index in sorted(item_indices, reverse=True):
            del block.items[item_index]
    for decl_index in sorted(decl_victims, reverse=True):
        del unit.decls[decl_index]
    rendered = _try_render(unit)
    if rendered == source:
        return None
    return rendered


# -- the legacy greedy reducer ---------------------------------------------------


def reduce_program(source: str, predicate: Predicate, max_rounds: int = 25) -> str:
    """Greedily minimise ``source`` while ``predicate(source)`` stays true.

    The input program is returned unchanged if it does not satisfy the
    predicate (nothing to preserve) or cannot be parsed.
    """
    try:
        current_unit = parse(source)
        resolve(current_unit)
    except MiniCError:
        return source
    if not predicate(source):
        return source

    current_source = source
    for _ in range(max_rounds):
        changed = False
        unit = parse(current_source)
        resolve(unit)
        positions = _candidate_deletions(unit)
        for position_index in range(len(positions)):
            trial_unit = parse(current_source)
            resolve(trial_unit)
            trial_positions = _candidate_deletions(trial_unit)
            if position_index >= len(trial_positions):
                continue
            block, index = trial_positions[position_index]
            if index >= len(block.items):
                continue
            del block.items[index]
            rendered = _try_render(trial_unit)
            if rendered is None or rendered == current_source:
                continue
            if predicate(rendered):
                current_source = rendered
                changed = True
                break  # restart from the smaller program
        if not changed:
            break

    current_source = _drop_unused_globals(current_source, predicate)
    return current_source


def _drop_unused_globals(source: str, predicate: Predicate) -> str:
    """Remove global declarations one at a time while the predicate holds.

    The index only advances past declarations that could *not* be removed:
    after a successful removal the next declaration slides into the freed
    slot, so advancing would skip it (the historical bug that left every
    second removable global behind).
    """
    if _parse_resolved(source) is None:
        return source
    current = source
    decl_index = 0
    while True:
        trial = _parse_resolved(current)
        if trial is None:
            return current
        if decl_index >= len(trial.decls):
            break
        if not isinstance(trial.decls[decl_index], ast.DeclStmt):
            decl_index += 1
            continue
        del trial.decls[decl_index]
        rendered = _try_render(trial)
        if rendered is not None and rendered != current and predicate(rendered):
            current = rendered
            continue  # same index: the next decl slid into this slot
        decl_index += 1
    return current


__all__ = [
    "delete_candidates",
    "deletion_candidates",
    "reduce_program",
]
