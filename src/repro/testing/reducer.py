"""Test-case reduction by statement-level delta debugging.

Before "filing" a bug the campaign reduces the triggering program: it
repeatedly deletes statements (and then unused declarations) while the given
predicate -- "compiler X still crashes with this signature" or "still
miscompiles" -- keeps holding.  This is a small, greedy cousin of C-Reduce /
Berkeley Delta (paper Section 6), sufficient for the single-file programs SPE
produces.

This module is the mini-C reducer; the campaign harness routes reduction
through the frontend protocol (``frontend.reduce(source, predicate)``),
which lands here for mini-C and in :mod:`repro.lang.reduce` for WHILE.
"""

from __future__ import annotations

import copy
from typing import Callable

from repro.minic import ast
from repro.minic.errors import MiniCError
from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.minic.symbols import resolve

Predicate = Callable[[str], bool]


def _candidate_deletions(unit: ast.TranslationUnit) -> list[tuple[ast.Block, int]]:
    """All (block, index) positions whose statement could be deleted."""
    positions: list[tuple[ast.Block, int]] = []
    for node in unit.walk():
        if isinstance(node, ast.Block):
            for index in range(len(node.items)):
                positions.append((node, index))
    return positions


def _try_render(unit: ast.TranslationUnit) -> str | None:
    try:
        rendered = to_source(unit)
        check = parse(rendered)
        resolve(check)
        return rendered
    except MiniCError:
        return None


def reduce_program(source: str, predicate: Predicate, max_rounds: int = 25) -> str:
    """Greedily minimise ``source`` while ``predicate(source)`` stays true.

    The input program is returned unchanged if it does not satisfy the
    predicate (nothing to preserve) or cannot be parsed.
    """
    try:
        current_unit = parse(source)
        resolve(current_unit)
    except MiniCError:
        return source
    if not predicate(source):
        return source

    current_source = source
    for _ in range(max_rounds):
        changed = False
        unit = parse(current_source)
        resolve(unit)
        positions = _candidate_deletions(unit)
        for position_index in range(len(positions)):
            trial_unit = parse(current_source)
            resolve(trial_unit)
            trial_positions = _candidate_deletions(trial_unit)
            if position_index >= len(trial_positions):
                continue
            block, index = trial_positions[position_index]
            if index >= len(block.items):
                continue
            del block.items[index]
            rendered = _try_render(trial_unit)
            if rendered is None or rendered == current_source:
                continue
            if predicate(rendered):
                current_source = rendered
                changed = True
                break  # restart from the smaller program
        if not changed:
            break

    current_source = _drop_unused_globals(current_source, predicate)
    return current_source


def _drop_unused_globals(source: str, predicate: Predicate) -> str:
    """Remove global declarations one at a time while the predicate holds."""
    try:
        unit = parse(source)
        resolve(unit)
    except MiniCError:
        return source
    current = source
    for decl_index in range(len(unit.decls)):
        trial = parse(current)
        try:
            resolve(trial)
        except MiniCError:
            return current
        if decl_index >= len(trial.decls):
            break
        if not isinstance(trial.decls[decl_index], ast.DeclStmt):
            continue
        removed = trial.decls[decl_index]
        trial.decls.remove(removed)
        rendered = _try_render(trial)
        if rendered is not None and predicate(rendered):
            current = rendered
    return current


__all__ = ["reduce_program"]
