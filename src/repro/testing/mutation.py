"""Orion-style program mutation: statement deletion in dead regions.

The paper compares SPE's coverage gains against Orion (Le et al., PLDI 2014),
which mutates a program by deleting statements from *unexecuted* (dead)
regions -- the mutant is equivalent modulo the original input, so it can also
be used for differential testing.

``OrionMutator`` profiles the seed with the reference interpreter to find
statements that never execute, then produces mutants that delete random
subsets of up to ``deletions`` of those statements (PM-10/PM-20/PM-30 in
Figure 9 delete up to 10/20/30 statements).  The randomness is seeded so
experiments are reproducible.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass

from repro.minic import ast
from repro.minic.errors import MiniCError
from repro.minic.interp import Interpreter
from repro.minic.parser import parse
from repro.minic.printer import to_source
from repro.minic.symbols import resolve


def _deletable_statements(unit: ast.TranslationUnit) -> list[ast.Stmt]:
    """Statements that can be removed without leaving dangling syntax.

    Declarations are kept (removing them would orphan later uses); labels are
    kept (a goto may target them); everything else inside a Block's item list
    is fair game.
    """
    candidates: list[ast.Stmt] = []
    for node in unit.walk():
        if isinstance(node, ast.Block):
            for item in node.items:
                if isinstance(item, (ast.DeclStmt, ast.Label)):
                    continue
                candidates.append(item)
    return candidates


@dataclass
class OrionMutator:
    """Generate EMI mutants of a seed program by deleting dead statements."""

    deletions: int = 10
    seed: int = 0
    attempts_per_mutant: int = 4

    def dead_statements(self, unit: ast.TranslationUnit) -> list[ast.Stmt]:
        """Statements of ``unit`` that the reference execution never reaches."""
        interpreter = Interpreter()
        interpreter.run(unit)
        executed = interpreter.executed_statements
        return [stmt for stmt in _deletable_statements(unit) if id(stmt) not in executed]

    def _dead_positions(self, unit: ast.TranslationUnit) -> list[int]:
        """Indices of dead statements within the deletable-statement order.

        Positions survive ``copy.deepcopy``: the copy's deletable statements
        enumerate in the same deterministic walk order, so one profiling run
        of the seed maps onto every mutant copy by index.
        """
        dead = {id(stmt) for stmt in self.dead_statements(unit)}
        return [
            index
            for index, stmt in enumerate(_deletable_statements(unit))
            if id(stmt) in dead
        ]

    def mutants(self, source: str, count: int = 10) -> list[str]:
        """Produce up to ``count`` distinct mutants of ``source``.

        Returns fewer mutants (possibly none) when the seed has no dead
        statements to delete or when deletion produces an invalid program.
        The seed's dead-statement set is invariant (profiling runs the
        *unmutated* program), so it is profiled exactly once and mapped into
        each mutant copy by position -- the attempt loop used to re-run the
        full reference interpreter per attempt for the identical answer.
        """
        rng = random.Random(self.seed)
        try:
            unit = parse(source)
            resolve(unit)
        except MiniCError:
            return []

        dead_positions = self._dead_positions(unit)
        if not dead_positions:
            return []
        produced: list[str] = []
        seen: set[str] = set()
        for _ in range(count * self.attempts_per_mutant):
            if len(produced) >= count:
                break
            mutant_unit = copy.deepcopy(unit)
            candidates = _deletable_statements(mutant_unit)
            dead = [candidates[index] for index in dead_positions]
            how_many = rng.randint(1, min(self.deletions, len(dead)))
            victims = {id(stmt) for stmt in rng.sample(dead, how_many)}
            self._delete(mutant_unit, victims)
            try:
                rendered = to_source(mutant_unit)
                check = parse(rendered)
                resolve(check)
            except MiniCError:
                continue
            if rendered not in seen and rendered.strip() != source.strip():
                seen.add(rendered)
                produced.append(rendered)
        return produced

    @staticmethod
    def _delete(unit: ast.TranslationUnit, victims: set[int]) -> None:
        for node in unit.walk():
            if isinstance(node, ast.Block):
                node.items = [item for item in node.items if id(item) not in victims]
            elif isinstance(node, ast.If):
                if node.else_branch is not None and id(node.else_branch) in victims:
                    node.else_branch = None
                if id(node.then_branch) in victims:
                    node.then_branch = ast.Empty()
            elif isinstance(node, (ast.While, ast.DoWhile, ast.For)):
                if id(node.body) in victims:
                    node.body = ast.Empty()


__all__ = ["OrionMutator"]
