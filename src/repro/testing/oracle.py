"""The differential oracle.

Given one program and one compiler configuration it produces an
:class:`Observation`.  The oracle is language-agnostic: it resolves its
``frontend`` through :mod:`repro.frontends` and talks to the language only
through the protocol -- the frontend supplies the executor pair (the
compiler under test and its fault-free reference sibling) and the reference
interpreter.  Possible observations:

* ``CRASH`` -- the compiler raised an internal compiler error;
* ``WRONG_CODE`` -- the program is UB-free according to the reference
  interpreter, the compiler accepted it, and the produced code's observable
  behaviour (exit code, stdout) differs from the interpreter's;
* ``PERFORMANCE`` -- compilation "effort" exceeded the configured multiple of
  the reference compiler's effort on the same program (the stand-in for the
  paper's compile-time-hang reports);
* ``OK`` -- nothing suspicious;
* ``SKIPPED`` -- the program has undefined behaviour, does not terminate, or
  was legitimately rejected, so no wrong-code judgement is possible
  (compiler crashes are still reported for such programs, exactly as in the
  paper where crash bugs do not require UB-freedom).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.compiler.driver import CompileOutcome
from repro.compiler.pipeline import OptimizationLevel
from repro.core.execution import ExecutionResult, ExecutionStatus
from repro.core.holes import BoundVariant
from repro.frontends import Frontend, get_frontend


class ObservationKind(enum.Enum):
    OK = "ok"
    CRASH = "crash"
    WRONG_CODE = "wrong code"
    PERFORMANCE = "performance"
    SKIPPED = "skipped"
    #: The between-pass IR verifier caught a structural invariant violation
    #: (only observable when the campaign's ``verify_ir`` policy is on).
    ILL_FORMED_IR = "ill-formed ir"


@dataclass
class Observation:
    """The outcome of testing one program against one compiler configuration."""

    kind: ObservationKind
    program: str
    source_name: str
    compiler: str
    opt_level: OptimizationLevel
    signature: str = ""
    detail: str = ""
    reference_behaviour: tuple | None = None
    compiled_behaviour: tuple | None = None
    outcome: CompileOutcome | None = None
    triggered_faults: list[str] = field(default_factory=list)

    @property
    def is_bug(self) -> bool:
        return self.kind in (
            ObservationKind.CRASH,
            ObservationKind.WRONG_CODE,
            ObservationKind.PERFORMANCE,
            ObservationKind.ILL_FORMED_IR,
        )


@dataclass
class DifferentialOracle:
    """Tests programs against one compiler configuration.

    Args:
        version: simulated compiler version name (see
            :func:`repro.compiler.versions.available_versions`).
        opt_level: optimization level to compile at.
        machine_bits: 32 or 64; only diversifies the configuration label.
        interp_max_steps: reference-interpreter budget.
        performance_ratio: a compilation whose effort exceeds
            ``performance_ratio`` times the reference compiler's effort on the
            same program is reported as a performance bug.
        frontend: the language plug-in (a registry name or a
            :class:`~repro.frontends.base.Frontend` instance) supplying the
            executors and the reference interpreter.
        shared_module_cache: an optional campaign-scoped VM-result cache,
            shared by every oracle of a configuration matrix and keyed by
            optimized-module *content* (sha) rather than per-variant
            identity -- so any two compilations in the whole campaign that
            produce the same module at the same budget share one VM run.
            ``None`` (the default) keeps the legacy per-variant cache.
    """

    version: str = "scc-trunk"
    opt_level: OptimizationLevel | int = OptimizationLevel.O2
    machine_bits: int = 64
    interp_max_steps: int = 200_000
    performance_ratio: float = 10.0
    frontend: "str | Frontend" = "minic"
    shared_module_cache: dict | None = None
    #: Optional campaign-scoped hit/miss counters (flat ``str -> int``); the
    #: harness shares one dict across its whole oracle matrix so the CLI and
    #: benchmarks can report cache effectiveness.  Purely observational.
    cache_stats: dict | None = None
    #: Between-pass IR verification policy: ``"off"`` (never verify -- the
    #: pre-verifier behaviour, byte for byte), ``"bugs"`` (verify the
    #: compiler under test; the fault-free reference sibling cannot violate
    #: and is skipped) or ``"always"`` (verify both executors).
    verify_ir: str = "off"

    #: Legal ``verify_ir`` values.
    VERIFY_POLICIES = ("off", "bugs", "always")

    #: Bound on a shared module cache (entries, FIFO eviction).  Module
    #: texts are not stored -- only (budget, bits, sha) keys and
    #: ExecutionResults -- so the worst case is a few tens of megabytes.
    SHARED_CACHE_ENTRIES = 65536

    def __post_init__(self) -> None:
        self.opt_level = OptimizationLevel(int(self.opt_level))
        self._frontend = get_frontend(self.frontend)
        self._compiler = self._frontend.executor(
            self.version, self.opt_level, machine_bits=self.machine_bits
        )
        self._reference = self._frontend.executor(
            self._frontend.reference_version, self.opt_level, machine_bits=self.machine_bits
        )
        if self.verify_ir not in self.VERIFY_POLICIES:
            raise ValueError(
                f"verify_ir must be one of {', '.join(self.VERIFY_POLICIES)}, "
                f"got {self.verify_ir!r}"
            )
        self._compiler.verify_ir = self.verify_ir in ("bugs", "always")
        self._reference.verify_ir = self.verify_ir == "always"

    def enable_pipeline_cache(self, cache) -> None:
        """Wire a campaign-scoped pipeline-outcome cache into both executors.

        ``cache`` is a :class:`repro.compiler.driver.PipelineCache`; both the
        compiler under test and its reference sibling key their entries by
        their own ``(version, opt_level, machine_bits)``, so one shared cache
        serves the whole configuration matrix.
        """
        self._compiler.pipeline_cache = cache
        self._reference.pipeline_cache = cache

    # -- main entry point -----------------------------------------------------------

    def observe(
        self,
        source: str,
        name: str = "<program>",
        reference_result: ExecutionResult | None = None,
    ) -> Observation:
        """Test one program from source text; never raises.

        Args:
            source: the program to test.
            name: label used in observations and bug reports.
            reference_result: a pre-computed reference-interpreter result for
                ``source`` (the campaign harness computes it once per variant
                and shares it across the compiler-configuration matrix).
        """
        outcome = self._compiler.compile_source(source, name=name)
        return self._classify(
            outcome,
            name,
            reference_result,
            program=source,
            bug_program=lambda: source,
            reference_compile=lambda: self._reference.compile_source(source, name=name),
            reference_run=lambda: self._frontend.run_reference_source(
                source, max_steps=self.interp_max_steps
            ),
            execute=lambda: self._run_module(outcome),
        )

    def observe_variant(
        self,
        variant: BoundVariant,
        name: str = "<program>",
        reference_result: ExecutionResult | None = None,
    ) -> Observation:
        """Test one bound variant through the parse-once fast path.

        The variant's AST is compiled directly (shared lowering, cloned per
        configuration -- see :meth:`Compiler.compile_variant`) and the
        reference interpreter, when needed, runs on the same rebound AST.
        Source text is rendered only for observations that file a bug;
        OK/SKIPPED observations carry an empty ``program``.
        """
        outcome = self._compiler.compile_variant(variant, name=name)
        return self._classify(
            outcome,
            name,
            reference_result,
            program="",
            bug_program=lambda: variant.source,
            reference_compile=lambda: self._reference.compile_variant(variant, name=name),
            reference_run=lambda: self._frontend.run_reference_variant(
                variant, max_steps=self.interp_max_steps
            ),
            execute=lambda: self._run_shared(outcome, variant),
        )

    def _run_shared(self, outcome: CompileOutcome, variant: BoundVariant) -> ExecutionResult:
        """Run the produced code, sharing results for identical modules.

        Different configurations of the matrix frequently produce
        bit-identical optimized modules for the same variant (always at -O0,
        and at higher levels whenever no version-specific fault perturbed a
        pass).  The VM is deterministic in the module text and step budget,
        so such runs are executed once and shared via the variant's cache --
        or, when the campaign wires up a :attr:`shared_module_cache`,
        shared campaign-wide by module content hash, which additionally
        dedups *across variants*: many characteristic vectors of one
        skeleton lower to the same optimized module.
        """
        if self.shared_module_cache is not None:
            return self._run_module(outcome)
        cache = variant.cache.setdefault("vm_results", {})
        key = (self._compiler.vm_max_steps, str(outcome.module))
        result = cache.get(key)
        if result is None:
            result = self._compiler.run(outcome)
            cache[key] = result
        return result

    def _run_module(self, outcome: CompileOutcome) -> ExecutionResult:
        """Run the produced code through the shared module cache when wired.

        The VM is deterministic in (module text, step budget), so caching by
        content hash is observably identical to executing -- the text path
        (:meth:`observe`) routes through here too, so legacy render+reparse
        campaigns dedup identical modules the same way.
        """
        shared = self.shared_module_cache
        if shared is None:
            return self._compiler.run(outcome)
        # The compiler stamps module_sha when a pipeline cache is wired; it
        # is by construction sha256(str(module)), so the key is identical to
        # the rendered-text fallback -- just without re-rendering the module.
        sha = outcome.module_sha
        if sha is None:
            sha = hashlib.sha256(str(outcome.module).encode()).hexdigest()
        key = (self._compiler.vm_max_steps, self.machine_bits, sha)
        stats = self.cache_stats
        result = shared.get(key)
        if result is None:
            if stats is not None:
                stats["module_misses"] = stats.get("module_misses", 0) + 1
            result = self._compiler.run(outcome)
            shared[key] = result
            while len(shared) > self.SHARED_CACHE_ENTRIES:
                del shared[next(iter(shared))]
        elif stats is not None:
            stats["module_hits"] = stats.get("module_hits", 0) + 1
        return result

    # -- shared classification ----------------------------------------------------------

    def _classify(
        self,
        outcome: CompileOutcome,
        name: str,
        reference_result: ExecutionResult | None,
        program: str,
        bug_program: Callable[[], str],
        reference_compile: Callable[[], CompileOutcome],
        reference_run: Callable[[], ExecutionResult],
        execute: Callable[[], ExecutionResult],
    ) -> Observation:
        """Turn a compile outcome into an observation (common to both paths).

        ``program`` is attached to non-bug observations; ``bug_program`` is
        invoked only when the observation files a bug, which is what lets the
        AST path defer rendering until a bug actually needs text.
        ``execute`` produces the compiled code's behaviour (the variant path
        shares VM results between configurations with identical modules).
        """
        if outcome.crashed:
            return Observation(
                kind=ObservationKind.CRASH,
                program=bug_program(),
                source_name=name,
                compiler=self.version,
                opt_level=self.opt_level,
                signature=outcome.crash_signature() or "internal compiler error",
                outcome=outcome,
                triggered_faults=outcome.triggered_faults,
            )

        if outcome.ill_formed is not None:
            pass_name, detail = outcome.ill_formed
            return Observation(
                kind=ObservationKind.ILL_FORMED_IR,
                program=bug_program(),
                source_name=name,
                compiler=self.version,
                opt_level=self.opt_level,
                signature=f"ill-formed IR after {pass_name}: {detail}",
                detail=pass_name,
                outcome=outcome,
                triggered_faults=outcome.triggered_faults,
            )

        if outcome.rejected is not None:
            return Observation(
                kind=ObservationKind.SKIPPED,
                program=program,
                source_name=name,
                compiler=self.version,
                opt_level=self.opt_level,
                detail=f"rejected: {outcome.rejected}",
                outcome=outcome,
            )

        if reference_result is None:
            reference_result = reference_run()
        if reference_result.status is not ExecutionStatus.OK:
            return Observation(
                kind=ObservationKind.SKIPPED,
                program=program,
                source_name=name,
                compiler=self.version,
                opt_level=self.opt_level,
                detail=f"{reference_result.status.value}: {reference_result.detail}",
                outcome=outcome,
                triggered_faults=outcome.triggered_faults,
            )

        performance = self._performance_check(name, outcome, reference_compile, bug_program)
        if performance is not None:
            return performance

        compiled_result = execute()
        if compiled_result.status is not ExecutionStatus.OK:
            return Observation(
                kind=ObservationKind.WRONG_CODE,
                program=bug_program(),
                source_name=name,
                compiler=self.version,
                opt_level=self.opt_level,
                signature=f"produced code {compiled_result.status.value}: {compiled_result.detail}",
                reference_behaviour=reference_result.observable(),
                compiled_behaviour=None,
                outcome=outcome,
                triggered_faults=outcome.triggered_faults,
            )

        if compiled_result.observable() != reference_result.observable():
            return Observation(
                kind=ObservationKind.WRONG_CODE,
                program=bug_program(),
                source_name=name,
                compiler=self.version,
                opt_level=self.opt_level,
                signature=self._wrong_code_signature(reference_result, compiled_result),
                reference_behaviour=reference_result.observable(),
                compiled_behaviour=compiled_result.observable(),
                outcome=outcome,
                triggered_faults=outcome.triggered_faults,
            )

        return Observation(
            kind=ObservationKind.OK,
            program=program,
            source_name=name,
            compiler=self.version,
            opt_level=self.opt_level,
            reference_behaviour=reference_result.observable(),
            compiled_behaviour=compiled_result.observable(),
            outcome=outcome,
            triggered_faults=outcome.triggered_faults,
        )

    # -- helpers ----------------------------------------------------------------------

    def _performance_check(
        self,
        name: str,
        outcome: CompileOutcome,
        reference_compile: Callable[[], CompileOutcome],
        bug_program: Callable[[], str],
    ) -> Observation | None:
        # Comparing against the reference compiler costs a second compilation;
        # only bother when this compilation did enough work to plausibly be a
        # compile-time blow-up (the seeded performance fault inflates effort
        # by orders of magnitude, so the shortcut cannot miss it).
        if outcome.compile_effort <= 500:
            return None
        reference_outcome = reference_compile()
        if not reference_outcome.success or reference_outcome.compile_effort <= 0:
            return None
        ratio = outcome.compile_effort / reference_outcome.compile_effort
        if ratio < self.performance_ratio:
            return None
        return Observation(
            kind=ObservationKind.PERFORMANCE,
            program=bug_program(),
            source_name=name,
            compiler=self.version,
            opt_level=self.opt_level,
            signature=f"compilation effort {ratio:.0f}x the reference compiler",
            outcome=outcome,
            triggered_faults=outcome.triggered_faults,
        )

    @staticmethod
    def _wrong_code_signature(reference: ExecutionResult, compiled: ExecutionResult) -> str:
        return (
            f"wrong code: expected exit={reference.exit_code} stdout={reference.stdout!r}, "
            f"got exit={compiled.exit_code} stdout={compiled.stdout!r}"
        )


__all__ = ["DifferentialOracle", "Observation", "ObservationKind"]
