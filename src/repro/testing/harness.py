"""The campaign harness: SPE over a corpus against a matrix of compilers.

``Campaign`` is the top-level driver the experiments use:

1. for every seed program, extract the skeleton and count its canonical
   variants; skip files above the enumeration threshold (paper Section 5.2.1);
2. enumerate variants (SPE by default; the naive enumerator is available for
   the ablation) and test each against every configured compiler
   configuration through the :class:`~repro.testing.oracle.DifferentialOracle`;
3. deduplicate bug observations into a :class:`~repro.testing.bugs.BugDatabase`
   (optionally reducing the trigger program first) and accumulate statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.compiler.pipeline import OptimizationLevel
from repro.core.holes import Skeleton
from repro.core.naive import NaiveSkeletonEnumerator
from repro.core.spe import EnumerationBudget, SkeletonEnumerator
from repro.core.problem import Granularity
from repro.minic.errors import MiniCError
from repro.minic.skeleton import extract_skeleton
from repro.testing.bugs import BugDatabase, BugReport
from repro.testing.oracle import DifferentialOracle, Observation, ObservationKind
from repro.testing.reducer import reduce_program


@dataclass
class CampaignConfig:
    """Configuration of one testing campaign."""

    versions: list[str] = field(default_factory=lambda: ["scc-trunk", "lcc-trunk"])
    opt_levels: list[OptimizationLevel] = field(
        default_factory=lambda: [OptimizationLevel.O0, OptimizationLevel.O3]
    )
    machine_bits: list[int] = field(default_factory=lambda: [64])
    budget: EnumerationBudget = field(default_factory=lambda: EnumerationBudget(max_variants=10_000))
    granularity: Granularity = Granularity.INTRA_PROCEDURAL
    use_naive_enumeration: bool = False
    max_variants_per_file: int | None = 200
    reduce_bugs: bool = False
    stop_after_bugs: int | None = None

    def oracles(self) -> list[DifferentialOracle]:
        return [
            DifferentialOracle(version=version, opt_level=level, machine_bits=bits)
            for version in self.versions
            for level in self.opt_levels
            for bits in self.machine_bits
        ]


@dataclass
class CampaignResult:
    """Everything a campaign produced."""

    bugs: BugDatabase = field(default_factory=BugDatabase)
    files_processed: int = 0
    files_skipped_budget: int = 0
    files_skipped_error: int = 0
    variants_tested: int = 0
    observations: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def note_observation(self, observation: Observation) -> None:
        key = observation.kind.value
        self.observations[key] = self.observations.get(key, 0) + 1

    def summary(self) -> str:
        lines = [
            f"files processed      : {self.files_processed}",
            f"files over threshold : {self.files_skipped_budget}",
            f"files skipped (error): {self.files_skipped_error}",
            f"variants tested      : {self.variants_tested}",
            f"distinct bugs        : {len(self.bugs)}",
        ]
        for kind, count in sorted(self.observations.items()):
            lines.append(f"  observations[{kind}]: {count}")
        return "\n".join(lines)


class Campaign:
    """Run SPE-based differential testing over a corpus of seed programs."""

    def __init__(self, config: CampaignConfig | None = None) -> None:
        self.config = config or CampaignConfig()
        self._oracles = self.config.oracles()

    # -- entry points ------------------------------------------------------------

    def run_sources(self, sources: dict[str, str]) -> CampaignResult:
        """Run the campaign over named seed programs (name -> C source)."""
        result = CampaignResult()
        started = time.perf_counter()
        for name, source in sources.items():
            try:
                skeleton = extract_skeleton(source, name=name)
            except MiniCError:
                result.files_skipped_error += 1
                continue
            self._run_skeleton(skeleton, result)
            if self._exhausted(result):
                break
        result.wall_seconds = time.perf_counter() - started
        return result

    def run_skeletons(self, skeletons: list[Skeleton]) -> CampaignResult:
        """Run the campaign over already-extracted skeletons."""
        result = CampaignResult()
        started = time.perf_counter()
        for skeleton in skeletons:
            self._run_skeleton(skeleton, result)
            if self._exhausted(result):
                break
        result.wall_seconds = time.perf_counter() - started
        return result

    # -- internals ------------------------------------------------------------------

    def _exhausted(self, result: CampaignResult) -> bool:
        limit = self.config.stop_after_bugs
        return limit is not None and len(result.bugs) >= limit

    def _run_skeleton(self, skeleton: Skeleton, result: CampaignResult) -> None:
        enumerator = SkeletonEnumerator(
            skeleton, granularity=self.config.granularity, budget=self.config.budget
        )
        if not enumerator.within_budget():
            result.files_skipped_budget += 1
            return
        result.files_processed += 1

        if self.config.use_naive_enumeration:
            programs = NaiveSkeletonEnumerator(skeleton).programs(
                limit=self.config.max_variants_per_file
            )
        else:
            programs = enumerator.programs(limit=self.config.max_variants_per_file)

        for index, (vector, source) in enumerate(programs):
            result.variants_tested += 1
            variant_name = f"{skeleton.name}#{index}"
            reference_result = self._reference_result(source)
            for oracle in self._oracles:
                observation = oracle.observe(
                    source, name=variant_name, reference_result=reference_result
                )
                result.note_observation(observation)
                if observation.is_bug:
                    self._file_bug(observation, oracle, result)
            if self._exhausted(result):
                return

    @staticmethod
    def _reference_result(source: str):
        """Run the reference interpreter once per variant (shared by all oracles)."""
        from repro.minic.errors import MiniCError
        from repro.minic.interp import run_source

        try:
            return run_source(source)
        except MiniCError:
            return None

    def _file_bug(
        self, observation: Observation, oracle: DifferentialOracle, result: CampaignResult
    ) -> BugReport | None:
        if self.config.reduce_bugs and observation.kind is ObservationKind.CRASH:
            signature = observation.signature.split(" (")[0]

            def still_crashes(candidate: str) -> bool:
                repeat = oracle.observe(candidate, name=observation.source_name)
                return (
                    repeat.kind is ObservationKind.CRASH
                    and repeat.signature.split(" (")[0] == signature
                )

            observation.program = reduce_program(observation.program, still_crashes)
        return result.bugs.record(observation)


def test_program(
    source: str,
    name: str = "<program>",
    versions: list[str] | None = None,
    opt_levels: list[OptimizationLevel] | None = None,
) -> list[Observation]:
    """Convenience helper: test a single program against a configuration matrix."""
    versions = versions or ["scc-trunk", "lcc-trunk"]
    opt_levels = opt_levels or [OptimizationLevel.O0, OptimizationLevel.O3]
    observations: list[Observation] = []
    for version in versions:
        for level in opt_levels:
            oracle = DifferentialOracle(version=version, opt_level=level)
            observations.append(oracle.observe(source, name=name))
    return observations


__all__ = ["Campaign", "CampaignConfig", "CampaignResult", "test_program"]
